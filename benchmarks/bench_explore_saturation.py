"""Exploration saturation — prediction + coverage-guided seeds vs the sweep.

Per evaluated program, three ways to spend the same seed budget:

1. the blind fixed ``range(20)`` sweep (the baseline race set);
2. the coverage-guided explorer (:mod:`repro.owl.explore`): seeds run in
   waves until interleaving coverage saturates;
3. the same explorer with a **predict wave** first
   (:mod:`repro.detectors.predict`): seed 0 runs once with the schedule
   recorder attached, the sync-preserving closure infers every race
   feasible from that single trace, and the predicted pairs pre-seed
   coverage — so residual waves only spend budget on interleavings
   prediction could not decide.

The asserted shape is the ROADMAP criterion: the predicted-plus-residual
race set contains the fixed sweep's on *every* program, while the predict
run executes fewer seeds than the plain explorer on most of them — the
saturation-curve cut the schema-7 ``predict`` metrics block records.
"""

from reporting import emit

from repro.detectors.predict import PredictPolicy
from repro.detectors.ski import run_ski
from repro.detectors.tsan import run_tsan
from repro.owl.explore import ExplorePolicy, explore_program

EXPLORED_PROGRAMS = [
    "apache", "chrome", "libsafe", "linux", "memcached", "mysql", "ssdb",
]

BUDGET = 20


def _fixed_sweep(spec):
    run = run_ski if spec.detector == "ski" else run_tsan
    reports, _ = run(
        spec.build(), entry=spec.entry, inputs=spec.workload_inputs,
        seeds=range(BUDGET), max_steps=spec.max_steps)
    return reports


def _explore(spec, predict=None):
    policy = ExplorePolicy(max_seeds=BUDGET, wave_size=4, saturation_k=2,
                           escalate=False, predict=predict)
    reports, _ = explore_program(spec, explore=policy)
    return {report.static_key for report in reports}, policy.last


def test_explore_saturation(pipelines, benchmark):
    rows = []

    def explore_all():
        del rows[:]
        for name in EXPLORED_PROGRAMS:
            spec = pipelines.spec(name)
            fixed_keys = {
                report.static_key for report in _fixed_sweep(spec)}
            explored_keys, plain = _explore(spec)
            predicted_keys, predicting = _explore(
                spec, predict=PredictPolicy())
            counters = predicting.predict.counters
            rows.append({
                "Name": name,
                "detector": spec.detector,
                "sweep races": len(fixed_keys),
                "explore seeds": "%d/%d" % (plain.seeds_executed, BUDGET),
                "predict seeds": "%d/%d" % (
                    predicting.seeds_executed, BUDGET),
                "predicted": "%d (%d obs, %d wit, %d unwit)" % (
                    counters["predicted"], counters["observed"],
                    counters["witnessed"], counters["unwitnessed"]),
                "matches fixed sweep": explored_keys == fixed_keys,
                "predicted+residual superset": predicted_keys >= fixed_keys,
                "seeds saved vs explore":
                    plain.seeds_executed - predicting.seeds_executed,
            })
        return rows

    benchmark(explore_all)
    assert all(row["matches fixed sweep"] for row in rows), rows
    assert all(row["predicted+residual superset"] for row in rows), rows
    reduced = sum(1 for row in rows if row["seeds saved vs explore"] > 0)
    assert reduced >= 4, rows
    saved = sum(
        BUDGET - int(row["predict seeds"].split("/")[0]) for row in rows)
    emit(
        "explore_saturation",
        "Prediction + exploration vs fixed range(%d) sweep" % BUDGET,
        ["Name", "detector", "sweep races", "explore seeds",
         "predict seeds", "predicted", "matches fixed sweep",
         "predicted+residual superset", "seeds saved vs explore"],
        rows,
        notes="predicted+residual race set contains the fixed sweep's on "
              "every program; predict wave cut seeds on %d/%d programs "
              "(%d of %d budgeted seeds never executed)"
              % (reduced, len(rows), saved, BUDGET * len(rows)),
    )
