"""Exploration saturation — coverage-guided seeds vs the fixed sweep.

Per evaluated program: how many of the fixed sweep's 20 seeds the
coverage-guided explorer (:mod:`repro.owl.explore`) actually executed
before interleaving coverage saturated, whether the explored race set
equals the fixed ``range(20)`` sweep's, and the wave the saturation rule
fired on.  The interesting shape: TSan programs front-load their racy
pairs into the first wave, go dry, escalate once into PCT, and stop with
roughly half the budget unspent.
"""

from reporting import emit

from repro.detectors.ski import run_ski
from repro.detectors.tsan import run_tsan
from repro.owl.explore import ExplorePolicy, explore_program

EXPLORED_PROGRAMS = [
    "apache", "apache_log", "libsafe", "linux", "memcached", "ssdb",
]

BUDGET = 20


def _fixed_sweep(spec):
    run = run_ski if spec.detector == "ski" else run_tsan
    reports, _ = run(
        spec.build(), entry=spec.entry, inputs=spec.workload_inputs,
        seeds=range(BUDGET), max_steps=spec.max_steps)
    return reports


def test_explore_saturation(pipelines, benchmark):
    rows = []

    def explore_all():
        del rows[:]
        for name in EXPLORED_PROGRAMS:
            spec = pipelines.spec(name)
            policy = ExplorePolicy(max_seeds=BUDGET, wave_size=4,
                                   saturation_k=2, escalate=False)
            explored, _ = explore_program(spec, explore=policy)
            fixed = _fixed_sweep(spec)
            result = policy.last
            explored_keys = {report.static_key for report in explored}
            fixed_keys = {report.static_key for report in fixed}
            rows.append({
                "Name": name,
                "detector": spec.detector,
                "seeds run": "%d/%d" % (result.seeds_executed, BUDGET),
                "saturation wave": result.saturation_wave
                if result.saturated else "-",
                "racy pairs": result.coverage.total_pairs,
                "schedules": result.coverage.distinct_schedules,
                "matches fixed sweep": explored_keys == fixed_keys,
            })
        return rows

    benchmark(explore_all)
    assert all(row["matches fixed sweep"] for row in rows), rows
    saved = sum(
        BUDGET - int(row["seeds run"].split("/")[0]) for row in rows)
    emit(
        "explore_saturation",
        "Coverage-guided exploration vs fixed range(%d) sweep" % BUDGET,
        ["Name", "detector", "seeds run", "saturation wave", "racy pairs",
         "schedules", "matches fixed sweep"],
        rows,
        notes="identical race sets on every program; %d of %d budgeted "
              "seeds never executed" % (saved, BUDGET * len(rows)),
    )
