"""Findings I, II, IV, V — the quantitative study (paper section 3).

- Finding I: every studied program has concurrency attacks (severity).
- Finding II: bugs and their attacks are widely spread across functions
  (measured live on the model programs via call-graph distance).
- Finding IV: all studied vulnerable bugs are data races, detectable by
  race detectors (measured: our detectors re-find every vulnerable race).
- Finding V: raw detector output buries the vulnerable races (measured
  burial ratios per program; paper anchor: 202 reports, 2 vulnerable).
"""

from reporting import emit

from repro.analysis.callgraph import CallGraph
from repro.study import (
    finding1_severity,
    finding2_spread,
    finding4_bug_types,
    finding5_burial,
)

#: (spec, bug function, attack-site function) for live spread measurement
SPREAD_CASES = [
    ("libsafe", "stack_check", "libsafe_strcpy"),
    ("ssdb", "binlog_queue_destructor", "del_range"),
    ("apache", "proxy_balancer_post_request", "find_best_bybusyness"),
    ("apache", "ap_buffered_log_writer", "flush_log"),
    ("linux", "do_munmap", "msync_interval"),
    ("mysql", "acl_reload", "connection_handler"),
]


def test_finding1_severity(benchmark):
    finding = finding1_severity()
    emit("finding1_severity", "Finding I: severity", ["program", "attacks"],
         [{"program": name, "attacks": count}
          for name, count in sorted(finding["per_program"].items())],
         notes="Every studied program has concurrency attacks; 26 total.")
    assert finding["programs_with_attacks"] == 10
    assert finding["total_attacks"] == 26
    computed = benchmark.pedantic(finding1_severity, rounds=5, iterations=1)
    assert computed == finding


def test_finding2_spread_static(pipelines, benchmark):
    corpus = finding2_spread()
    rows = []
    nonzero = 0
    for spec_name, bug_function, site_function in SPREAD_CASES:
        module = pipelines.spec(spec_name).build()
        distance = CallGraph(module).static_distance(bug_function,
                                                     site_function)
        rows.append({
            "program": spec_name,
            "bug function": bug_function,
            "site function": site_function,
            "call-graph distance": distance,
        })
        if distance and distance > 0:
            nonzero += 1
    emit("finding2_spread", "Finding II: bug-to-attack spread",
         ["program", "bug function", "site function", "call-graph distance"],
         rows,
         notes="Paper: 7/10 attacks have bug and site in different "
               "functions (corpus: %d/10)." % (
                   corpus["bug_and_site_in_different_functions"]))
    assert corpus["bug_and_site_in_different_functions"] == 7
    assert nonzero >= 5  # the model programs preserve the spread
    # Benchmark one call-graph distance query.
    module = pipelines.spec("libsafe").build()
    distance = benchmark.pedantic(
        lambda: CallGraph(module).static_distance("stack_check",
                                                  "libsafe_strcpy"),
        rounds=5, iterations=1,
    )
    assert distance == 1


def test_finding4_detectability(pipelines, benchmark):
    finding = finding4_bug_types()
    # live check: each evaluated attack's racy variable appears in the raw
    # detector reports (Finding IV: race detectors find the vulnerable bugs)
    rows = []
    for name in ("libsafe", "ssdb", "apache", "mysql", "linux", "chrome"):
        result = pipelines.result(name)
        spec = pipelines.spec(name)
        raw_variables = {
            (report.variable or "") for report in result.raw_reports
        }
        for attack in spec.attacks:
            fragment = attack.racy_variable.split(".")[0].split("[")[0]
            found = any(fragment in variable for variable in raw_variables)
            rows.append({
                "attack": attack.attack_id,
                "racy variable": attack.racy_variable,
                "found by detector": found,
            })
    emit("finding4_detectability",
         "Finding IV: vulnerable races are detector-findable",
         ["attack", "racy variable", "found by detector"], rows,
         notes="Paper: all studied vulnerable bugs were data races.")
    assert finding["all_data_races"]
    assert all(row["found by detector"] for row in rows)
    computed = benchmark.pedantic(finding4_bug_types, rounds=5, iterations=1)
    assert computed["detectable"] == 26


def test_finding5_burial(pipelines, benchmark):
    measured_raw = {}
    measured_vulnerable = {}
    rows = []
    for name in ("apache", "chrome", "libsafe", "linux", "mysql", "ssdb"):
        result = pipelines.result(name)
        spec = pipelines.spec(name)
        raw = result.counters.raw_reports
        vulnerable = len({
            t.attack_id for t in result.detected_ground_truths()
        })
        measured_raw[name] = raw
        measured_vulnerable[name] = vulnerable
        rows.append({
            "program": name,
            "raw reports": raw,
            "vulnerable races (attacks)": vulnerable,
            "burial": "1 in %.0f" % (raw / vulnerable) if vulnerable else "-",
        })
    finding = finding5_burial(measured_raw, measured_vulnerable)
    emit("finding5_burial", "Finding V: report burial",
         ["program", "raw reports", "vulnerable races (attacks)", "burial"],
         rows,
         notes="Paper anchor: one MySQL query produced 202 reports, "
               "2 vulnerable.")
    assert finding["measured_burial_ratio"] < 0.5
    computed = benchmark.pedantic(
        lambda: finding5_burial(measured_raw, measured_vulnerable),
        rounds=5, iterations=1,
    )
    assert computed["paper_total_reports"] == 28209
