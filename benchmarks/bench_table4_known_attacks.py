"""Table 4 — OWL's detection results on known concurrency attacks.

For each known attack: the program/version, vulnerability type, and the
subtle inputs that trigger it, plus the measured number of repeated
executions the exploit needed ("all these attacks were often triggered
within 20 repeated queries or loops except the Apache one").
"""

from reporting import emit

from repro.exploits.driver import EXPLOIT_INDEX, exploit_attack

#: paper Table 4 rows (program version, vulnerability type, subtle inputs)
PAPER_TABLE4 = {
    "apache-2.0.48-doublefree": ("Apache-2.0.48", "Double Free", "PhP queries"),
    "chrome-6.0.472.58": ("Chrome-6.0.472.58", "Use after free",
                          "Js console.profile"),
    "libsafe-2.0-16": ("Libsafe-2.0-16", "Buffer Overflow",
                       "Loops with strcpy()"),
    "linux-2.6.10-uselib": ("Linux-2.6.10", "Null Func Ptr Deref",
                            "Syscall parameters"),
    "linux-2.6.29-privesc": ("Linux-2.6.29", "Privilege Escalation",
                             "Syscall parameters"),
    "mysql-24988": ("MySQL-5.0.27", "Access Permission", "FLUSH PRIVILEGES"),
    "mysql-setpassword": ("MySQL-5.1.35", "Double Free", "SET PASSWORD"),
}


def test_table4_known_attacks(pipelines, benchmark):
    rows = []
    triggered = 0
    under_20 = 0
    for spec_name, attack_id in EXPLOIT_INDEX:
        spec = pipelines.spec(spec_name)
        attack = next(a for a in spec.attacks if a.attack_id == attack_id)
        outcome = exploit_attack(spec, attack, max_repetitions=60)
        paper = PAPER_TABLE4.get(attack_id)
        rows.append({
            "Name (paper)": paper[0] if paper else attack_id,
            "Vul. Type": attack.vuln_type.value,
            "Subtle Inputs": attack.subtle_input_summary,
            "repetitions": outcome.repetitions if outcome.success else ">60",
            "paper type": paper[1] if paper else "(new, section 8.4)",
        })
        if outcome.success:
            triggered += 1
            if outcome.repetitions < 20:
                under_20 += 1
    emit(
        "table4_known_attacks",
        "Table 4: known concurrency attacks, triggered via subtle inputs",
        ["Name (paper)", "Vul. Type", "Subtle Inputs", "repetitions",
         "paper type"],
        rows,
        notes="Paper: attacks triggered within ~20 repetitions (Finding III).",
    )
    assert triggered == 10
    assert under_20 >= 8  # the paper's 8-out-of-10 claim

    # Benchmark one exploit end to end.
    libsafe = pipelines.spec("libsafe")

    def exploit_once():
        return exploit_attack(libsafe, libsafe.attacks[0], max_repetitions=40)

    outcome = benchmark.pedantic(exploit_once, rounds=2, iterations=1)
    assert outcome.success
