"""Figures 4 & 5 — OWL's Libsafe reports.

Regenerates the two report snippets the paper prints for the Libsafe attack:
the bug's call stack (Figure 4) and the vulnerable input hint with the
control-dependent branch at intercept.c:164 and the site at intercept.c:165
(Figure 5).
"""

from reporting import emit

from repro.owl.hints import format_call_stack, format_vulnerability_report
from repro.owl.vuln_analysis import DependenceKind


def _libsafe_dying_vulnerability(pipelines):
    result = pipelines.result("libsafe")
    return next(
        v for v in result.vulnerabilities
        if v.site.location.filename == "intercept.c"
        and v.site.location.line == 165
    )


def test_figure4_call_stack(pipelines, benchmark):
    vulnerability = _libsafe_dying_vulnerability(pipelines)
    text = format_call_stack(vulnerability.call_stack)
    print()
    print("== Figure 4: Libsafe call stack ==")
    print(text)
    emit("fig4_call_stack", "Figure 4: Libsafe call stack",
         ["line"], [{"line": line} for line in text.splitlines()],
         notes="Paper prints: libsafe_strcpy (intercept.c:151) / "
               "stack_check (util.c:164)")
    # innermost frame first, reaching stack_check through libsafe_strcpy
    lines = text.splitlines()
    assert lines[0].startswith("stack_check")
    assert any(line.startswith("libsafe_strcpy") for line in lines)
    rendered = benchmark.pedantic(
        lambda: format_call_stack(vulnerability.call_stack),
        rounds=5, iterations=1,
    )
    assert rendered == text


def test_figure5_input_hint(pipelines, benchmark):
    vulnerability = _libsafe_dying_vulnerability(pipelines)

    text = benchmark.pedantic(
        lambda: format_vulnerability_report(vulnerability),
        rounds=5, iterations=1,
    )
    print()
    print("== Figure 5: OWL vulnerable input hint ==")
    print(text)
    emit("fig5_input_hint", "Figure 5: OWL vulnerable input hint",
         ["line"], [{"line": line} for line in text.splitlines()])
    assert "---- Ctrl Dependent Vulnerability----" in text
    assert "(intercept.c:164)" in text      # the corrupted branch
    assert "Vulnerable Site Location: (intercept.c:165)" in text
    assert vulnerability.kind is DependenceKind.CTRL_DEP
