"""Shared reporting for the benchmark harness.

Every table/figure benchmark calls :func:`emit` with the rows it
regenerated; the rows are printed as an aligned paper-vs-measured table and
saved as JSON under ``benchmarks/out/`` so EXPERIMENTS.md can reference the
exact numbers of the last run.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Sequence

OUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "out")


def emit(name: str, title: str, columns: Sequence[str],
         rows: List[Dict], notes: Optional[str] = None) -> None:
    """Print an aligned table and persist it as JSON."""
    os.makedirs(OUT_DIR, exist_ok=True)
    with open(os.path.join(OUT_DIR, "%s.json" % name), "w") as handle:
        json.dump({"title": title, "columns": list(columns), "rows": rows,
                   "notes": notes}, handle, indent=2, default=str)
    widths = {
        column: max([len(column)] + [len(str(row.get(column, ""))) for row in rows])
        for column in columns
    }
    print()
    print("== %s ==" % title)
    header = "  ".join(column.ljust(widths[column]) for column in columns)
    print(header)
    print("-" * len(header))
    for row in rows:
        print("  ".join(
            str(row.get(column, "")).ljust(widths[column]) for column in columns
        ))
    if notes:
        print(notes)
    print()
