"""Ablations of Algorithm 1's design decisions (paper sections 4.1/6.1/9).

The paper argues each feature of the static vulnerability analyzer is
load-bearing by comparison with prior tools:

- without control-flow tracking (Livshits&Lam-style pure data flow) the
  Libsafe attack is invisible — it propagates through an ``if``;
- without inter-procedural analysis (Yamaguchi-style) attacks whose bug and
  site live in different functions are invisible;
- without following the bug's call stack upward (ConSeq-style short-distance
  analysis) sites in the bug's *callers* are invisible;
- exploring every static caller instead of the actual stack (undirected
  whole-program analysis) finds the attacks but does strictly more work —
  the accuracy-versus-scalability trade of section 4.1.
"""

import time

from reporting import emit

from repro.detectors import run_tsan
from repro.owl.vuln_analysis import AnalysisOptions, VulnerabilityAnalyzer

CONFIGS = [
    ("full OWL", AnalysisOptions.full),
    ("no control flow (Livshits-style)", AnalysisOptions.no_control_flow),
    ("intra-procedural (Yamaguchi-style)", AnalysisOptions.intraprocedural),
    ("no caller walk (ConSeq-style)", AnalysisOptions.conseq_style),
    ("whole program (undirected)", AnalysisOptions.whole_program),
]


def _libsafe_report(pipelines):
    spec = pipelines.spec("libsafe")
    module = spec.build()
    reports, _ = run_tsan(module, inputs=spec.workload_inputs, seeds=range(8))
    return module, next(r for r in reports if "dying" in (r.variable or ""))


def test_ablation_on_libsafe(pipelines, benchmark):
    module, report = _libsafe_report(pipelines)
    rows = []
    findings = {}
    costs = {}
    for label, factory in CONFIGS:
        analyzer = VulnerabilityAnalyzer(module, options=factory())
        started = time.perf_counter()
        vulnerabilities = analyzer.analyze_report(report)
        elapsed = time.perf_counter() - started
        hit = any(
            v.site.location.filename == "intercept.c"
            and v.site.location.line == 165
            for v in vulnerabilities
        )
        findings[label] = hit
        costs[label] = elapsed
        rows.append({
            "configuration": label,
            "finds Libsafe attack": hit,
            "reports": len(vulnerabilities),
            "analysis seconds": "%.5f" % elapsed,
        })
    emit("ablation_analysis", "Ablation: Algorithm 1 design decisions",
         ["configuration", "finds Libsafe attack", "reports",
          "analysis seconds"],
         rows,
         notes="Paper: ConSeq/data-flow-only/intra-procedural tools are "
               "inadequate for the Libsafe attack (sections 4.3 and 9).")
    assert findings["full OWL"]
    assert findings["whole program (undirected)"]
    assert not findings["no control flow (Livshits-style)"]
    assert not findings["intra-procedural (Yamaguchi-style)"]
    assert not findings["no caller walk (ConSeq-style)"]

    # Benchmark the full configuration (the paper's A.C. metric).
    def analyze():
        return VulnerabilityAnalyzer(
            module, options=AnalysisOptions.full(),
        ).analyze_report(report)

    vulnerabilities = benchmark.pedantic(analyze, rounds=5, iterations=1)
    assert vulnerabilities


def test_whole_program_costs_more_on_larger_target(pipelines, benchmark):
    """The scalability half of the trade: undirected analysis does more work
    (visits more instructions) than the call-stack-directed walk."""
    spec = pipelines.spec("mysql")
    module = spec.build()
    result = pipelines.result("mysql")
    reports = [r for r in result.remaining_reports if r.read_access()]
    directed_budget = undirected_budget = 0
    for report in reports:
        directed = VulnerabilityAnalyzer(module,
                                         options=AnalysisOptions.full())
        directed.analyze_report(report)
        directed_budget += (directed.options.instruction_budget
                            - directed._budget)
        undirected = VulnerabilityAnalyzer(
            module, options=AnalysisOptions.whole_program(),
        )
        undirected.analyze_report(report)
        undirected_budget += (undirected.options.instruction_budget
                              - undirected._budget)
    emit("ablation_cost", "Ablation: directed vs undirected analysis cost",
         ["configuration", "instructions visited"],
         [
             {"configuration": "call-stack directed",
              "instructions visited": directed_budget},
             {"configuration": "whole program",
              "instructions visited": undirected_budget},
         ])
    assert undirected_budget > directed_budget
    # Benchmark the directed analysis over one remaining report.
    sample = reports[0]
    vulnerabilities = benchmark.pedantic(
        lambda: VulnerabilityAnalyzer(
            module, options=AnalysisOptions.full(),
        ).analyze_report(sample),
        rounds=3, iterations=1,
    )
    assert isinstance(vulnerabilities, list)
