"""Session-level fixtures shared by the benchmark harness.

Running the OWL pipeline on every evaluated program is the expensive part;
``pipeline_results`` computes each program's result once per session and the
individual table/figure benchmarks read from the cache.
"""

from __future__ import annotations

import sys
import os

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pytest

EVALUATED_PROGRAMS = [
    "apache", "chrome", "libsafe", "linux", "memcached", "mysql", "ssdb",
]


class _PipelineCache:
    def __init__(self):
        self._specs = {}
        self._results = {}

    def spec(self, name: str):
        if name not in self._specs:
            from repro.apps.registry import spec_by_name

            self._specs[name] = spec_by_name(name)
        return self._specs[name]

    def result(self, name: str):
        if name not in self._results:
            from repro.owl.pipeline import OwlPipeline

            self._results[name] = OwlPipeline(self.spec(name)).run()
        return self._results[name]


@pytest.fixture(scope="session")
def pipelines():
    return _PipelineCache()
