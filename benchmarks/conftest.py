"""Session-level fixtures shared by the benchmark harness.

Running the OWL pipeline on every evaluated program is the expensive part;
``pipeline_results`` computes each program's result once per session and the
individual table/figure benchmarks read from the cache.

Set ``OWL_JOBS=N`` in the environment to fan the parallel pipeline stages
out over N worker processes (counters stay identical to the serial run —
see :mod:`repro.owl.batch`).  Each program's per-stage metrics are written
to ``benchmarks/out/metrics_<program>.json`` as the pipeline runs, its
per-report decision record to ``benchmarks/out/provenance_<program>.json``,
and one trajectory record per program to ``benchmarks/out/history.jsonl``
(the input of ``tools/bench_regress.py``).
"""

from __future__ import annotations

import sys
import os

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import pytest

from reporting import OUT_DIR

EVALUATED_PROGRAMS = [
    "apache", "chrome", "libsafe", "linux", "memcached", "mysql", "ssdb",
]

JOBS = max(1, int(os.environ.get("OWL_JOBS", "1")))


class _PipelineCache:
    def __init__(self, jobs: int = JOBS):
        self.jobs = jobs
        self._specs = {}
        self._results = {}

    def spec(self, name: str):
        if name not in self._specs:
            from repro.apps.registry import spec_by_name

            self._specs[name] = spec_by_name(name)
        return self._specs[name]

    def result(self, name: str):
        if name not in self._results:
            from repro.owl.history import (
                append_record, default_history_path, record_from_metrics,
            )
            from repro.owl.pipeline import OwlPipeline
            from repro.owl.provenance import provenance_path
            from repro.runtime.metrics import metrics_path

            result = OwlPipeline(self.spec(name), jobs=self.jobs).run()
            result.metrics.save(metrics_path(OUT_DIR, name))
            result.provenance.save(provenance_path(OUT_DIR, name))
            append_record(record_from_metrics(result.metrics.as_dict()),
                          default_history_path(OUT_DIR))
            self._results[name] = result
        return self._results[name]


@pytest.fixture(scope="session")
def pipelines():
    return _PipelineCache()
