"""Section 7.2 — OWL as a front end for runtime defense tools.

"We can leverage anomaly detection and intrusion detection tools to audit
only the vulnerable program paths identified by OWL, then these runtime
detection tools can greatly reduce the amount of program paths that need to
be audited and improve performance."

The benchmark builds an :class:`repro.owl.AuditScope` from each program's
vulnerability reports and measures (a) the fraction of functions a monitor
can skip, and (b) the fraction of runtime trace events a scoped monitor
skips versus a whole-program monitor — while still alarming on the actual
attack.
"""

from reporting import emit

from repro.owl.audit import AuditingObserver, AuditScope

PROGRAMS = ["libsafe", "ssdb", "apache", "mysql", "chrome"]


def test_audit_scope_reduction(pipelines, benchmark):
    rows = []
    for name in PROGRAMS:
        spec = pipelines.spec(name)
        result = pipelines.result(name)
        scope = AuditScope(spec.build(), result.vulnerabilities)
        monitor = AuditingObserver(scope)
        vm = spec.make_vm(seed=0)
        vm.add_observer(monitor)
        vm.start(spec.entry)
        vm.run()
        rows.append({
            "program": name,
            "functions audited": "%d/%d" % (
                len(scope.functions & set(spec.build().functions)),
                len(spec.build().functions),
            ),
            "functions skipped": "%.0f%%" % (
                100 * (1 - scope.audited_fraction())),
            "runtime events skipped": "%.0f%%" % (100 * monitor.skip_ratio()),
        })
    emit("audit_application",
         "Section 7.2: audit-scope reduction for defense tools",
         ["program", "functions audited", "functions skipped",
          "runtime events skipped"],
         rows,
         notes="A monitor restricted to OWL's vulnerable paths audits a "
               "fraction of the program yet still catches the attacks.")
    # every program lets the monitor skip work
    assert all(row["functions skipped"] != "0%" for row in rows)

    # Benchmark building the scope (cheap) + one scoped monitoring run.
    spec = pipelines.spec("libsafe")
    result = pipelines.result("libsafe")

    def scoped_run():
        scope = AuditScope(spec.build(), result.vulnerabilities)
        monitor = AuditingObserver(scope)
        vm = spec.make_vm(seed=0)
        vm.add_observer(monitor)
        vm.start("main")
        vm.run()
        return monitor

    monitor = benchmark.pedantic(scoped_run, rounds=3, iterations=1)
    assert monitor.events_audited > 0


def test_scoped_monitor_still_catches_attack(pipelines, benchmark):
    spec = pipelines.spec("libsafe")
    result = pipelines.result("libsafe")
    scope = benchmark.pedantic(
        lambda: AuditScope(spec.build(), result.vulnerabilities),
        rounds=5, iterations=1,
    )
    attack = spec.attacks[0]
    for seed in range(30):
        vm = spec.make_vm(seed=seed, inputs=attack.subtle_inputs)
        monitor = AuditingObserver(scope)
        vm.add_observer(monitor)
        vm.start("main")
        vm.run()
        if attack.predicate(vm):
            assert monitor.alarms, "attack fired without an audit alarm"
            emit("audit_alarm", "Section 7.2: scoped monitor alarm",
                 ["field", "value"], [
                     {"field": "alarm site",
                      "value": str(monitor.alarms[0].instruction.location)},
                     {"field": "events audited",
                      "value": monitor.events_audited},
                     {"field": "events skipped",
                      "value": monitor.events_skipped},
                 ])
            return
    raise AssertionError("exploit did not fire")
