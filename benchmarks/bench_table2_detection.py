"""Table 2 — OWL concurrency attack detection results.

Per evaluated program: number of known attacks, number OWL found, and the
number of OWL vulnerability reports.  The paper's row shape to reproduce:
OWL detects every evaluated attack (10/10) while its report count stays a
tiny fraction of the detectors' raw output (180 vs 31K in the paper).
"""

from reporting import emit

#: (spec name, paper LoC, paper #atks, paper #found, paper #reports)
PAPER_ROWS = [
    ("apache", "290K", 3, 3, 10),
    ("chrome", "3.4M", 1, 1, 115),
    ("libsafe", "3.4K", 1, 1, 3),
    ("linux", "2.8M", 2, 2, 34),
    ("mysql", "1.5M", 2, 2, 16),
    ("ssdb", "67K", 1, 1, 2),
]


def test_table2_detection(pipelines, benchmark):
    rows = []
    total_attacks = total_found = total_reports = 0
    for name, loc, paper_attacks, paper_found, paper_reports in PAPER_ROWS:
        result = pipelines.result(name)
        spec = pipelines.spec(name)
        found = len(result.detected_ground_truths())
        reports = result.counters.vulnerability_reports
        rows.append({
            "Name": name,
            "LoC (paper)": loc,
            "# atks": len(spec.attacks),
            "# atks found": found,
            "# OWL reports": reports,
            "paper (atks/found/reports)": "%d/%d/%d" % (
                paper_attacks, paper_found, paper_reports,
            ),
        })
        total_attacks += len(spec.attacks)
        total_found += found
        total_reports += reports
    rows.append({
        "Name": "Total",
        "LoC (paper)": "5.36M",
        "# atks": total_attacks,
        "# atks found": total_found,
        "# OWL reports": total_reports,
        "paper (atks/found/reports)": "11/10/180",
    })
    emit(
        "table2_detection", "Table 2: OWL concurrency attack detection",
        ["Name", "LoC (paper)", "# atks", "# atks found", "# OWL reports",
         "paper (atks/found/reports)"],
        rows,
    )
    # The headline shape: no evaluated attack is missed.
    assert total_found == total_attacks == 10

    # Benchmark one end-to-end pipeline (the smallest target).
    def pipeline_once():
        from repro.owl.pipeline import OwlPipeline

        return OwlPipeline(pipelines.spec("libsafe")).run()

    result = benchmark.pedantic(pipeline_once, rounds=2, iterations=1)
    assert result.detected_ground_truths()
