"""Finding III — subtle inputs trigger attacks in few repetitions.

Paper section 3.1: "8 out of the 10 reproduced concurrency attacks in our
study can be easily triggered with less than 20 repetitive executions on our
evaluation machines with carefully chosen program inputs", and triggering the
bug versus its attack "often need different inputs".

The sweep runs every exploit twice: once with the attack's *subtle* inputs
and once with *naive* inputs, counting executions until the predicate holds.
The shape to reproduce: subtle inputs succeed within ~20 executions; naive
inputs exhaust the budget.
"""

from reporting import emit

from repro.exploits.driver import EXPLOIT_INDEX, exploit_attack

BUDGET = 60


def test_finding3_repetition_sweep(pipelines, benchmark):
    rows = []
    subtle_under_20 = 0
    naive_successes = 0
    for spec_name, attack_id in EXPLOIT_INDEX:
        spec = pipelines.spec(spec_name)
        attack = next(a for a in spec.attacks if a.attack_id == attack_id)
        subtle = exploit_attack(spec, attack, max_repetitions=BUDGET)
        naive = exploit_attack(spec, attack, max_repetitions=20,
                               inputs=attack.naive_inputs)
        rows.append({
            "attack": attack_id,
            "subtle inputs": attack.subtle_input_summary,
            "repetitions (subtle)": subtle.repetitions if subtle.success
            else ">%d" % BUDGET,
            "repetitions (naive)": naive.repetitions if naive.success
            else ">20",
        })
        if subtle.success and subtle.repetitions < 20:
            subtle_under_20 += 1
        if naive.success:
            naive_successes += 1
    emit(
        "finding3_repetitions",
        "Finding III: repetitions to trigger, subtle vs naive inputs",
        ["attack", "subtle inputs", "repetitions (subtle)",
         "repetitions (naive)"],
        rows,
        notes="Paper claim: 8/10 under 20 repetitions with subtle inputs; "
              "naive inputs effectively never trigger.",
    )
    assert subtle_under_20 >= 8
    assert naive_successes <= 2  # naive inputs are (almost) never enough

    # Benchmark: one subtle-input execution (the unit Finding III counts).
    libsafe = pipelines.spec("libsafe")
    attack = libsafe.attacks[0]

    def one_execution():
        vm = libsafe.make_vm(seed=0, inputs=attack.subtle_inputs)
        vm.start("main")
        return vm.run()

    result = benchmark.pedantic(one_execution, rounds=3, iterations=1)
    assert result.steps > 0
