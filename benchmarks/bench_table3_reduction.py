"""Table 3 — OWL's reduction of race detector reports.

Per program: raw reports (R.R.), adhoc synchronizations annotated (A.S.),
race-verifier eliminations (R.V.E.), remaining reports (R.), and the average
static-analysis cost per report (A.C.).  The paper's headline: the schedule
reduction and the verifier remove 94.3% of all reports without losing any
evaluated attack.
"""

import json
import os

from reporting import OUT_DIR, emit

#: paper row: (name, R.R., A.S., R.V.E., R.)
PAPER_ROWS = {
    "apache": (715, 7, 1506, 10),
    "chrome": (1715, 1, 1587, 126),
    "libsafe": (3, 0, 0, 3),
    "linux": (24641, 8, None, 1718),
    "memcached": (5376, 0, 5372, 4),
    "mysql": (1123, 6, 783, 18),
    "ssdb": (12, 0, 10, 2),
}


def test_table3_reduction(pipelines, benchmark):
    rows = []
    total_raw = total_remaining = total_adhoc = 0
    for name, paper in PAPER_ROWS.items():
        result = pipelines.result(name)
        counters = result.counters
        rows.append({
            "Name": name,
            "R.R.": counters.raw_reports,
            "A.S.": counters.adhoc_syncs,
            "R.V.E.": counters.verifier_eliminated,
            "R.": counters.remaining,
            "A.C. (s/report)": "%.4f" % counters.analysis_seconds_per_report,
            "reduction": "%.1f%%" % (100 * counters.reduction_ratio),
            "paper (R.R./A.S./R.V.E./R.)": "/".join(
                str(x) if x is not None else "N/A" for x in paper
            ),
        })
        total_raw += counters.raw_reports
        total_remaining += counters.remaining
        total_adhoc += counters.adhoc_syncs
    overall = 1 - total_remaining / total_raw if total_raw else 0
    rows.append({
        "Name": "Total",
        "R.R.": total_raw,
        "A.S.": total_adhoc,
        "R.V.E.": "",
        "R.": total_remaining,
        "A.C. (s/report)": "",
        "reduction": "%.1f%%" % (100 * overall),
        "paper (R.R./A.S./R.V.E./R.)": "31870/22/9258/1881 (94.3%)",
    })
    emit(
        "table3_reduction", "Table 3: OWL's reduction of detector reports",
        ["Name", "R.R.", "A.S.", "R.V.E.", "R.", "A.C. (s/report)",
         "reduction", "paper (R.R./A.S./R.V.E./R.)"],
        rows,
        notes=("Shape check: the majority of raw reports are pruned; no "
               "evaluated attack's race is eliminated."),
    )
    assert overall > 0.5  # strong reduction at model scale
    # None of the vulnerable races may be lost.
    for name in PAPER_ROWS:
        result = pipelines.result(name)
        spec = pipelines.spec(name)
        found = {t.attack_id for t in result.detected_ground_truths()}
        assert found == {a.attack_id for a in spec.attacks}, name

    # Benchmark the schedule-reduction stage: adhoc analysis of raw reports.
    libsafe_raw = pipelines.result("mysql").raw_reports

    def adhoc_stage():
        from repro.owl.adhoc import AdhocSyncDetector

        return AdhocSyncDetector().analyze(libsafe_raw)

    annotations = benchmark.pedantic(adhoc_stage, rounds=3, iterations=1)
    assert annotations.unique_static_count() >= 6


STAGE_NAMES = [
    "detect", "schedule_reduction", "race_verification",
    "vulnerability_analysis", "vulnerability_verification",
]


def test_table3_stage_metrics(pipelines):
    """Every pipeline run exports per-stage metrics JSON next to the tables."""
    from repro.runtime.metrics import metrics_path

    rows = []
    for name in PAPER_ROWS:
        pipelines.result(name)  # ensures the run happened and metrics saved
        path = metrics_path(OUT_DIR, name)
        assert os.path.exists(path), path
        with open(path) as handle:
            data = json.load(handle)
        assert data["program"] == name
        assert data["jobs"] == pipelines.jobs
        assert [stage["name"] for stage in data["stages"]] == STAGE_NAMES
        detect = data["stages"][0]
        assert detect["runs"] > 0 and detect["vm_steps"] > 0
        rows.append({
            "Name": name,
            "jobs": data["jobs"],
            "total (s)": "%.2f" % data["total_seconds"],
            "VM steps": data["vm_steps"],
            "accesses": data["accesses"],
            "detect steps/s": "%.0f" % detect["steps_per_second"],
            "verify reports/s": "%.1f" % data["stages"][2]["items_per_second"],
        })
    emit(
        "table3_throughput", "Pipeline throughput (per-stage metrics)",
        ["Name", "jobs", "total (s)", "VM steps", "accesses",
         "detect steps/s", "verify reports/s"],
        rows,
        notes=("Full per-stage breakdown in benchmarks/out/metrics_<name>"
               ".json; counters are identical at any OWL_JOBS setting."),
    )
