"""Figures 1, 2, 6, 7, 8 — per-figure attack reproductions.

Each of the paper's code figures describes one bug-to-attack flow; these
benchmarks re-trigger each flow end to end and check its distinguishing
consequence:

- Figure 1 (Libsafe): the ``dying`` race bypasses the overflow check and the
  unchecked strcpy injects code (a shell exec is observed).
- Figure 2 (Linux uselib/msync): the f_op NULL store lands between check and
  use; the kernel dereferences a NULL function pointer.
- Figure 6 (SSDB): the destructor frees ``db`` mid-compaction; the clean
  thread uses freed memory.
- Figure 7 (Apache 25520): the racy cursor pushes a memcpy over the buffer
  into the adjacent fd; the flush writes logs into a user's HTML file.
- Figure 8 (Apache 46215): the busy counter underflows to the paper's exact
  value and the balancer starves the worker.
"""

from reporting import emit

from repro.exploits.driver import exploit_attack
from repro.runtime.errors import FaultKind


def _attack(pipelines, spec_name, attack_id):
    spec = pipelines.spec(spec_name)
    return spec, next(a for a in spec.attacks if a.attack_id == attack_id)


def _emit_figure(name, title, outcome, consequence):
    emit(name, title, ["field", "value"], [
        {"field": "triggered", "value": outcome.success},
        {"field": "repetitions", "value": outcome.repetitions},
        {"field": "faults", "value": ", ".join(outcome.fault_kinds)},
        {"field": "consequence", "value": consequence},
    ])


def test_figure1_libsafe(pipelines, benchmark):
    spec, attack = _attack(pipelines, "libsafe", "libsafe-2.0-16")
    outcome = benchmark.pedantic(
        lambda: exploit_attack(spec, attack, max_repetitions=40),
        rounds=1, iterations=1,
    )
    assert outcome.success
    vm = spec.make_vm(seed=outcome.seed, inputs=attack.subtle_inputs)
    vm.start("main")
    vm.run()
    assert vm.world.executed("/bin/sh")
    _emit_figure("fig1_libsafe", "Figure 1: Libsafe check bypass", outcome,
                 "malicious code injection (shell exec observed)")


def test_figure2_uselib(pipelines, benchmark):
    spec, attack = _attack(pipelines, "linux_uselib", "linux-2.6.10-uselib")
    outcome = benchmark.pedantic(
        lambda: exploit_attack(spec, attack, max_repetitions=40),
        rounds=1, iterations=1,
    )
    assert outcome.success
    assert "null-pointer-dereference" in outcome.fault_kinds
    _emit_figure("fig2_uselib", "Figure 2: Linux uselib()/msync() race",
                 outcome, "NULL function pointer dereference in the kernel")


def test_figure6_ssdb(pipelines, benchmark):
    spec, attack = _attack(pipelines, "ssdb", "ssdb-cve-2016-1000324")
    outcome = benchmark.pedantic(
        lambda: exploit_attack(spec, attack, max_repetitions=40),
        rounds=1, iterations=1,
    )
    assert outcome.success
    assert set(outcome.fault_kinds) & {
        "use-after-free", "null-pointer-dereference",
    }
    _emit_figure("fig6_ssdb", "Figure 6: SSDB BinlogQueue use-after-free",
                 outcome, "use after free during shutdown (CVE-2016-1000324)")


def test_figure7_apache_log(pipelines, benchmark):
    spec, attack = _attack(pipelines, "apache_log", "apache-25520")
    outcome = benchmark.pedantic(
        lambda: exploit_attack(spec, attack, max_repetitions=50),
        rounds=1, iterations=1,
    )
    assert outcome.success
    vm = spec.make_vm(seed=outcome.seed, inputs=attack.subtle_inputs)
    vm.start("main")
    vm.run()
    html = vm.world.file_content("user.html")
    assert b"log:" in html
    assert any(f.kind is FaultKind.FIELD_OVERFLOW for f in vm.faults)
    _emit_figure("fig7_apache_log", "Figure 7: Apache 25520 HTML integrity",
                 outcome,
                 "request log written into user.html: %r..." % html[:40])


def test_figure8_apache_dos(pipelines, benchmark):
    from repro.apps.apache_balancer import OVERFLOWED, read_assigned, read_worker_busy

    spec, attack = _attack(pipelines, "apache_balancer", "apache-46215")
    outcome = benchmark.pedantic(
        lambda: exploit_attack(spec, attack, max_repetitions=50),
        rounds=1, iterations=1,
    )
    assert outcome.success
    vm = spec.make_vm(seed=outcome.seed, inputs=attack.subtle_inputs)
    vm.start("main")
    vm.run()
    busy = read_worker_busy(vm, 0)
    assert busy >= (1 << 63)
    assert read_assigned(vm, 0) == 0
    note = "busy=%d (paper observed %d)" % (busy, OVERFLOWED)
    _emit_figure("fig8_apache_dos", "Figure 8: Apache 46215 DoS", outcome,
                 note)
