"""Table 1 — Concurrency attacks study results.

Regenerates the study summary: per program, the paper's LoC and attack
counts (from the corpus) next to *measured* raw race-report counts from our
detectors on the model programs.  The paper's absolute report counts come
from full-size targets; the column to compare is the *shape*: report volume
dwarfs attack count everywhere.
"""

from reporting import emit

from repro.study.corpus import PROGRAMS, corpus_totals

#: map study program name -> our runnable spec name (6 of 10 run, as in the
#: paper: "We made 6 out of 10 programs run with race detectors")
RUNNABLE = {
    "Apache": "apache",
    "MySQL": "mysql",
    "SSDB": "ssdb",
    "Chrome": "chrome",
    "Libsafe": "libsafe",
    "Linux": "linux",
}


def test_table1_study_summary(pipelines, benchmark):
    totals = corpus_totals()
    rows = []
    measured_total = 0
    attack_total = 0
    for program in PROGRAMS:
        measured = ""
        if program.name in RUNNABLE:
            result = pipelines.result(RUNNABLE[program.name])
            measured = result.counters.raw_reports
            measured_total += measured
        attack_total += totals[program.name]
        rows.append({
            "Name": program.name,
            "LoC": program.loc,
            "# Concurrency attacks": totals[program.name],
            "# Race reports (paper)": (
                program.race_reports if program.race_reports is not None
                else "N/A"
            ),
            "# Race reports (measured)": measured,
        })
    rows.append({
        "Name": "Total",
        "LoC": "8.0M",
        "# Concurrency attacks": attack_total,
        "# Race reports (paper)": 28209,
        "# Race reports (measured)": measured_total,
    })
    emit(
        "table1_study", "Table 1: concurrency attacks study results",
        ["Name", "LoC", "# Concurrency attacks", "# Race reports (paper)",
         "# Race reports (measured)"],
        rows,
        notes=("Model programs are scaled down; the preserved shape is "
               "reports >> attacks for every runnable target."),
    )
    assert attack_total == 26
    assert measured_total > 10 * len(RUNNABLE) / 2  # reports dwarf attacks

    # Benchmark: one raw detection pass on the smallest target.
    def detect_once():
        from repro.owl.integration import run_detector

        reports, _ = run_detector(pipelines.spec("libsafe"))
        return len(reports)

    count = benchmark.pedantic(detect_once, rounds=3, iterations=1)
    assert count >= 3
