#!/usr/bin/env python
"""Point OWL at your own program: write it in the IR DSL, wrap it in a
ProgramSpec, and run the pipeline.

The program below contains a deliberately planted TOCTOU-style concurrency
bug: a worker checks an ``is_admin`` flag, sleeps through an IO window, and
then calls ``setuid(0)``; a second thread toggles the flag.  OWL should
surface a CTRL_DEP privilege-operation hint.

Run with::

    python examples/custom_target.py
"""

from repro import OwlPipeline, ProgramSpec
from repro.ir import IRBuilder, Module, verify_module
from repro.ir.types import I32, I64, I8, ptr
from repro.owl.hints import format_full_report


def build_module() -> Module:
    module = Module("my_service")
    b = IRBuilder(module)
    is_admin = b.global_var("is_admin", I64, 0)

    b.set_location("service.c", 1)
    b.begin_function("session_worker", I32, [("arg", ptr(I8))],
                     source_file="service.c")
    flag = b.load(is_admin, line=10)               # racy read
    granted = b.icmp("ne", flag, 0, line=10)
    b.cond_br(granted, "admin", "plain", line=10)
    b.at("admin")
    b.call("io_delay", [b.call("input_int", [b.i64(1)], line=11)], line=11)
    b.call("setuid", [0], line=12)                 # privilege operation
    b.br("plain", line=12)
    b.at("plain")
    b.ret(b.i32(0), line=13)
    b.end_function()

    b.begin_function("admin_toggler", I32, [("arg", ptr(I8))],
                     source_file="service.c")
    b.store(1, is_admin, line=20)                  # racy write (transient)
    b.call("io_delay", [30], line=21)
    b.store(0, is_admin, line=22)
    b.ret(b.i32(0), line=23)
    b.end_function()

    b.begin_function("main", I32, [], source_file="service.c")
    t1 = b.call("thread_create",
                [module.get_function("session_worker"), b.null()], line=30)
    t2 = b.call("thread_create",
                [module.get_function("admin_toggler"), b.null()], line=31)
    b.call("thread_join", [t1], line=32)
    b.call("thread_join", [t2], line=33)
    b.ret(b.i32(0), line=34)
    b.end_function()
    verify_module(module)
    return module


def main() -> None:
    spec = ProgramSpec(
        name="my_service",
        module_factory=build_module,
        workload_inputs={1: [20]},
        detect_seeds=range(12),
        verify_seeds=range(8),
    )
    result = OwlPipeline(spec).run()
    print("race reports: %d, remaining after reduction: %d" % (
        result.counters.raw_reports, result.counters.remaining,
    ))
    print()
    for vulnerability in result.vulnerabilities:
        print(format_full_report(vulnerability))
        print()
    for attack in result.attacks:
        print(attack.verification.describe())


if __name__ == "__main__":
    main()
