#!/usr/bin/env python
"""Exploiting the MySQL bug-24988 FLUSH PRIVILEGES race (paper Table 4).

``acl_reload`` rebuilds the in-memory privilege entries field by field while
connection threads keep authenticating against them; the attacker's user id
transiently shares a slot with the superuser's leftover privilege mask.
The paper triggered the corruption "with only 18 repeated executions" of
``flush privileges;``.

Run with::

    python examples/mysql_privilege_escalation.py
"""

from repro import spec_by_name
from repro.exploits import exploit_attack


def main() -> None:
    spec = spec_by_name("mysql")
    attack = next(a for a in spec.attacks if a.attack_id == "mysql-24988")
    print("Attack: %s" % attack.name)
    print("  subtle input: %s" % attack.subtle_input_summary)
    print()

    outcome = exploit_attack(spec, attack, max_repetitions=50)
    print(outcome.describe())
    if outcome.success:
        vm = spec.make_vm(seed=outcome.seed, inputs=attack.subtle_inputs)
        vm.start("main")
        vm.run()
        print()
        print("session effective uid: %d (attacker authenticated as user %d)"
              % (vm.world.euid, 2))
        print("privileged statements executed:")
        for record in vm.world.exec_log:
            print("  %s(%r) with euid=%d" % (
                record.kind, record.command, record.euid,
            ))
        print()
        print("The unprivileged connection obtained superuser access — the")
        print("privilege escalation of MySQL bug 24988.")


if __name__ == "__main__":
    main()
