#!/usr/bin/env python
"""Quickstart: run the full OWL pipeline on the Libsafe target.

This walks the paper's running example (section 4.3, Figures 1, 4 and 5):
a data race on Libsafe's ``dying`` flag lets a thread bypass the stack
overflow check in ``stack_check()`` and run an unchecked ``strcpy()``.

Run with::

    python examples/quickstart.py
"""

from repro import OwlPipeline, spec_by_name
from repro.owl.hints import format_full_report


def main() -> None:
    spec = spec_by_name("libsafe")
    print("Target: %s (paper LoC: %s)" % (spec.name, spec.paper_loc))
    print("Running the OWL pipeline (detect -> reduce -> verify -> "
          "analyze -> verify attack)...")
    print()

    result = OwlPipeline(spec).run()
    counters = result.counters

    print("Stage counters (compare with paper Tables 2/3, row Libsafe):")
    print("  race reports:          %d   (paper: 3)" % counters.raw_reports)
    print("  adhoc syncs:           %d   (paper: 0)" % counters.adhoc_syncs)
    print("  verifier eliminated:   %d   (paper: 0)" %
          counters.verifier_eliminated)
    print("  remaining:             %d   (paper: 3)" % counters.remaining)
    print("  OWL reports:           %d   (paper: 3)" %
          counters.vulnerability_reports)
    print()

    print("Vulnerable input hints (paper Figures 4 and 5):")
    for vulnerability in result.vulnerabilities:
        print()
        print(format_full_report(vulnerability))
    print()

    print("Verified attacks:")
    for attack in result.realized_attacks():
        truth = attack.ground_truth
        print("  %s — %s" % (
            truth.attack_id if truth else "unknown",
            attack.verification.describe(),
        ))
    if not result.realized_attacks():
        print("  none (unexpected: the Libsafe attack should be realized)")


if __name__ == "__main__":
    main()
