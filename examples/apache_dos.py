#!/usr/bin/env python
"""Exploiting the Apache bug-46215 integer-overflow DoS (paper Figure 8,
section 8.4).

Concurrent ``proxy_balancer_post_request`` calls underflow the unsigned
busyness counter to 18,446,744,073,709,551,614 — the exact value the paper
reports — after which ``find_best_bybusyness`` permanently starves the
"busiest" worker.

Run with::

    python examples/apache_dos.py
"""

from repro import spec_by_name
from repro.apps.apache_balancer import read_assigned, read_worker_busy
from repro.exploits import exploit_attack

PAPER_VALUE = 18_446_744_073_709_551_614


def main() -> None:
    spec = spec_by_name("apache_balancer")
    attack = spec.attacks[0]
    print("Attack: %s" % attack.name)
    print("  %s" % attack.description)
    print()

    # Healthy run: worker 0 finishes its request, counters balanced.
    vm = spec.make_vm(seed=0, inputs=attack.naive_inputs)
    vm.start("main")
    vm.run()
    print("naive inputs : worker0.busy=%d assigned=(%d, %d)" % (
        read_worker_busy(vm, 0), read_assigned(vm, 0), read_assigned(vm, 1),
    ))

    outcome = exploit_attack(spec, attack, max_repetitions=50)
    print()
    print(outcome.describe())
    if outcome.success:
        vm = spec.make_vm(seed=outcome.seed, inputs=attack.subtle_inputs)
        vm.start("main")
        vm.run()
        busy = read_worker_busy(vm, 0)
        print()
        print("subtle inputs: worker0.busy=%d" % busy)
        print("               assigned=(worker0: %d, worker1: %d)" % (
            read_assigned(vm, 0), read_assigned(vm, 1),
        ))
        if busy == PAPER_VALUE:
            print()
            print("worker0.busy == 18,446,744,073,709,551,614 — the exact "
                  "overflowed value the paper observed (section 8.4).")
        print()
        print("Worker 0 received zero requests: the balancer views it as the")
        print("'busiest' worker forever — a denial of service.")


if __name__ == "__main__":
    main()
