#!/usr/bin/env python
"""Exploiting the Apache bug-25520 HTML integrity violation (paper
Figure 7, section 8.4).

The exploit crafts a log message whose overflowing bytes overwrite the log
file descriptor stored next to ``buf->outbuf``; the next flush writes
Apache's own request log into another user's HTML page.

Run with::

    python examples/apache_html_integrity.py
"""

from repro import spec_by_name
from repro.exploits import exploit_attack


def main() -> None:
    spec = spec_by_name("apache_log")
    attack = spec.attacks[0]
    print("Attack: %s" % attack.name)
    print("  %s" % attack.description)
    print("  reference: %s" % attack.reference)
    print()

    # Show the victim file before the attack.
    vm = spec.make_vm(seed=0, inputs=attack.naive_inputs)
    vm.start("main")
    vm.run()
    print("user.html with naive inputs:   %r" %
          vm.world.file_content("user.html"))

    # Drive the exploit: subtle inputs + repetition over fresh schedules.
    outcome = exploit_attack(spec, attack, max_repetitions=50)
    print()
    print(outcome.describe())
    if outcome.success:
        vm = spec.make_vm(seed=outcome.seed, inputs=attack.subtle_inputs)
        vm.start("main")
        vm.run()
        print()
        print("user.html after the attack:    %r" %
              vm.world.file_content("user.html"))
        print("access.log after the attack:   %r" %
              vm.world.file_content("access.log"))
        print()
        print("The request log bytes landed inside the user's HTML file —")
        print("an HTML integrity violation and information leak.")


if __name__ == "__main__":
    main()
