#!/usr/bin/env python
"""Detecting a previously unknown attack: the SSDB use-after-free
(CVE-2016-1000324, paper Figure 6 and section 8.4).

The script shows all five pipeline stages explicitly, instead of the
one-call :class:`repro.OwlPipeline`, so each component's contribution is
visible — including the 10 noise reports the dynamic race verifier
eliminates and the control-dependent hint on the line-359 branch.

Run with::

    python examples/ssdb_use_after_free.py
"""

from repro import spec_by_name
from repro.detectors import run_tsan
from repro.owl.adhoc import AdhocSyncDetector
from repro.owl.hints import format_full_report
from repro.owl.race_verifier import DynamicRaceVerifier
from repro.owl.vuln_analysis import VulnerabilityAnalyzer
from repro.owl.vuln_verifier import DynamicVulnerabilityVerifier


def main() -> None:
    spec = spec_by_name("ssdb")
    module = spec.build()

    # Stage 1: the front-end race detector over the testing workload.
    reports, _ = run_tsan(module, inputs=spec.workload_inputs,
                          seeds=spec.detect_seeds, max_steps=spec.max_steps)
    print("Stage 1 — TSan-style detection: %d race reports" % len(reports))

    # Stage 2: adhoc-synchronization pruning (none in SSDB, matching Table 3).
    annotations = AdhocSyncDetector().analyze(reports)
    print("Stage 2 — adhoc synchronizations: %d" %
          annotations.unique_static_count())

    # Stage 3: dynamic race verification with thread-specific breakpoints.
    verifier = DynamicRaceVerifier(
        module, inputs=spec.workload_inputs, seeds=spec.verify_seeds,
        max_steps=spec.max_steps,
    )
    verified = []
    for report in reports:
        verification = verifier.verify(report)
        if verification.verified:
            verified.append(report)
            print("Stage 3 — verified race on %s: %s" % (
                report.variable, verification.hints.describe(),
            ))
    print("Stage 3 — %d verified, %d eliminated" % (
        len(verified), len(reports) - len(verified),
    ))

    # Stage 4: Algorithm 1 computes the vulnerable input hints.
    analyzer = VulnerabilityAnalyzer(module)
    vulnerabilities = []
    for report in verified:
        vulnerabilities.extend(analyzer.analyze_report(report))
    print()
    print("Stage 4 — %d vulnerability reports:" % len(vulnerabilities))
    for vulnerability in vulnerabilities:
        print()
        print(format_full_report(vulnerability))

    # Stage 5: verify the attack is real — re-run with the subtle inputs.
    attack = spec.attacks[0]
    print()
    print("Stage 5 — verifying with subtle inputs (%s):" %
          attack.subtle_input_summary)
    vuln_verifier = DynamicVulnerabilityVerifier(
        module, inputs=attack.subtle_inputs, seeds=spec.verify_seeds,
        max_steps=spec.max_steps, attack_predicate=attack.predicate,
        racing_order=(attack.racing_order, ""),
    )
    for vulnerability in vulnerabilities:
        outcome = vuln_verifier.verify(vulnerability)
        print("  %s" % outcome.describe())

    print()
    print("Reference: %s" % attack.reference)


if __name__ == "__main__":
    main()
