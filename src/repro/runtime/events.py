"""Execution-trace events and the observer interface.

Detectors (TSan-like, SKI-like, lockset) attach to the VM as
:class:`TraceObserver`s and receive one event per shared-memory access, sync
operation, thread lifecycle change, allocation and external call.  This is
the reproduction's equivalent of TSan's compiler instrumentation / SKI's
hypervisor-level interception.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.ir.instructions import Instruction

CallStack = Tuple[Tuple[str, str, int], ...]


class TraceEvent:
    """Base class for all trace events."""

    __slots__ = ("thread_id", "step")

    def __init__(self, thread_id: int, step: int):
        self.thread_id = thread_id
        self.step = step


class AccessEvent(TraceEvent):
    """A shared-memory read or write.

    ``variable`` — the human-readable description of the accessed location
    (``memory.describe``'s field scan plus formatting) — may be passed as a
    zero-argument callable; it is then resolved lazily on first attribute
    access and cached, keeping description work off the per-access hot path
    for observers that never read it.
    """

    __slots__ = (
        "instruction", "address", "size", "is_write", "value", "is_atomic",
        "call_stack", "_variable",
    )

    def __init__(
        self,
        thread_id: int,
        step: int,
        instruction: Instruction,
        address: int,
        size: int,
        is_write: bool,
        value: int,
        is_atomic: bool,
        call_stack: CallStack,
        variable=None,
    ):
        super().__init__(thread_id, step)
        self.instruction = instruction
        self.address = address
        self.size = size
        self.is_write = is_write
        self.value = value
        self.is_atomic = is_atomic
        self.call_stack = call_stack
        self._variable = variable

    @property
    def variable(self) -> Optional[str]:
        value = self._variable
        if callable(value):
            value = value()
            self._variable = value
        return value

    @variable.setter
    def variable(self, value) -> None:
        self._variable = value

    def __repr__(self) -> str:
        mode = "W" if self.is_write else "R"
        return "<%s t%d %s 0x%x size=%d val=%d at %s>" % (
            mode, self.thread_id, self.variable or "?", self.address, self.size,
            self.value, self.instruction.location,
        )


class SyncEvent(TraceEvent):
    """A synchronization operation creating happens-before edges."""

    ACQUIRE = "acquire"
    RELEASE = "release"

    __slots__ = ("kind", "address", "instruction")

    def __init__(self, thread_id: int, step: int, kind: str, address: int,
                 instruction: Optional[Instruction] = None):
        super().__init__(thread_id, step)
        self.kind = kind
        self.address = address
        self.instruction = instruction

    def __repr__(self) -> str:
        return "<Sync t%d %s 0x%x>" % (self.thread_id, self.kind, self.address)


class ThreadLifecycleEvent(TraceEvent):
    """Thread creation, start, join and exit."""

    CREATE = "create"
    START = "start"
    EXIT = "exit"
    JOIN = "join"

    __slots__ = ("kind", "other_thread_id")

    def __init__(self, thread_id: int, step: int, kind: str, other_thread_id: int):
        super().__init__(thread_id, step)
        self.kind = kind
        self.other_thread_id = other_thread_id

    def __repr__(self) -> str:
        return "<Thread t%d %s t%d>" % (self.thread_id, self.kind, self.other_thread_id)


class AllocEvent(TraceEvent):
    """A heap allocation."""

    __slots__ = ("address", "size")

    def __init__(self, thread_id: int, step: int, address: int, size: int):
        super().__init__(thread_id, step)
        self.address = address
        self.size = size


class FreeEvent(TraceEvent):
    """A heap free."""

    __slots__ = ("address",)

    def __init__(self, thread_id: int, step: int, address: int):
        super().__init__(thread_id, step)
        self.address = address


class ExternalCallEvent(TraceEvent):
    """A call into an external (runtime-implemented) function."""

    __slots__ = ("name", "arguments", "instruction", "call_stack")

    def __init__(
        self,
        thread_id: int,
        step: int,
        name: str,
        arguments: Sequence[int],
        instruction: Optional[Instruction],
        call_stack: CallStack,
    ):
        super().__init__(thread_id, step)
        self.name = name
        self.arguments = tuple(arguments)
        self.instruction = instruction
        self.call_stack = call_stack

    def __repr__(self) -> str:
        return "<Ext t%d %s%r>" % (self.thread_id, self.name, self.arguments)


class TraceObserver:
    """Interface for components consuming the execution trace.

    All hooks default to no-ops so observers override only what they need.
    """

    def on_access(self, event: AccessEvent) -> None:
        pass

    def on_sync(self, event: SyncEvent) -> None:
        pass

    def on_thread(self, event: ThreadLifecycleEvent) -> None:
        pass

    def on_alloc(self, event: AllocEvent) -> None:
        pass

    def on_free(self, event: FreeEvent) -> None:
        pass

    def on_external_call(self, event: ExternalCallEvent) -> None:
        pass

    def on_fault(self, event) -> None:
        pass

    def on_finish(self, vm) -> None:
        pass
