"""Semantics of the external (runtime-implemented) functions.

Externals are the reproduction's libc + syscall + pthread layer.  The
security-sensitive ones are OWL's vulnerable sites (paper section 3.2):

- memory operations: ``strcpy``/``memcpy``/... perform real byte copies with
  block- and field-bound checking, so overflows actually corrupt memory;
- privilege operations: ``setuid``/``commit_creds`` mutate
  :class:`repro.runtime.os_model.OSWorld` credentials;
- file operations: ``access``/``open``/``write`` hit the world's file table;
- process-forking operations: ``execve``/``system``/``eval`` append to the
  world's exec log (a root shell is an exec with euid 0).

Blocking externals (``mutex_lock``, ``thread_join``, ``cond_wait``,
``io_delay``) communicate with the interpreter by raising :class:`Block`,
which leaves the program counter on the call so it retries when the thread is
next scheduled.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, List, Optional

from repro.runtime.errors import FaultEvent, FaultKind
from repro.runtime.events import SyncEvent
from repro.runtime.memory import MemoryBlock
from repro.runtime.os_model import PrivilegeRecord


class Block(Exception):
    """Raised by an external to block the calling thread; the call retries."""

    def __init__(self, reason: str, wake_step: Optional[int] = None):
        super().__init__(reason)
        self.reason = reason
        self.wake_step = wake_step


class ProcessExit(Exception):
    """Raised by ``exit`` / ``kill_process`` / ``abort``."""

    def __init__(self, code: int, killed: bool = False):
        super().__init__("exit(%d)" % code)
        self.code = code
        self.killed = killed


ExternalImpl = Callable[["object", "object", object, List[int]], Optional[int]]

_REGISTRY: Dict[str, ExternalImpl] = {}


def external(name: str):
    def decorate(impl: ExternalImpl) -> ExternalImpl:
        _REGISTRY[name] = impl
        return impl
    return decorate


def lookup(name: str) -> ExternalImpl:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError("no runtime implementation for external %r" % name) from None


@contextmanager
def overridden(name: str, impl: ExternalImpl):
    """Temporarily replace one external's implementation.

    Used by the repair oracle to neutralize timing externals
    (``io_delay``/``usleep``) when computing a *serialized reference*
    execution: delays only constrain when a work-conserving scheduler runs
    the other threads, so the delay-free behaviours are exactly the
    behaviours of the idealized semantics in which a scheduler may idle —
    including the fully serialized one no work-conserving schedule can
    produce.  The override is process-global while the context is open;
    callers run single-threaded (the repair path is serial by design).
    """
    saved = _REGISTRY.get(name)
    _REGISTRY[name] = impl
    try:
        yield
    finally:
        if saved is None:
            _REGISTRY.pop(name, None)
        else:
            _REGISTRY[name] = saved


def has_impl(name: str) -> bool:
    return name in _REGISTRY


# ---------------------------------------------------------------------------
# memory management

@external("malloc")
def _malloc(vm, thread, call, args):
    size = args[0]
    block = vm.memory.allocate(size, MemoryBlock.HEAP, name="heap#%d" % vm.step,
                               step=vm.step)
    vm.emit_alloc(thread, block)
    return block.base


@external("free")
def _free(vm, thread, call, args):
    address = args[0]
    if address == 0:
        return 0  # free(NULL) is a no-op, as in C
    fault = vm.memory.free(address, thread.thread_id, vm.step, thread.call_stack())
    if fault is not None:
        vm.raise_fault(fault)
    else:
        vm.emit_free(thread, address)
    return 0


@external("realloc")
def _realloc(vm, thread, call, args):
    address, size = args[0], args[1]
    if address == 0:
        return _malloc(vm, thread, call, [size])
    old = vm.memory.block_at(address)
    fault = vm.memory.free(address, thread.thread_id, vm.step, thread.call_stack())
    if fault is not None:
        # free() already classified the failure (invalid/double free).
        vm.raise_fault(fault)
        return 0
    vm.emit_free(thread, address)
    new = vm.memory.allocate(size, MemoryBlock.HEAP, name="heap#%d" % vm.step,
                             step=vm.step)
    preserved = min(old.size, new.size)
    new.data[:preserved] = old.data[:preserved]
    vm.emit_alloc(thread, new)
    return new.base


# ---------------------------------------------------------------------------
# memory operations (vulnerable site type MEMORY_OP)

def _checked_copy(vm, thread, call, dst: int, data: bytes) -> None:
    """Copy bytes to dst with block/field bound enforcement."""
    if not data:
        return
    block, fault = vm.memory.check_access(
        dst, len(data), True, thread.thread_id, vm.step, thread.call_stack(),
    )
    if fault is not None and fault.kind == FaultKind.BUFFER_OVERFLOW:
        # Corrupt up to the block end, then fault: the overflow is real.
        writable = block.end - dst
        vm.memory.write_bytes(dst, data[:writable])
        vm.raise_fault(fault)
        return
    if fault is not None:
        vm.raise_fault(fault)
        if block is None:
            return
    if block is not None and block.fields:
        offset = dst - block.base
        field = block.field_at(offset)
        if field is not None and offset + len(data) > field[1] + field[2]:
            overflowed = block.field_at(field[1] + field[2])
            vm.record_fault(FaultEvent(
                FaultKind.FIELD_OVERFLOW, thread.thread_id,
                "write of %d bytes at %s overflows into field %s" % (
                    len(data), block.describe_offset(offset),
                    overflowed[0] if overflowed else "<past-end>",
                ),
                address=dst, call_stack=thread.call_stack(), step=vm.step,
            ))
    vm.memory.write_bytes(dst, data)
    vm.emit_range_access(thread, call, dst, len(data), is_write=True)


@external("strcpy")
def _strcpy(vm, thread, call, args):
    dst, src = args[0], args[1]
    data = vm.memory.read_c_string(src) + b"\x00"
    vm.emit_range_access(thread, call, src, len(data), is_write=False)
    _checked_copy(vm, thread, call, dst, data)
    return dst


@external("strncpy")
def _strncpy(vm, thread, call, args):
    dst, src, count = args[0], args[1], args[2]
    data = vm.memory.read_c_string(src)[:count]
    data = data + b"\x00" * (count - len(data))
    vm.emit_range_access(thread, call, src, max(1, len(data)), is_write=False)
    _checked_copy(vm, thread, call, dst, data)
    return dst


@external("strcat")
def _strcat(vm, thread, call, args):
    dst, src = args[0], args[1]
    existing = vm.memory.read_c_string(dst)
    data = vm.memory.read_c_string(src) + b"\x00"
    _checked_copy(vm, thread, call, dst + len(existing), data)
    return dst


@external("memcpy")
def _memcpy(vm, thread, call, args):
    dst, src, count = args[0], args[1], args[2]
    if count <= 0:
        return dst
    src_block, fault = vm.memory.check_access(
        src, count, False, thread.thread_id, vm.step, thread.call_stack(),
    )
    if fault is not None:
        vm.raise_fault(fault)
        if src_block is None:
            return dst
        count = min(count, src_block.end - src)
    data = vm.memory.read_bytes(src, count)
    vm.emit_range_access(thread, call, src, count, is_write=False)
    _checked_copy(vm, thread, call, dst, data)
    return dst


@external("memset")
def _memset(vm, thread, call, args):
    dst, byte, count = args[0], args[1] & 0xFF, args[2]
    if count > 0:
        _checked_copy(vm, thread, call, dst, bytes([byte]) * count)
    return dst


@external("sprintf")
def _sprintf(vm, thread, call, args):
    dst, fmt = args[0], args[1]
    text = _format(vm, fmt, args[2:])
    _checked_copy(vm, thread, call, dst, text + b"\x00")
    return len(text)


@external("strlen")
def _strlen(vm, thread, call, args):
    return len(vm.memory.read_c_string(args[0]))


@external("strcmp")
def _strcmp(vm, thread, call, args):
    a = vm.memory.read_c_string(args[0])
    b = vm.memory.read_c_string(args[1])
    return 0 if a == b else (1 if a > b else -1) & ((1 << 32) - 1)


# ---------------------------------------------------------------------------
# privilege operations (PRIVILEGE_OP)

def _privilege(kind: str):
    @external(kind)
    def impl(vm, thread, call, args, _kind=kind):
        target = args[0] if args else 0
        vm.world.set_uid(_kind, target, vm.step)
        return 0
    return impl


_privilege("setuid")
_privilege("seteuid")
_privilege("setgid")


@external("setgroups")
def _setgroups(vm, thread, call, args):
    vm.world.privilege_log.append(PrivilegeRecord("setgroups", args[0], vm.step))
    return 0


@external("commit_creds")
def _commit_creds(vm, thread, call, args):
    # The credential struct pointer's first 4 bytes hold the uid, kernel-style.
    cred_ptr = args[0]
    uid = vm.memory.read_int(cred_ptr, 4, signed=False) if cred_ptr else 0
    vm.world.set_uid("commit_creds", uid, vm.step)
    return 0


# ---------------------------------------------------------------------------
# file operations (FILE_OP)

@external("access")
def _access(vm, thread, call, args):
    path = vm.memory.read_c_string(args[0]).decode(errors="replace")
    vm.world.file_access_log.append(("access", path, vm.step))
    return 0


@external("open")
def _open(vm, thread, call, args):
    path = vm.memory.read_c_string(args[0]).decode(errors="replace")
    return vm.world.open_file(path, vm.step)


@external("chmod")
def _chmod(vm, thread, call, args):
    path = vm.memory.read_c_string(args[0]).decode(errors="replace")
    vm.world.file_access_log.append(("chmod", path, vm.step))
    return 0


@external("unlink")
def _unlink(vm, thread, call, args):
    path = vm.memory.read_c_string(args[0]).decode(errors="replace")
    vm.world.file_access_log.append(("unlink", path, vm.step))
    return 0


@external("write")
def _write(vm, thread, call, args):
    fd, buffer, count = args[0], args[1], args[2]
    block, fault = vm.memory.check_access(
        buffer, max(1, count), False, thread.thread_id, vm.step, thread.call_stack(),
    )
    if fault is not None:
        vm.raise_fault(fault)
        if block is None:
            return -1 & ((1 << 64) - 1)
        count = min(count, block.end - buffer)
    data = vm.memory.read_bytes(buffer, count)
    vm.emit_range_access(thread, call, buffer, max(1, count), is_write=False)
    return vm.world.write_fd(fd, data, vm.step) & ((1 << 64) - 1)


@external("read")
def _read(vm, thread, call, args):
    return 0


@external("close")
def _close(vm, thread, call, args):
    return 0


# ---------------------------------------------------------------------------
# process forking operations (FORK_OP)

def _exec_like(kind: str):
    @external(kind)
    def impl(vm, thread, call, args, _kind=kind):
        command = ""
        if args and args[0]:
            command = vm.memory.read_c_string(args[0]).decode(errors="replace")
        vm.world.record_exec(_kind, command, vm.step)
        return 0
    return impl


_exec_like("execve")
_exec_like("system")
_exec_like("eval")


@external("fork")
def _fork(vm, thread, call, args):
    vm.world.record_exec("fork", "", vm.step)
    return 0  # child's view; the model does not simulate child processes


# ---------------------------------------------------------------------------
# threads

@external("thread_create")
def _thread_create(vm, thread, call, args):
    function_address, argument = args[0], args[1]
    target = vm.function_at(function_address)
    if target is None:
        vm.raise_fault(FaultEvent(
            FaultKind.NULL_DEREF if function_address == 0 else FaultKind.WILD_ACCESS,
            thread.thread_id,
            "thread_create through invalid function pointer 0x%x" % function_address,
            address=function_address, call_stack=thread.call_stack(), step=vm.step,
        ))
        return 0
    child = vm.spawn_thread(target, [argument], creator=thread)
    return child.thread_id


@external("thread_join")
def _thread_join(vm, thread, call, args):
    target = vm.threads.get(args[0])
    if target is None:
        return -1 & ((1 << 32) - 1)
    from repro.runtime.thread import ThreadState

    if target.state != ThreadState.FINISHED:
        raise Block("join t%d" % target.thread_id)
    vm.emit_join(thread, target)
    return 0


@external("thread_exit")
def _thread_exit(vm, thread, call, args):
    vm.finish_thread(thread, 0)
    return None


@external("thread_yield")
def _thread_yield(vm, thread, call, args):
    return 0


# ---------------------------------------------------------------------------
# synchronization

@external("mutex_init")
def _mutex_init(vm, thread, call, args):
    vm.mutexes.setdefault(args[0], None)
    return 0


@external("mutex_lock")
def _mutex_lock(vm, thread, call, args):
    address = args[0]
    holder = vm.mutexes.get(address)
    if holder is not None and holder != thread.thread_id:
        raise Block("mutex 0x%x" % address)
    vm.mutexes[address] = thread.thread_id
    thread.held_mutexes.append(address)
    vm.emit_sync(thread, SyncEvent.ACQUIRE, address, call)
    return 0


@external("mutex_unlock")
def _mutex_unlock(vm, thread, call, args):
    address = args[0]
    if vm.mutexes.get(address) == thread.thread_id:
        vm.mutexes[address] = None
        if address in thread.held_mutexes:
            thread.held_mutexes.remove(address)
    vm.emit_sync(thread, SyncEvent.RELEASE, address, call)
    return 0


@external("cond_init")
def _cond_init(vm, thread, call, args):
    vm.cond_waiters.setdefault(args[0], [])
    return 0


@external("cond_wait")
def _cond_wait(vm, thread, call, args):
    cond, mutex = args[0], args[1]
    state = thread.__dict__.setdefault("_cond_state", {})
    phase = state.get(call, 0)
    if phase == 0:
        # Release the mutex, register as a waiter, block until signalled.
        if vm.mutexes.get(mutex) == thread.thread_id:
            vm.mutexes[mutex] = None
            if mutex in thread.held_mutexes:
                thread.held_mutexes.remove(mutex)
            vm.emit_sync(thread, SyncEvent.RELEASE, mutex, call)
        vm.cond_waiters.setdefault(cond, []).append(thread.thread_id)
        state[call] = 1
        raise Block("cond 0x%x" % cond)
    if phase == 1:
        if thread.thread_id in vm.cond_waiters.get(cond, []):
            raise Block("cond 0x%x" % cond)
        state[call] = 2  # signalled; now re-acquire the mutex
    holder = vm.mutexes.get(mutex)
    if holder is not None and holder != thread.thread_id:
        raise Block("mutex 0x%x" % mutex)
    vm.mutexes[mutex] = thread.thread_id
    thread.held_mutexes.append(mutex)
    vm.emit_sync(thread, SyncEvent.ACQUIRE, mutex, call)
    state.pop(call, None)
    return 0


@external("cond_signal")
def _cond_signal(vm, thread, call, args):
    waiters = vm.cond_waiters.get(args[0], [])
    if waiters:
        woken = waiters.pop(0)
        vm.unblock(woken)
    vm.emit_sync(thread, SyncEvent.RELEASE, args[0], call)
    return 0


@external("cond_broadcast")
def _cond_broadcast(vm, thread, call, args):
    waiters = vm.cond_waiters.get(args[0], [])
    while waiters:
        vm.unblock(waiters.pop(0))
    vm.emit_sync(thread, SyncEvent.RELEASE, args[0], call)
    return 0


@external("atomic_add")
def _atomic_add(vm, thread, call, args):
    address, delta = args[0], args[1]
    vm.emit_sync(thread, SyncEvent.ACQUIRE, address, call)
    old = vm.memory.read_int(address, 8, signed=False)
    vm.memory.write_int(address, old + delta, 8)
    vm.emit_sync(thread, SyncEvent.RELEASE, address, call)
    return old


@external("atomic_sub")
def _atomic_sub(vm, thread, call, args):
    address, delta = args[0], args[1]
    vm.emit_sync(thread, SyncEvent.ACQUIRE, address, call)
    old = vm.memory.read_int(address, 8, signed=False)
    vm.memory.write_int(address, old - delta, 8)
    vm.emit_sync(thread, SyncEvent.RELEASE, address, call)
    return old


@external("tsan_acquire")
def _tsan_acquire(vm, thread, call, args):
    vm.emit_sync(thread, SyncEvent.ACQUIRE, args[0], call)
    return None


@external("tsan_release")
def _tsan_release(vm, thread, call, args):
    vm.emit_sync(thread, SyncEvent.RELEASE, args[0], call)
    return None


# ---------------------------------------------------------------------------
# timing

@external("io_delay")
def _io_delay(vm, thread, call, args):
    state = thread.__dict__.setdefault("_sleep_state", {})
    if state.get(call):
        state.pop(call, None)
        return None
    state[call] = True
    raise Block("io_delay", wake_step=vm.step + max(1, args[0]))


@external("usleep")
def _usleep(vm, thread, call, args):
    state = thread.__dict__.setdefault("_sleep_state", {})
    if state.get(call):
        state.pop(call, None)
        return None
    state[call] = True
    raise Block("usleep", wake_step=vm.step + max(1, args[0]))


# ---------------------------------------------------------------------------
# misc

def _format(vm, fmt_address: int, varargs) -> bytes:
    """A tiny printf: supports %d, %u, %s, %x, %%."""
    fmt = vm.memory.read_c_string(fmt_address)
    out = bytearray()
    arg_iter = iter(varargs)
    i = 0
    while i < len(fmt):
        byte = fmt[i]
        if byte != ord("%") or i + 1 >= len(fmt):
            out.append(byte)
            i += 1
            continue
        spec = chr(fmt[i + 1])
        i += 2
        if spec == "%":
            out.append(ord("%"))
        elif spec in ("d", "i"):
            value = next(arg_iter, 0)
            if value >= 1 << 63:
                value -= 1 << 64
            out.extend(str(value).encode())
        elif spec == "u":
            out.extend(str(next(arg_iter, 0)).encode())
        elif spec == "x":
            out.extend(("%x" % next(arg_iter, 0)).encode())
        elif spec == "s":
            pointer = next(arg_iter, 0)
            out.extend(vm.memory.read_c_string(pointer) if pointer else b"(null)")
        else:
            out.extend(b"%" + spec.encode())
    return bytes(out)


@external("printf")
def _printf(vm, thread, call, args):
    text = _format(vm, args[0], args[1:])
    vm.world.stdout.extend(text)
    return len(text)


@external("puts")
def _puts(vm, thread, call, args):
    text = vm.memory.read_c_string(args[0]) + b"\n"
    vm.world.stdout.extend(text)
    return len(text)


@external("exit")
def _exit(vm, thread, call, args):
    raise ProcessExit(args[0] if args else 0)


@external("abort")
def _abort(vm, thread, call, args):
    raise ProcessExit(134, killed=True)


@external("kill_process")
def _kill_process(vm, thread, call, args):
    raise ProcessExit(137, killed=True)


@external("getpid")
def _getpid(vm, thread, call, args):
    return 4242


@external("getuid")
def _getuid(vm, thread, call, args):
    return vm.world.uid


@external("rand_range")
def _rand_range(vm, thread, call, args):
    bound = max(1, args[0])
    return vm.rng.randrange(bound)


@external("input_int")
def _input_int(vm, thread, call, args):
    return vm.next_input(args[0])


@external("input_str")
def _input_str(vm, thread, call, args):
    value = vm.next_input(args[0])
    if isinstance(value, int):
        value = str(value)
    data = value.encode() if isinstance(value, str) else bytes(value)
    block = vm.memory.allocate(len(data) + 1, MemoryBlock.HEAP,
                               name="input#%d" % vm.step, step=vm.step)
    vm.memory.write_bytes(block.base, data + b"\x00")
    return block.base
