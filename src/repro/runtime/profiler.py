"""Sampling profiler for the OWL VM: where do the cycles go?

The VM executes one IR instruction per scheduler decision, so "CPU time"
in this interpreter is *step count*, and a statistically fair profile is
one sample every K scheduler decisions.  :class:`SamplingProfiler` wraps
the scheduler (the same pure-delegation idiom as
:class:`repro.runtime.coverage.SwitchTracker` and
:class:`repro.runtime.record.ScheduleRecorder`): every K-th ``choose``
it attributes the chosen thread's memoized :meth:`call_stack` to

- the **app function stack** (collapsed-stack / flamegraph lines),
- the **opcode class** about to execute (``Load``, ``Call``, …), and
- **detector-observer overhead** — samples landing on event-emitting
  opcodes (loads/stores/atomics) while observers are attached, i.e. the
  fraction of steps that pay the access-event fan-out.

Determinism: the wrapper delegates every decision unchanged, the sample
points are a pure function of the decision count, and the sampled stacks
are a pure function of program state — so given the same seed and
interval, two runs produce byte-identical profiles, and per-seed
profiles merge associatively in seed order (the snapshot-parity
discipline of :mod:`repro.runtime.telemetry`).

Zero overhead when off: profiling is opt-in per run; an unprofiled run
never constructs the wrapper, so the hot loop's ``scheduler.choose``
binding is untouched.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.runtime.scheduler import Scheduler
from repro.runtime.thread import ThreadContext

__all__ = [
    "DEFAULT_SAMPLE_INTERVAL",
    "EVENT_OPCODES",
    "SeedProfile",
    "SamplingProfiler",
    "merge_profiles",
]

#: Default sampling stride (scheduler decisions between samples).
DEFAULT_SAMPLE_INTERVAL = 251

#: Opcode classes whose execution fans out events to attached observers
#: (the detector-overhead attribution bucket).
EVENT_OPCODES = frozenset(["Load", "Store", "AtomicRMW"])


class SeedProfile:
    """Mergeable sample aggregate for one (or many, merged) seeds.

    ``stacks`` maps a collapsed call stack — ``";"``-joined function
    names, outermost first — to its sample count; ``functions`` and
    ``opcodes`` are the innermost-function and instruction-class
    marginals.  All plain data: round-trips through the batch pool's
    JSON payloads and merges by addition.
    """

    __slots__ = ("interval", "samples", "observer_samples", "stacks",
                 "functions", "opcodes")

    def __init__(self, interval: int):
        self.interval = interval
        self.samples = 0
        self.observer_samples = 0
        self.stacks: Dict[str, int] = {}
        self.functions: Dict[str, int] = {}
        self.opcodes: Dict[str, int] = {}

    def record(self, stack: str, function: str, opcode: str,
               observed: bool) -> None:
        self.samples += 1
        if observed:
            self.observer_samples += 1
        self.stacks[stack] = self.stacks.get(stack, 0) + 1
        self.functions[function] = self.functions.get(function, 0) + 1
        self.opcodes[opcode] = self.opcodes.get(opcode, 0) + 1

    def merge(self, other: "SeedProfile") -> None:
        if other.interval != self.interval:
            raise ValueError(
                "cannot merge profiles sampled at different intervals: "
                "%d vs %d" % (self.interval, other.interval))
        self.samples += other.samples
        self.observer_samples += other.observer_samples
        for target, source in ((self.stacks, other.stacks),
                               (self.functions, other.functions),
                               (self.opcodes, other.opcodes)):
            for key, count in source.items():
                target[key] = target.get(key, 0) + count

    # ------------------------------------------------------------------
    # payload round-trip (batch pool / result cache)

    def to_payload(self) -> Dict:
        return {
            "interval": self.interval,
            "samples": self.samples,
            "observer_samples": self.observer_samples,
            "stacks": dict(self.stacks),
            "functions": dict(self.functions),
            "opcodes": dict(self.opcodes),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "SeedProfile":
        profile = cls(int(payload["interval"]))
        profile.samples = int(payload["samples"])
        profile.observer_samples = int(payload["observer_samples"])
        profile.stacks = {str(k): int(v)
                          for k, v in payload["stacks"].items()}
        profile.functions = {str(k): int(v)
                             for k, v in payload["functions"].items()}
        profile.opcodes = {str(k): int(v)
                           for k, v in payload["opcodes"].items()}
        return profile

    # ------------------------------------------------------------------
    # reports

    def collapsed(self) -> str:
        """Collapsed-stack (Brendan Gregg flamegraph) text.

        One ``stack count`` line per distinct stack, sorted by stack so
        the bytes are stable across runs and job counts; feed straight
        into ``flamegraph.pl`` or speedscope.
        """
        return "\n".join("%s %d" % (stack, count)
                         for stack, count in sorted(self.stacks.items()))

    def top_functions(self, n: int = 10) -> List[Tuple[str, int]]:
        return sorted(self.functions.items(),
                      key=lambda item: (-item[1], item[0]))[:n]

    def top_opcodes(self, n: int = 10) -> List[Tuple[str, int]]:
        return sorted(self.opcodes.items(),
                      key=lambda item: (-item[1], item[0]))[:n]

    def top_table(self, n: int = 10) -> str:
        """Aligned top-N table (functions then opcode classes)."""
        lines = ["%d samples, %d on observer-visible opcodes (%.1f%%)" % (
            self.samples, self.observer_samples,
            100.0 * self.observer_samples / self.samples
            if self.samples else 0.0)]
        for title, rows in (("function", self.top_functions(n)),
                            ("opcode", self.top_opcodes(n))):
            lines.append("  %-28s %8s %7s" % (title, "samples", "share"))
            for name, count in rows:
                share = 100.0 * count / self.samples if self.samples else 0.0
                lines.append("  %-28s %8d %6.1f%%" % (name, count, share))
        return "\n".join(lines)

    def summary(self, n: int = 5) -> Dict:
        """Compact block for the metrics JSON ``telemetry`` section."""
        return {
            "interval": self.interval,
            "samples": self.samples,
            "observer_samples": self.observer_samples,
            "top_functions": [list(item) for item in self.top_functions(n)],
            "top_opcodes": [list(item) for item in self.top_opcodes(n)],
        }


class SamplingProfiler(Scheduler):
    """Scheduler wrapper sampling every ``interval``-th decision.

    Delegates every decision unchanged; the profiled schedule is
    identical to the unprofiled one.  Wrap *outermost* (around any
    recorder/tracker) so the sampled thread is exactly the one about to
    execute.
    """

    def __init__(self, inner: Scheduler, interval: int = DEFAULT_SAMPLE_INTERVAL,
                 data: Optional[SeedProfile] = None, observed: bool = False):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        self.inner = inner
        self.interval = interval
        self.data = data if data is not None else SeedProfile(interval)
        #: Whether the VM has observers attached (detector overhead bucket).
        self.observed = observed
        self._countdown = interval

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        chosen = self.inner.choose(runnable, step)
        countdown = self._countdown - 1
        if countdown == 0:
            countdown = self.interval
            self._sample(chosen)
        self._countdown = countdown
        return chosen

    def on_thread_created(self, thread: ThreadContext) -> None:
        self.inner.on_thread_created(thread)

    def reset(self) -> None:
        self.inner.reset()
        self._countdown = self.interval

    def _sample(self, thread: ThreadContext) -> None:
        stack = thread.call_stack()
        if stack:
            frames = ";".join(entry[0] for entry in stack)
            function = stack[-1][0]
        else:
            frames = function = "<no-stack>"
        instruction = thread.current_instruction()
        opcode = instruction.__class__.__name__ if instruction is not None \
            else "<none>"
        self.data.record(frames, function, opcode,
                         self.observed and opcode in EVENT_OPCODES)


def merge_profiles(profiles) -> Optional[SeedProfile]:
    """Merge per-seed profiles in the order given (callers pass seed order)."""
    merged: Optional[SeedProfile] = None
    for profile in profiles:
        if profile is None:
            continue
        if merged is None:
            merged = SeedProfile(profile.interval)
        merged.merge(profile)
    return merged
