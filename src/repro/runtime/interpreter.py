"""The instruction-stepping virtual machine.

One :class:`VM` instance is one process execution: a module, a shared memory,
an OS world, a set of threads and a scheduler.  Each scheduler step executes
exactly one instruction of one thread, so every interleaving of shared-memory
accesses is reachable by some scheduler — the property the paper's dynamic
tools (TSan, SKI, the LLDB verifiers) rely on hardware timing for.

Key behaviours:

- shared-memory loads/stores on global and heap blocks emit
  :class:`repro.runtime.events.AccessEvent`s to attached observers (stack
  slots are thread-private in the model programs and stay silent, mirroring
  TSan's escape-analysis-driven instrumentation);
- indirect calls through a NULL or dangling function pointer raise the
  corresponding fault — this is the Linux uselib attack's consequence
  (paper Figure 2);
- a debugger may be attached; it can halt individual threads at breakpoints
  while the rest keep running (thread-specific breakpoints, paper
  section 5.2).
"""

from __future__ import annotations

import random
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Union

from repro.ir.function import ExternalFunction, Function
from repro.ir.instructions import (
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Ret,
    Store,
)
from repro.ir.module import Module
from repro.ir.types import IntType, PointerType
from repro.ir.values import Argument, Constant, GlobalVariable, Value
from repro.runtime import externals
from repro.runtime.errors import FaultEvent, FaultKind, RuntimeFault
from repro.runtime.events import (
    AccessEvent,
    AllocEvent,
    ExternalCallEvent,
    FreeEvent,
    SyncEvent,
    ThreadLifecycleEvent,
    TraceObserver,
)
from repro.runtime.memory import Memory, MemoryBlock, store_initializer
from repro.runtime.os_model import OSWorld
from repro.runtime.scheduler import RoundRobinScheduler, Scheduler
from repro.runtime.thread import Frame, ThreadContext, ThreadState

MASK64 = (1 << 64) - 1

#: Faults that corrupt state but let execution continue (attack material).
NONFATAL_FAULTS = frozenset({FaultKind.FIELD_OVERFLOW})

#: When True, newly constructed VMs default to the reference configuration:
#: isinstance-chain dispatch and no memoization anywhere.  The differential
#: oracle (:mod:`repro.runtime.diffcheck`) flips this to re-execute whole
#: pipeline stages with the pre-optimization semantics.
_REFERENCE_MODE = False


@contextmanager
def reference_execution():
    """Every VM constructed inside the block runs in reference mode."""
    global _REFERENCE_MODE
    previous = _REFERENCE_MODE
    _REFERENCE_MODE = True
    try:
        yield
    finally:
        _REFERENCE_MODE = previous


class ExecutionResult:
    """Outcome of a (partial) run."""

    FINISHED = "finished"
    BREAKPOINT = "breakpoint"
    DEADLOCK = "deadlock"
    STEP_LIMIT = "step-limit"
    FAULT = "fault"
    EXITED = "exited"
    KILLED = "killed"

    def __init__(self, reason: str, vm: "VM"):
        self.reason = reason
        self.steps = vm.step
        self.faults = list(vm.faults)
        self.exit_code = vm.world.exit_code

    def __repr__(self) -> str:
        return "<ExecutionResult %s steps=%d faults=%d>" % (
            self.reason, self.steps, len(self.faults),
        )


class VM:
    """A process execution of an IR module."""

    def __init__(
        self,
        module: Module,
        scheduler: Optional[Scheduler] = None,
        world: Optional[OSWorld] = None,
        inputs: Optional[Dict] = None,
        max_steps: int = 200_000,
        seed: int = 0,
        nonfatal_faults: frozenset = NONFATAL_FAULTS,
        reference: Optional[bool] = None,
        fuse: bool = False,
    ):
        self.module = module
        self.scheduler = scheduler or RoundRobinScheduler()
        self.world = world or OSWorld()
        #: reference=True disables every hot-path shortcut (dispatch table,
        #: call-stack memo, block/description caches) so the differential
        #: oracle can compare against the plain implementation.  None picks
        #: up the ambient :func:`reference_execution` mode.
        self.reference = _REFERENCE_MODE if reference is None else reference
        self.memory = Memory(memoize=not self.reference)
        if self.reference:
            self.execute = self._execute_reference  # type: ignore[assignment]
        #: fuse=True compiles hot straight-line runs into superinstructions
        #: (:mod:`repro.runtime.fuse`); bounded per run by the scheduler's
        #: ``run_length`` no-preempt guarantee, so schedules and events are
        #: bit-identical with fusion on or off.  Passing a ``FuseEngine``
        #: instance shares its plan cache across VMs of the same module
        #: (the seed sweeps), amortizing compiles.  Reference mode forces
        #: fusion off — the oracle's reference leg must stay the plain
        #: loop.
        self.fuse = bool(fuse) and not self.reference
        if self.fuse:
            from repro.runtime.fuse import FuseEngine

            engine = fuse if isinstance(fuse, FuseEngine) else FuseEngine()
            self.fuse_engine: Optional["FuseEngine"] = None
        else:
            engine = None
            self.fuse_engine = None
        self.inputs: Dict = dict(inputs or {})
        self._input_cursors: Dict = {}
        self.max_steps = max_steps
        self.rng = random.Random(seed)
        self.nonfatal_faults = nonfatal_faults
        self.step = 0
        self.threads: Dict[int, ThreadContext] = {}
        # Incremental scheduling state: the run loop must not rescan every
        # thread ever created on every step.  ``_alive`` holds non-finished
        # threads in creation order (matching ``threads.values()`` minus the
        # finished ones), ``_blocked`` the currently blocked ones, and
        # ``_halted_count`` the debugger-halted ones, so the common case —
        # nothing blocked, nothing halted — schedules straight off ``_alive``.
        self._alive: List[ThreadContext] = []
        self._blocked: List[ThreadContext] = []
        self._halted_count = 0
        self._next_thread_id = 1
        self.mutexes: Dict[int, Optional[int]] = {}
        self.cond_waiters: Dict[int, List[int]] = {}
        self.observers: List[TraceObserver] = []
        self.faults: List[FaultEvent] = []
        self.debugger = None  # set by Debugger.attach()
        self._finished = False
        self._result_reason: Optional[str] = None
        self._function_addresses: Dict[str, int] = {}
        self._functions_by_address: Dict[int, Union[Function, ExternalFunction]] = {}
        self._global_addresses: Dict[str, int] = {}
        self._setup_code_addresses()
        self._setup_globals()
        if engine is not None:
            # Attach after address setup: plans bake global/function
            # addresses and the engine validates them on every attach.
            self.fuse_engine = engine.attach(self)

    # ------------------------------------------------------------------
    # setup

    def _setup_code_addresses(self) -> None:
        address = 0x1000
        for name in list(self.module.functions) + list(self.module.externals):
            self._function_addresses[name] = address
            self._functions_by_address[address] = (
                self.module.functions.get(name) or self.module.externals[name]
            )
            address += 16

    def _setup_globals(self) -> None:
        for variable in self.module.globals.values():
            block = self.memory.allocate(
                variable.value_type.size(), MemoryBlock.GLOBAL,
                name=variable.name, value_type=variable.value_type,
            )
            self._global_addresses[variable.name] = block.base
            store_initializer(self.memory, block, variable.value_type,
                              variable.initializer)

    # ------------------------------------------------------------------
    # observers / events

    def add_observer(self, observer: TraceObserver) -> None:
        self.observers.append(observer)

    def emit_access(self, thread: ThreadContext, instruction: Instruction,
                    address: int, size: int, is_write: bool, value: int,
                    is_atomic: bool = False) -> None:
        block = self.memory.block_at(address)
        if block is None or block.kind == MemoryBlock.STACK:
            return
        if not self.observers:
            return
        offset = address - block.base
        if self.reference:
            variable = block.describe_offset(offset)
        else:
            # Lazy: the description is formatted only if an observer reads
            # ``event.variable``, and then from the per-(block, offset) memo.
            def variable(block=block, offset=offset):
                return block.describe_offset_cached(offset)
        event = AccessEvent(
            thread.thread_id, self.step, instruction, address, size, is_write,
            value, is_atomic, thread.call_stack(), variable,
        )
        for observer in self.observers:
            observer.on_access(event)

    def emit_range_access(self, thread: ThreadContext, instruction: Instruction,
                          address: int, size: int, is_write: bool) -> None:
        self.emit_access(thread, instruction, address, size, is_write, 0)

    def emit_sync(self, thread: ThreadContext, kind: str, address: int,
                  instruction: Optional[Instruction] = None) -> None:
        event = SyncEvent(thread.thread_id, self.step, kind, address, instruction)
        for observer in self.observers:
            observer.on_sync(event)

    def emit_alloc(self, thread: ThreadContext, block: MemoryBlock) -> None:
        event = AllocEvent(thread.thread_id, self.step, block.base, block.size)
        for observer in self.observers:
            observer.on_alloc(event)

    def emit_free(self, thread: ThreadContext, address: int) -> None:
        event = FreeEvent(thread.thread_id, self.step, address)
        for observer in self.observers:
            observer.on_free(event)

    def emit_join(self, joiner: ThreadContext, joined: ThreadContext) -> None:
        event = ThreadLifecycleEvent(
            joiner.thread_id, self.step, ThreadLifecycleEvent.JOIN, joined.thread_id,
        )
        for observer in self.observers:
            observer.on_thread(event)

    # ------------------------------------------------------------------
    # faults

    def record_fault(self, event: FaultEvent) -> None:
        self.faults.append(event)
        for observer in self.observers:
            observer.on_fault(event)

    def raise_fault(self, event: FaultEvent) -> None:
        """Record a fault; abort the process unless it is non-fatal."""
        self.record_fault(event)
        if event.kind not in self.nonfatal_faults:
            raise RuntimeFault(event)

    # ------------------------------------------------------------------
    # threads

    def spawn_thread(self, function: Function, argument_values: Sequence[int],
                     creator: Optional[ThreadContext] = None,
                     name: Optional[str] = None) -> ThreadContext:
        thread = ThreadContext(
            self._next_thread_id,
            name or function.name,
            function,
            list(argument_values),
            memoize_stack=not self.reference,
        )
        self._next_thread_id += 1
        self.threads[thread.thread_id] = thread
        self._alive.append(thread)
        self.scheduler.on_thread_created(thread)
        creator_id = creator.thread_id if creator is not None else 0
        event = ThreadLifecycleEvent(
            creator_id, self.step, ThreadLifecycleEvent.CREATE, thread.thread_id,
        )
        for observer in self.observers:
            observer.on_thread(event)
        return thread

    def finish_thread(self, thread: ThreadContext, return_value: Optional[int]) -> None:
        thread.state = ThreadState.FINISHED
        thread.return_value = return_value
        thread.clear_frames()
        try:
            self._alive.remove(thread)
        except ValueError:
            pass
        event = ThreadLifecycleEvent(
            thread.thread_id, self.step, ThreadLifecycleEvent.EXIT, thread.thread_id,
        )
        for observer in self.observers:
            observer.on_thread(event)
        for waiter in self.threads.values():
            if (
                waiter.state == ThreadState.BLOCKED
                and waiter.blocked_on == "join t%d" % thread.thread_id
            ):
                self.unblock(waiter.thread_id)

    def unblock(self, thread_id: int) -> None:
        thread = self.threads.get(thread_id)
        if thread is not None and thread.state == ThreadState.BLOCKED:
            thread.state = ThreadState.RUNNABLE
            thread.blocked_on = None
            thread.wake_step = None
            thread.blocked_kind = None
            thread.blocked_arg = 0
            try:
                self._blocked.remove(thread)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # address helpers

    def function_address(self, name: str) -> int:
        return self._function_addresses[name]

    def function_at(self, address: int) -> Optional[Union[Function, ExternalFunction]]:
        return self._functions_by_address.get(address)

    def global_address(self, name: str) -> int:
        return self._global_addresses[name]

    def next_input(self, channel: int):
        values = self.inputs.get(channel)
        if values is None:
            return 0
        if callable(values):
            return values()
        cursor = self._input_cursors.get(channel, 0)
        if cursor >= len(values):
            return values[-1] if values else 0
        self._input_cursors[channel] = cursor + 1
        return values[cursor]

    # ------------------------------------------------------------------
    # value evaluation

    def evaluate(self, frame: Frame, operand: Value) -> int:
        if isinstance(operand, Constant):
            value = operand.value
            if isinstance(operand.type, IntType):
                return value & ((1 << operand.type.bits) - 1)
            return value & MASK64
        if isinstance(operand, GlobalVariable):
            return self._global_addresses[operand.name]
        if isinstance(operand, (Function, ExternalFunction)):
            return self._function_addresses[operand.name]
        if isinstance(operand, (Argument, Instruction)):
            try:
                return frame.registers[operand]
            except KeyError:
                raise RuntimeFault(FaultEvent(
                    FaultKind.WILD_ACCESS, -1,
                    "use of undefined value %s" % operand.short_name(),
                )) from None
        raise RuntimeFault(FaultEvent(
            FaultKind.WILD_ACCESS, -1, "unsupported operand %r" % (operand,),
        ))

    # ------------------------------------------------------------------
    # main loop

    def start(self, entry: str = "main",
              argument_values: Sequence[int] = ()) -> ThreadContext:
        function = self.module.get_function(entry)
        return self.spawn_thread(function, list(argument_values), name="main")

    def runnable_threads(self) -> List[ThreadContext]:
        self._wake_sleepers()
        return [t for t in self.threads.values() if t.state == ThreadState.RUNNABLE]

    def _wake_sleepers(self) -> None:
        for thread in self.threads.values():
            if (
                thread.state == ThreadState.BLOCKED
                and thread.wake_step is not None
                and thread.wake_step <= self.step
            ):
                self.unblock(thread.thread_id)

    def _retry_blocked(self) -> None:
        """Poll blocked threads whose wait condition may have become true."""
        for thread in self.threads.values():
            if thread.state != ThreadState.BLOCKED or thread.blocked_on is None:
                continue
            reason = thread.blocked_on
            if reason.startswith("mutex "):
                address = int(reason.split()[1], 16)
                if self.mutexes.get(address) is None:
                    self.unblock(thread.thread_id)
            elif reason.startswith("join t"):
                target = self.threads.get(int(reason[6:]))
                if target is not None and target.state == ThreadState.FINISHED:
                    self.unblock(thread.thread_id)

    def run(self, max_steps: Optional[int] = None) -> ExecutionResult:
        """Run until completion, fault, deadlock, breakpoint or step limit.

        ``max_steps`` bounds this call only and is clamped to the VM's
        global ``self.max_steps`` budget, so resumed runs (the verifiers
        re-entering ``run`` after a breakpoint) can never overshoot the
        process-wide step limit.
        """
        if max_steps is None:
            limit = self.max_steps
        else:
            limit = min(self.step + max_steps, self.max_steps)
        if self.reference:
            return self._run_reference_loop(limit)
        return self._run_fast_loop(limit)

    def _run_reference_loop(self, limit: int) -> ExecutionResult:
        """The pre-optimization scheduling loop, preserved for the oracle.

        Rescans every thread on every step (``_retry_blocked`` re-parses
        block reasons, ``runnable_threads`` refilters ``threads.values()``);
        :meth:`_run_fast_loop` must stay schedule-identical to this.
        """
        while True:
            if self._finished:
                return ExecutionResult(self._result_reason or
                                       ExecutionResult.FINISHED, self)
            if self.step >= limit:
                return ExecutionResult(ExecutionResult.STEP_LIMIT, self)
            self._retry_blocked()
            runnable = self.runnable_threads()
            if not runnable:
                outcome = self._handle_idle(limit)
                if outcome is not None:
                    return outcome
                continue
            thread = self.scheduler.choose(runnable, self.step)
            if self.debugger is not None:
                instruction = thread.current_instruction()
                if instruction is not None and self.debugger.check(thread, instruction):
                    self._halt_thread(thread)
                    return ExecutionResult(ExecutionResult.BREAKPOINT, self)
            outcome = self.step_thread(thread)
            if outcome is not None:
                return outcome

    def _run_fast_loop(self, limit: int) -> ExecutionResult:
        """Incremental scheduling loop: only blocked threads are re-polled.

        Semantically identical to :meth:`_run_reference_loop` — blocked
        threads are retried and sleepers woken before each filter, and the
        runnable list preserves creation order — but the common case (no
        thread blocked or halted) schedules directly off ``_alive`` without
        rescanning or re-filtering anything.
        """
        alive = self._alive
        blocked = self._blocked
        threads = self.threads
        mutexes = self.mutexes
        scheduler_choose = self.scheduler.choose
        step_thread = self.step_thread
        RUNNABLE = ThreadState.RUNNABLE
        FINISHED = ThreadState.FINISHED
        fuse_engine = self.fuse_engine
        if fuse_engine is not None:
            plan_for = fuse_engine.plan_for
            run_length = self.scheduler.run_length
            step_fused = self._step_fused
        while True:
            if self._finished:
                return ExecutionResult(self._result_reason or
                                       ExecutionResult.FINISHED, self)
            step = self.step
            if step >= limit:
                return ExecutionResult(ExecutionResult.STEP_LIMIT, self)
            if blocked:
                # One pass over only the blocked threads, with the reasons
                # parsed once at block time: retry mutex/join waits, then
                # wake expired sleepers — the same set the reference loop's
                # _retry_blocked + _wake_sleepers unblocks.
                for thread in blocked[:]:
                    kind = thread.blocked_kind
                    if kind == "mutex":
                        if mutexes.get(thread.blocked_arg) is None:
                            self.unblock(thread.thread_id)
                            continue
                    elif kind == "join":
                        target = threads.get(thread.blocked_arg)
                        if target is not None and target.state is FINISHED:
                            self.unblock(thread.thread_id)
                            continue
                    wake = thread.wake_step
                    if wake is not None and wake <= step:
                        self.unblock(thread.thread_id)
                runnable = [t for t in alive if t.state is RUNNABLE]
            elif self._halted_count:
                runnable = [t for t in alive if t.state is RUNNABLE]
            else:
                # Nothing blocked or halted: every live thread is runnable.
                runnable = alive
            if not runnable:
                outcome = self._handle_idle(limit)
                if outcome is not None:
                    return outcome
                continue
            thread = scheduler_choose(runnable, step)
            if self.debugger is not None:
                instruction = thread.current_instruction()
                if instruction is not None and self.debugger.check(thread, instruction):
                    self._halt_thread(thread)
                    return ExecutionResult(ExecutionResult.BREAKPOINT, self)
            elif (
                fuse_engine is not None
                and not self._halted_count
                and limit - step > 1
            ):
                # Fusion window: fused (straight-line) runs contain no
                # calls, so no thread can spawn, exit, unlock a mutex or
                # finish a join target mid-run — mutex/join waiters stay
                # blocked and the runnable set is invariant.  The only
                # time-driven change is a sleeper expiring, so the window
                # is clamped to the earliest wake-up; with no halted
                # threads and no per-instruction debugger checks, the
                # scheduler's no-preempt guarantee then makes the fused
                # run schedule-identical to stepwise execution.
                plan = plan_for(thread)
                if plan is not None:
                    max_len = plan.length
                    if limit - step < max_len:
                        max_len = limit - step
                    for sleeper in blocked:
                        wake = sleeper.wake_step
                        if wake is not None and wake - step < max_len:
                            max_len = wake - step
                    if max_len > 1:
                        length = run_length(thread, step, max_len)
                        if length > 1:
                            outcome = step_fused(thread, plan, length)
                            if outcome is not None:
                                return outcome
                            continue
            outcome = step_thread(thread)
            if outcome is not None:
                return outcome

    def _halt_thread(self, thread: ThreadContext) -> None:
        """Debugger halt; ``Debugger.resume`` undoes the count."""
        thread.state = ThreadState.HALTED
        self._halted_count += 1

    def _handle_idle(self, limit: int) -> Optional[ExecutionResult]:
        alive = [t for t in self.threads.values() if t.state != ThreadState.FINISHED]
        if not alive:
            self._finished = True
            return ExecutionResult(ExecutionResult.FINISHED, self)
        halted = [t for t in alive if t.state == ThreadState.HALTED]
        sleepers = [
            t for t in alive
            if t.state == ThreadState.BLOCKED and t.wake_step is not None
        ]
        if sleepers:
            wake = min(t.wake_step for t in sleepers)
            if wake > limit:
                # The earliest wake-up lies beyond this run's clamped step
                # budget: fast-forwarding to it would overshoot ``limit``
                # (and, on resumed runs, the process-wide ``max_steps``),
                # inflating step counters and replay checkpoints.  Park
                # the clock exactly at the budget instead.
                self.step = limit
                return ExecutionResult(ExecutionResult.STEP_LIMIT, self)
            self.step = wake
            self._wake_sleepers()
            return None
        if halted:
            # All progress requires a halted thread: the livelock state the
            # paper resolves by temporarily releasing a breakpoint (§5.2).
            return ExecutionResult(ExecutionResult.BREAKPOINT, self)
        event = FaultEvent(
            FaultKind.DEADLOCK, alive[0].thread_id,
            "deadlock: %s" % ", ".join(
                "t%d on %s" % (t.thread_id, t.blocked_on) for t in alive
            ),
            step=self.step,
        )
        self.record_fault(event)
        return ExecutionResult(ExecutionResult.DEADLOCK, self)

    def _step_fused(self, thread: ThreadContext, plan,
                    count: int) -> Optional[ExecutionResult]:
        """Execute ``count`` fused micro-ops of ``plan`` on ``thread``.

        Semantically ``count`` consecutive :meth:`step_thread` calls on the
        same thread: each micro-op increments the step counters before it
        executes and advances ``frame.index`` itself, and a fault bails out
        through the exact fault path of :meth:`step_thread`.  Fused
        instructions cannot block, spawn, exit or switch frames, so those
        ``step_thread`` arms have no fused equivalent.
        """
        frame = thread.top
        ops = plan.ops
        engine = self.fuse_engine
        engine.fused_runs += 1
        executed = 0
        try:
            for index in range(count):
                self.step += 1
                thread.steps_executed += 1
                ops[index](self, thread, frame)
                executed += 1
        except RuntimeFault as fault:
            engine.fused_steps += executed + 1
            engine.bailouts += 1
            if fault.event not in self.faults:
                self.record_fault(fault.event)
            self._finished = True
            self._result_reason = ExecutionResult.FAULT
            for observer in self.observers:
                observer.on_finish(self)
            return ExecutionResult(ExecutionResult.FAULT, self)
        engine.fused_steps += executed
        return None

    def step_thread(self, thread: ThreadContext) -> Optional[ExecutionResult]:
        """Execute one instruction of ``thread``."""
        instruction = thread.current_instruction()
        if instruction is None:
            # Fell off a block without terminator: verifier prevents this,
            # but finish the thread defensively.
            self.finish_thread(thread, None)
            return None
        self.step += 1
        thread.steps_executed += 1
        try:
            self.execute(thread, instruction)
        except externals.Block as block:
            reason = block.reason
            thread.state = ThreadState.BLOCKED
            thread.blocked_on = reason
            thread.wake_step = block.wake_step
            if reason.startswith("mutex "):
                thread.blocked_kind = "mutex"
                thread.blocked_arg = int(reason.split()[1], 16)
            elif reason.startswith("join t"):
                thread.blocked_kind = "join"
                thread.blocked_arg = int(reason[6:])
            else:
                # Reset the argument together with the kind: a thread that
                # previously blocked on a mutex must not keep the stale
                # address when it later blocks on an unparsed reason
                # (sleep, condvar) — coverage payloads and provenance
                # dumps would misattribute the wait.
                thread.blocked_kind = None
                thread.blocked_arg = 0
            self._blocked.append(thread)
            return None
        except externals.ProcessExit as exit_request:
            self.world.exit_code = exit_request.code
            self.world.process_killed = exit_request.killed
            self._finished = True
            self._result_reason = (
                ExecutionResult.KILLED if exit_request.killed else ExecutionResult.EXITED
            )
            for observer in self.observers:
                observer.on_finish(self)
            return ExecutionResult(self._result_reason, self)
        except RuntimeFault as fault:
            if fault.event not in self.faults:
                self.record_fault(fault.event)
            self._finished = True
            self._result_reason = ExecutionResult.FAULT
            for observer in self.observers:
                observer.on_finish(self)
            return ExecutionResult(ExecutionResult.FAULT, self)
        return None

    # ------------------------------------------------------------------
    # instruction execution

    def execute(self, thread: ThreadContext, instruction: Instruction) -> None:
        """Dispatch one instruction through the per-class handler table.

        The table maps each concrete instruction class to its handler and is
        resolved once at module load; subclasses fall back to an
        isinstance-order walk on first sight and are cached.  Reference-mode
        VMs shadow this method with :meth:`_execute_reference` (the original
        isinstance chain) so the differential oracle can compare both.
        """
        handler = _DISPATCH.get(instruction.__class__)
        if handler is None:
            handler = self._resolve_handler(thread, instruction)
        handler(self, thread, thread.top, instruction)

    def _resolve_handler(self, thread: ThreadContext, instruction: Instruction):
        """Cache a handler for an instruction subclass, isinstance order."""
        for base, handler in _DISPATCH_BASES:
            if isinstance(instruction, base):
                _DISPATCH[instruction.__class__] = handler
                return handler
        raise RuntimeFault(FaultEvent(
            FaultKind.WILD_ACCESS, thread.thread_id,
            "unsupported instruction %s" % instruction.describe(),
        ))

    def _execute_reference(self, thread: ThreadContext,
                           instruction: Instruction) -> None:
        """The pre-dispatch-table execution path, kept as the oracle's
        reference implementation (semantically identical by construction —
        the differential oracle asserts it stays that way)."""
        frame = thread.top
        if isinstance(instruction, Alloca):
            self._exec_alloca(thread, frame, instruction)
        elif isinstance(instruction, Load):
            self._exec_load(thread, frame, instruction)
        elif isinstance(instruction, Store):
            self._exec_store(thread, frame, instruction)
        elif isinstance(instruction, BinOp):
            self._exec_binop(thread, frame, instruction)
        elif isinstance(instruction, ICmp):
            self._exec_icmp(thread, frame, instruction)
        elif isinstance(instruction, GetElementPtr):
            self._exec_gep(thread, frame, instruction)
        elif isinstance(instruction, Cast):
            self._exec_cast(thread, frame, instruction)
        elif isinstance(instruction, AtomicRMW):
            self._exec_atomicrmw(thread, frame, instruction)
        elif isinstance(instruction, Br):
            self._exec_br(thread, frame, instruction)
        elif isinstance(instruction, Call):
            self._exec_call(thread, frame, instruction)
        elif isinstance(instruction, Ret):
            self._exec_ret(thread, frame, instruction)
        else:
            raise RuntimeFault(FaultEvent(
                FaultKind.WILD_ACCESS, thread.thread_id,
                "unsupported instruction %s" % instruction.describe(),
            ))

    def _exec_cast(self, thread, frame, instruction: Cast) -> None:
        value = self._truncate(
            self.evaluate(frame, instruction.value), instruction.type,
        )
        frame.registers[instruction] = value
        self._maybe_type_block(instruction, value)
        frame.index += 1

    def _maybe_type_block(self, instruction: Cast, value: int) -> None:
        """Casting a raw pointer to a struct pointer types the allocation.

        This is the runtime equivalent of debug info: it gives heap blocks a
        field layout so overflows crossing field boundaries are recorded as
        field-overflow corruption (e.g. strcpy past ``vuln_frame.buf`` into
        the adjacent handler slot, or Apache's log bytes into the fd field).
        """
        from repro.ir.types import StructType

        pointee = (
            instruction.type.pointee
            if isinstance(instruction.type, PointerType) else None
        )
        if not isinstance(pointee, StructType) or value == 0:
            return
        block = self.memory.block_at(value)
        if block is not None and not block.fields and block.base == value:
            block.value_type = pointee
            block.fields = pointee.layout()
            # The field layout changed, so memoized offset descriptions
            # ("heap#12+8") are stale; they must re-resolve to field names.
            block.invalidate_descriptions()

    @staticmethod
    def _truncate(value: int, type_) -> int:
        if isinstance(type_, IntType):
            return value & ((1 << type_.bits) - 1)
        return value & MASK64

    def _exec_alloca(self, thread, frame, instruction: Alloca) -> None:
        block = self.memory.allocate(
            instruction.allocated_type.size(), MemoryBlock.STACK,
            name="%s.%s" % (thread.top.function.name, instruction.name or "tmp"),
            value_type=instruction.allocated_type, step=self.step,
        )
        frame.allocas.append(block)
        frame.registers[instruction] = block.base
        frame.index += 1

    def _access_size(self, type_) -> int:
        return max(1, type_.size())

    def _exec_load(self, thread, frame, instruction: Load) -> None:
        address = self.evaluate(frame, instruction.pointer)
        size = self._access_size(instruction.type)
        block, fault = self.memory.check_access(
            address, size, False, thread.thread_id, self.step, thread.call_stack(),
        )
        if fault is not None:
            self.raise_fault(fault)
        value = self.memory.read_int(address, size, signed=False)
        frame.registers[instruction] = value
        self.emit_access(thread, instruction, address, size, False, value,
                         is_atomic=instruction.atomic)
        frame.index += 1

    def _exec_store(self, thread, frame, instruction: Store) -> None:
        address = self.evaluate(frame, instruction.pointer)
        value = self.evaluate(frame, instruction.value)
        size = self._access_size(instruction.value.type)
        block, fault = self.memory.check_access(
            address, size, True, thread.thread_id, self.step, thread.call_stack(),
        )
        if fault is not None:
            self.raise_fault(fault)
        self.memory.write_int(address, value, size)
        self.emit_access(thread, instruction, address, size, True, value,
                         is_atomic=instruction.atomic)
        frame.index += 1

    def _exec_binop(self, thread, frame, instruction: BinOp) -> None:
        lhs = self.evaluate(frame, instruction.lhs)
        rhs = self.evaluate(frame, instruction.rhs)
        bits = instruction.type.bits if isinstance(instruction.type, IntType) else 64
        mask = (1 << bits) - 1
        op = instruction.op
        if op in ("sdiv", "srem", "udiv", "urem") and rhs == 0:
            self.raise_fault(FaultEvent(
                FaultKind.DIVISION_BY_ZERO, thread.thread_id,
                "division by zero at %s" % instruction.location,
                call_stack=thread.call_stack(), step=self.step,
            ))
        signed_lhs = lhs - (1 << bits) if lhs >> (bits - 1) else lhs
        signed_rhs = rhs - (1 << bits) if rhs >> (bits - 1) else rhs
        if op == "add":
            result = lhs + rhs
        elif op == "sub":
            result = lhs - rhs
        elif op == "mul":
            result = lhs * rhs
        elif op == "udiv":
            result = lhs // rhs
        elif op == "urem":
            result = lhs % rhs
        elif op == "sdiv":
            result = int(signed_lhs / signed_rhs) if signed_rhs else 0
        elif op == "srem":
            result = signed_lhs - int(signed_lhs / signed_rhs) * signed_rhs
        elif op == "and":
            result = lhs & rhs
        elif op == "or":
            result = lhs | rhs
        elif op == "xor":
            result = lhs ^ rhs
        elif op == "shl":
            result = lhs << (rhs % bits)
        elif op == "lshr":
            result = lhs >> (rhs % bits)
        elif op == "ashr":
            result = signed_lhs >> (rhs % bits)
        else:
            raise RuntimeFault(FaultEvent(
                FaultKind.WILD_ACCESS, thread.thread_id, "bad binop %s" % op,
            ))
        frame.registers[instruction] = result & mask
        frame.index += 1

    def _exec_icmp(self, thread, frame, instruction: ICmp) -> None:
        lhs = self.evaluate(frame, instruction.lhs)
        rhs = self.evaluate(frame, instruction.rhs)
        lhs_type = instruction.lhs.type
        bits = lhs_type.bits if isinstance(lhs_type, IntType) else 64
        predicate = instruction.predicate
        if predicate.startswith("s"):
            lhs = lhs - (1 << bits) if lhs >> (bits - 1) else lhs
            rhs = rhs - (1 << bits) if rhs >> (bits - 1) else rhs
        if predicate == "eq":
            result = lhs == rhs
        elif predicate == "ne":
            result = lhs != rhs
        elif predicate in ("slt", "ult"):
            result = lhs < rhs
        elif predicate in ("sle", "ule"):
            result = lhs <= rhs
        elif predicate in ("sgt", "ugt"):
            result = lhs > rhs
        else:  # sge / uge
            result = lhs >= rhs
        frame.registers[instruction] = 1 if result else 0
        frame.index += 1

    def _exec_gep(self, thread, frame, instruction: GetElementPtr) -> None:
        base = self.evaluate(frame, instruction.base)
        pointee = instruction.base.type.pointee
        if instruction.field is not None:
            offset = pointee.field_offset(instruction.field)
        else:
            index = self.evaluate(frame, instruction.index)
            if index >> 63:  # negative index (two's complement)
                index -= 1 << 64
            element = instruction.type.pointee
            offset = index * element.size()
        frame.registers[instruction] = (base + offset) & MASK64
        frame.index += 1

    def _exec_atomicrmw(self, thread, frame, instruction: AtomicRMW) -> None:
        address = self.evaluate(frame, instruction.pointer)
        operand = self.evaluate(frame, instruction.value)
        size = self._access_size(instruction.type)
        block, fault = self.memory.check_access(
            address, size, True, thread.thread_id, self.step, thread.call_stack(),
        )
        if fault is not None:
            self.raise_fault(fault)
        self.emit_sync(thread, SyncEvent.ACQUIRE, address, instruction)
        old = self.memory.read_int(address, size, signed=False)
        op = instruction.op
        if op == "add":
            new = old + operand
        elif op == "sub":
            new = old - operand
        elif op == "xchg":
            new = operand
        elif op == "and":
            new = old & operand
        elif op == "or":
            new = old | operand
        else:  # xor
            new = old ^ operand
        self.memory.write_int(address, new, size)
        self.emit_sync(thread, SyncEvent.RELEASE, address, instruction)
        frame.registers[instruction] = old
        frame.index += 1

    def _exec_br(self, thread, frame, instruction: Br) -> None:
        if instruction.is_conditional:
            condition = self.evaluate(frame, instruction.condition)
            target = instruction.true_block if condition else instruction.false_block
        else:
            target = instruction.true_block
        frame.jump(target)

    def _exec_call(self, thread, frame, instruction: Call) -> None:
        callee = instruction.callee
        if isinstance(callee, (Function, ExternalFunction)):
            target = callee
        else:
            address = self.evaluate(frame, callee)
            target = self.function_at(address)
            if target is None:
                kind = (FaultKind.NULL_DEREF if address == 0
                        else FaultKind.WILD_ACCESS)
                self.raise_fault(FaultEvent(
                    kind, thread.thread_id,
                    "indirect call through %s function pointer (0x%x) at %s" % (
                        "NULL" if address == 0 else "dangling", address,
                        instruction.location,
                    ),
                    address=address, call_stack=thread.call_stack(), step=self.step,
                ))
                frame.registers[instruction] = 0
                frame.index += 1
                return
        argument_values = [self.evaluate(frame, op) for op in instruction.operands]
        if isinstance(target, ExternalFunction):
            self._exec_external(thread, frame, instruction, target, argument_values)
        else:
            callee_frame = Frame(target, call_site=instruction)
            for parameter, value in zip(target.arguments, argument_values):
                callee_frame.registers[parameter] = value
            thread.push_frame(callee_frame)

    def _exec_external(self, thread, frame, instruction: Call,
                       target: ExternalFunction, argument_values: List[int]) -> None:
        event = ExternalCallEvent(
            thread.thread_id, self.step, target.name, argument_values,
            instruction, thread.call_stack(),
        )
        for observer in self.observers:
            observer.on_external_call(event)
        impl = externals.lookup(target.name)
        result = impl(self, thread, instruction, argument_values)
        if thread.state == ThreadState.FINISHED:
            return
        if result is not None:
            frame.registers[instruction] = self._truncate(result, instruction.type)
        elif instruction.type.size() > 0:
            frame.registers[instruction] = 0
        frame.index += 1

    def _exec_ret(self, thread, frame, instruction: Ret) -> None:
        value = (
            self.evaluate(frame, instruction.value)
            if instruction.value is not None else None
        )
        for block in frame.allocas:
            block.freed = True
            block.free_step = self.step
        thread.pop_frame()
        if not thread.frames:
            self.finish_thread(thread, value)
            return
        caller = thread.top
        call_site = frame.call_site
        if call_site is not None:
            if value is not None:
                caller.registers[call_site] = self._truncate(value, call_site.type)
            elif call_site.type.size() > 0:
                caller.registers[call_site] = 0
            caller.index += 1


#: Concrete instruction class -> handler, resolved once at import.  The
#: pairs below double as the isinstance fallback order for subclasses —
#: identical to the order of the original dispatch chain
#: (:meth:`VM._execute_reference`), which the differential oracle holds the
#: table path to.
_DISPATCH_BASES = (
    (Alloca, VM._exec_alloca),
    (Load, VM._exec_load),
    (Store, VM._exec_store),
    (BinOp, VM._exec_binop),
    (ICmp, VM._exec_icmp),
    (GetElementPtr, VM._exec_gep),
    (Cast, VM._exec_cast),
    (AtomicRMW, VM._exec_atomicrmw),
    (Br, VM._exec_br),
    (Call, VM._exec_call),
    (Ret, VM._exec_ret),
)

_DISPATCH = {base: handler for base, handler in _DISPATCH_BASES}
