"""Central metrics registry: counters, gauges, histograms.

Every layer of the pipeline used to keep its own ad-hoc dict counters
(``ResultCache._stage_counters``, ``BatchPolicy.timeouts``, the stage
``extra`` dicts).  This module gives them one home with one contract:

**Snapshot parity.**  :meth:`MetricsRegistry.snapshot` returns a plain
JSON-able dict whose content depends only on *what* was counted, never on
wall-clock time, process ids, or completion order.  Worker processes ship
their snapshots back over the batch pool and the parent folds them in
**seed order** with :func:`merge_snapshots`, which is associative and
commutative for counters and histograms — so a ``jobs=4`` run's merged
snapshot is bit-identical to the serial run's, the same discipline
:meth:`repro.owl.pipeline.StageCounters.parity_dict` keeps for the paper
tables.  Anything wall-clock flavoured (stage timings, steps/s) lives in
:mod:`repro.runtime.metrics` stage records instead, never here.

Histograms use **fixed bucket bounds** chosen at creation time: merging
two histograms is element-wise addition of bucket counts, which is what
makes the merge associative.  Registering the same histogram name with
different bounds is an error — silent bound drift would break merges.
"""

from __future__ import annotations

import bisect
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "STEP_BUCKETS",
    "REPORT_BUCKETS",
]

#: Default bucket upper bounds for per-seed VM step counts.
STEP_BUCKETS = (100, 300, 1000, 3000, 10000, 30000, 100000)

#: Default bucket upper bounds for per-seed report counts.
REPORT_BUCKETS = (0, 1, 2, 5, 10, 20, 50)


class Counter:
    """Monotonically increasing integer."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(
                "counter %r cannot decrease (inc by %r)" % (self.name, amount))
        self.value += amount


class Gauge:
    """Last-written value (job-count invariant inputs only)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: Optional[float] = None

    def set(self, value) -> None:
        self.value = value


class Histogram:
    """Fixed-bound histogram; bucket ``i`` counts values ``<= bounds[i]``.

    The final implicit bucket counts values above the last bound.  Fixed
    bounds are what make :func:`merge_snapshots` associative: merging is
    element-wise addition of ``counts``.
    """

    __slots__ = ("name", "bounds", "counts", "total", "count")

    def __init__(self, name: str, bounds: Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                "histogram %r needs sorted, non-empty bucket bounds" % name)
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.total = 0
        self.count = 0

    def observe(self, value) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.total += value
        self.count += 1


class MetricsRegistry:
    """Create-on-demand registry with a deterministic snapshot.

    Instruments are created the first time they are named; naming follows
    ``<layer>.<what>`` (``cache.detect.hits``, ``vm.steps``).  The
    snapshot sorts names so its JSON serialization is byte-stable.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str,
                  bounds: Sequence[float] = STEP_BUCKETS) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name, bounds)
        elif instrument.bounds != tuple(bounds):
            raise ValueError(
                "histogram %r re-registered with different bounds: "
                "%r vs %r" % (name, instrument.bounds, tuple(bounds)))
        return instrument

    def snapshot(self) -> Dict:
        """Plain-dict view; sorted keys, no wall-clock content."""
        return {
            "counters": {name: self._counters[name].value
                         for name in sorted(self._counters)},
            "gauges": {name: self._gauges[name].value
                       for name in sorted(self._gauges)},
            "histograms": {
                name: {
                    "bounds": list(instrument.bounds),
                    "counts": list(instrument.counts),
                    "sum": instrument.total,
                    "count": instrument.count,
                }
                for name, instrument in sorted(self._histograms.items())
            },
        }

    def merge_snapshot(self, snapshot: Dict) -> None:
        """Fold a snapshot (e.g. from a worker) into this registry.

        Counters and histogram buckets add; gauges take the incoming
        value (callers merge in seed order, so "last write" is
        deterministic).
        """
        for name, value in snapshot.get("counters", {}).items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, data in snapshot.get("histograms", {}).items():
            instrument = self.histogram(name, data["bounds"])
            for index, count in enumerate(data["counts"]):
                instrument.counts[index] += count
            instrument.total += data["sum"]
            instrument.count += data["count"]


def merge_snapshots(*snapshots: Dict) -> Dict:
    """Associatively merge snapshot dicts into a new snapshot.

    ``merge(merge(a, b), c) == merge(a, merge(b, c))`` bucket-for-bucket,
    which is what lets a jobs=N run fold worker snapshots in seed order
    and land on the serial run's bytes.
    """
    registry = MetricsRegistry()
    for snapshot in snapshots:
        registry.merge_snapshot(snapshot)
    return registry.snapshot()
