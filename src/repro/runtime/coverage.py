"""Interleaving-coverage tracking for schedule exploration.

The detectors find a race only if the schedule perturbation actually
explores a *new* interleaving (paper §6.3 runs SKI/TSan over many
schedules).  This module measures what one detector seed contributed, so
the exploration driver (:mod:`repro.owl.explore`) can spend its seed
budget where coverage is still growing and stop once it saturates:

- **racy access-pair coverage** — the set of static instruction-uid pairs
  the seed's reports raced on (the same ``static_key`` the report dedup
  uses), the signal that directly bounds how many distinct races the
  pipeline can ever surface;
- a **context-switch-point signature** — a digest of *where* the schedule
  preempted (the (step, incoming thread) sequence of context switches),
  which distinguishes schedules even when they find the same races.

Both are plain data: a :class:`SeedCoverage` round-trips through the JSON
payloads :mod:`repro.owl.batch` ships across process boundaries and the
result cache stores on disk, and :class:`CoverageMap` merges are
deterministic in seed order — merging the same seeds in the same order
always yields the same per-seed ``new_pairs`` deltas, regardless of job
count (the same parity contract :class:`repro.owl.pipeline.StageCounters`
keeps).
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.runtime.scheduler import Scheduler
from repro.runtime.thread import ThreadContext

PairKey = Tuple[int, int]


class SwitchTracker(Scheduler):
    """Wraps a scheduler and records its context-switch points.

    Delegates every decision unchanged (the tracked schedule is identical
    to the untracked one) while noting each point where the chosen thread
    differs from the previous choice.  The switch-point sequence is the
    raw material for a :class:`SeedCoverage` signature.
    """

    def __init__(self, inner: Scheduler):
        self.inner = inner
        #: ``(step, incoming thread id)`` for every context switch.
        self.switch_points: List[Tuple[int, int]] = []
        self._last_thread: Optional[int] = None

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        chosen = self.inner.choose(runnable, step)
        if self._last_thread is not None and chosen.thread_id != self._last_thread:
            self.switch_points.append((step, chosen.thread_id))
        self._last_thread = chosen.thread_id
        return chosen

    def on_thread_created(self, thread: ThreadContext) -> None:
        self.inner.on_thread_created(thread)

    def reset(self) -> None:
        self.inner.reset()
        self.switch_points = []
        self._last_thread = None

    def signature(self) -> str:
        """Digest of the switch-point sequence (stable across processes)."""
        digest = hashlib.sha256()
        for step, thread_id in self.switch_points:
            digest.update(b"%d:%d;" % (step, thread_id))
        return digest.hexdigest()[:16]


class SeedCoverage:
    """What one detector seed contributed to interleaving coverage."""

    __slots__ = ("seed", "pairs", "signature", "switches")

    def __init__(self, seed: int, pairs: FrozenSet[PairKey],
                 signature: str, switches: int = 0):
        self.seed = seed
        self.pairs = frozenset(pairs)
        self.signature = signature
        self.switches = switches

    @classmethod
    def from_run(cls, seed: int, reports,
                 tracker: Optional[SwitchTracker] = None) -> "SeedCoverage":
        """Coverage of one finished seed: its reports plus its schedule."""
        pairs = frozenset(report.static_key for report in reports)
        signature = tracker.signature() if tracker is not None else ""
        switches = len(tracker.switch_points) if tracker is not None else 0
        return cls(seed, pairs, signature, switches)

    # ------------------------------------------------------------------
    # payload round-trip (process boundary + result cache)

    def to_payload(self) -> Dict:
        return {
            "seed": self.seed,
            "pairs": sorted(list(pair) for pair in self.pairs),
            "signature": self.signature,
            "switches": self.switches,
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "SeedCoverage":
        return cls(
            payload["seed"],
            frozenset((int(a), int(b)) for a, b in payload["pairs"]),
            payload["signature"],
            payload.get("switches", 0),
        )

    def __repr__(self) -> str:
        return "<SeedCoverage seed=%d pairs=%d sig=%s>" % (
            self.seed, len(self.pairs), self.signature or "-",
        )


class CoverageMap:
    """Accumulated interleaving coverage across seeds.

    ``merge`` must be called in seed order; the per-merge ``new_pairs``
    delta is then deterministic — the exploration driver's early-stopping
    decisions (and the metrics it records) are identical at any job count.
    """

    def __init__(self):
        self.pairs: set = set()
        self.signatures: set = set()
        self.seeds_merged: List[int] = []

    def merge(self, coverage: SeedCoverage) -> int:
        """Fold one seed in; returns how many racy pairs were new."""
        new_pairs = len(coverage.pairs - self.pairs)
        self.pairs |= coverage.pairs
        if coverage.signature:
            self.signatures.add(coverage.signature)
        self.seeds_merged.append(coverage.seed)
        return new_pairs

    def merge_all(self, coverages: Sequence[SeedCoverage]) -> List[int]:
        """Merge a wave of seeds (already in seed order); per-seed deltas."""
        return [self.merge(coverage) for coverage in coverages]

    @property
    def total_pairs(self) -> int:
        return len(self.pairs)

    @property
    def distinct_schedules(self) -> int:
        return len(self.signatures)

    def as_dict(self) -> Dict:
        return {
            "total_pairs": self.total_pairs,
            "distinct_schedules": self.distinct_schedules,
            "seeds_merged": list(self.seeds_merged),
        }

    def __repr__(self) -> str:
        return "<CoverageMap pairs=%d schedules=%d seeds=%d>" % (
            self.total_pairs, self.distinct_schedules, len(self.seeds_merged),
        )
