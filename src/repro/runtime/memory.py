"""Byte-addressable shared memory with object-lifetime tracking.

Memory is organised as disjoint blocks separated by guard gaps.  Each block
knows its kind (global / heap / stack / string / code), its optional struct
field layout, and whether it has been freed.  This supports the runtime fault
model the reproduced attacks need:

- reads/writes to freed heap blocks are use-after-free (SSDB, Figure 6),
- writes crossing a struct field boundary are *field overflows* — memory
  corruption of an adjacent field, which is exactly the Apache bug-25520
  exploit (one log byte overwriting the neighbouring file-descriptor field,
  Figure 7) — recorded but allowed to proceed so the attack can be realized,
- accesses past a block's end or into a guard gap are buffer overflows /
  wild accesses.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Tuple

from repro.ir.types import ArrayType, IntType, PointerType, StructType, Type
from repro.runtime.errors import FaultEvent, FaultKind, RuntimeFault

GUARD_GAP = 64
BASE_ADDRESS = 0x10000
CODE_BASE = 0x1000


class MemoryBlock:
    """One contiguous allocation."""

    GLOBAL = "global"
    HEAP = "heap"
    STACK = "stack"
    CODE = "code"

    def __init__(self, base: int, size: int, kind: str, name: str = "",
                 value_type: Optional[Type] = None):
        self.base = base
        self.size = size
        self.kind = kind
        self.name = name
        self.value_type = value_type
        self.data = bytearray(size)
        self.freed = False
        self.alloc_step = 0
        self.free_step: Optional[int] = None
        # (field_name, offset, size) when value_type is a struct.
        self.fields: List[Tuple[str, int, int]] = []
        if isinstance(value_type, StructType):
            self.fields = value_type.layout()
        # offset -> description memo; must be cleared whenever the block's
        # field layout changes (see invalidate_descriptions).
        self._describe_memo: Dict[int, str] = {}

    @property
    def end(self) -> int:
        return self.base + self.size

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def field_at(self, offset: int) -> Optional[Tuple[str, int, int]]:
        for name, field_offset, field_size in self.fields:
            if field_offset <= offset < field_offset + field_size:
                return (name, field_offset, field_size)
        return None

    def describe_offset(self, offset: int) -> str:
        """Human-readable name for an address inside the block."""
        field = self.field_at(offset)
        if field is not None:
            suffix = "" if offset == field[1] else "+%d" % (offset - field[1])
            return "%s.%s%s" % (self.name or hex(self.base), field[0], suffix)
        if offset == 0:
            return self.name or hex(self.base)
        return "%s+%d" % (self.name or hex(self.base), offset)

    def describe_offset_cached(self, offset: int) -> str:
        """Memoized :meth:`describe_offset` — the per-access hot path.

        The linear field scan plus string formatting runs once per distinct
        (block, offset); repeated accesses to the same location (the common
        case for racy variables) hit the memo.
        """
        memo = self._describe_memo
        text = memo.get(offset)
        if text is None:
            text = self.describe_offset(offset)
            memo[offset] = text
        return text

    def invalidate_descriptions(self) -> None:
        """Drop memoized descriptions after the field layout changed."""
        self._describe_memo.clear()

    def __repr__(self) -> str:
        state = " freed" if self.freed else ""
        return "<MemoryBlock %s %s base=0x%x size=%d%s>" % (
            self.kind, self.name or "?", self.base, self.size, state,
        )


class Memory:
    """The process address space.

    ``memoize=False`` disables the repeated-address ``block_at`` cache and
    the per-(block, offset) description memo — the reference configuration
    of the differential oracle (:mod:`repro.runtime.diffcheck`).
    """

    def __init__(self, memoize: bool = True):
        self._blocks: Dict[int, MemoryBlock] = {}
        self._bases: List[int] = []
        self._next_address = BASE_ADDRESS
        self._memoize = memoize
        # Consecutive accesses overwhelmingly hit the same block; checking
        # the previous hit first skips the bisect.  Blocks are never moved
        # or removed (freed blocks stay mapped), so a cached hit can never
        # go stale.
        self._last_block: Optional[MemoryBlock] = None
        #: faults recorded when fault-tolerant access is requested
        self.recorded_faults: List[FaultEvent] = []

    # ------------------------------------------------------------------
    # allocation

    def allocate(self, size: int, kind: str, name: str = "",
                 value_type: Optional[Type] = None, step: int = 0) -> MemoryBlock:
        size = max(1, size)
        block = MemoryBlock(self._next_address, size, kind, name=name,
                            value_type=value_type)
        block.alloc_step = step
        self._next_address += size + GUARD_GAP
        self._blocks[block.base] = block
        bisect.insort(self._bases, block.base)
        return block

    def free(self, address: int, thread_id: int, step: int,
             call_stack=()) -> Optional[FaultEvent]:
        """Free a heap block; returns a fault event for invalid/double frees."""
        block = self._blocks.get(address)
        if block is None or block.kind != MemoryBlock.HEAP or address != block.base:
            return FaultEvent(
                FaultKind.INVALID_FREE, thread_id,
                "free of non-heap address 0x%x" % address,
                address=address, call_stack=call_stack, step=step,
            )
        if block.freed:
            return FaultEvent(
                FaultKind.DOUBLE_FREE, thread_id,
                "double free of %s (0x%x)" % (block.name or "block", address),
                address=address, call_stack=call_stack, step=step,
            )
        block.freed = True
        block.free_step = step
        return None

    # ------------------------------------------------------------------
    # lookup

    def block_at(self, address: int) -> Optional[MemoryBlock]:
        """The block containing ``address``, freed blocks included."""
        last = self._last_block
        if last is not None and last.contains(address):
            return last
        index = bisect.bisect_right(self._bases, address) - 1
        if index < 0:
            return None
        block = self._blocks[self._bases[index]]
        if not block.contains(address):
            return None
        if self._memoize:
            self._last_block = block
        return block

    def describe(self, address: int) -> str:
        block = self.block_at(address)
        if block is None:
            return hex(address)
        offset = address - block.base
        if self._memoize:
            return block.describe_offset_cached(offset)
        return block.describe_offset(offset)

    def blocks(self) -> List[MemoryBlock]:
        return [self._blocks[base] for base in self._bases]

    # ------------------------------------------------------------------
    # access

    def check_access(
        self,
        address: int,
        size: int,
        is_write: bool,
        thread_id: int,
        step: int,
        call_stack=(),
    ) -> Tuple[Optional[MemoryBlock], Optional[FaultEvent]]:
        """Validate an access; returns (block, fault-or-None).

        A fault with a live ``block`` (use-after-free, intra-block overflow)
        can be recorded and the access allowed to continue — that is the
        memory corruption attacks build on.  A ``None`` block means the access
        cannot proceed at all.
        """
        if address == 0:
            return None, FaultEvent(
                FaultKind.NULL_DEREF, thread_id,
                "NULL pointer dereference (%s)" % ("write" if is_write else "read"),
                address=0, call_stack=call_stack, step=step,
            )
        block = self.block_at(address)
        if block is None:
            return None, FaultEvent(
                FaultKind.WILD_ACCESS, thread_id,
                "access to unmapped address 0x%x" % address,
                address=address, call_stack=call_stack, step=step,
            )
        if block.freed:
            return block, FaultEvent(
                FaultKind.USE_AFTER_FREE, thread_id,
                "%s of freed %s" % (
                    "write" if is_write else "read", block.name or hex(block.base),
                ),
                address=address, call_stack=call_stack, step=step,
            )
        offset = address - block.base
        if offset + size > block.size:
            return block, FaultEvent(
                FaultKind.BUFFER_OVERFLOW, thread_id,
                "%d-byte %s at %s overruns block of %d bytes" % (
                    size, "write" if is_write else "read",
                    block.describe_offset(offset), block.size,
                ),
                address=address, call_stack=call_stack, step=step,
            )
        return block, None

    def read_bytes(self, address: int, size: int) -> bytes:
        """Raw read; caller must have validated the access.

        A read crossing the block end returns exactly ``size`` bytes with
        the out-of-block tail zero-filled (the guard gap reads as zeros).
        Returning a silently short buffer here made ``read_int`` decode a
        value of the wrong width after a fault-tolerated intra-block
        overflow access; zero-padding keeps the decoded value well-defined.
        """
        block = self.block_at(address)
        if block is None:
            raise RuntimeFault(FaultEvent(
                FaultKind.WILD_ACCESS, -1, "raw read at 0x%x" % address, address,
            ))
        offset = address - block.base
        end = offset + size
        if end <= block.size:
            return bytes(block.data[offset:end])
        return bytes(block.data[offset:block.size]) + b"\x00" * (end - block.size)

    def write_bytes(self, address: int, data: bytes) -> None:
        """Raw write; caller must have validated the access.

        A write crossing the block end stores the in-block prefix and
        records a :data:`FaultKind.BUFFER_OVERFLOW` event in
        :attr:`recorded_faults` — consistent with the ``check_access``
        fault model — instead of silently dropping the tail bytes.
        """
        block = self.block_at(address)
        if block is None:
            raise RuntimeFault(FaultEvent(
                FaultKind.WILD_ACCESS, -1, "raw write at 0x%x" % address, address,
            ))
        offset = address - block.base
        end = offset + len(data)
        if end <= block.size:
            block.data[offset:end] = data
            return
        writable = block.size - offset
        self.recorded_faults.append(FaultEvent(
            FaultKind.BUFFER_OVERFLOW, -1,
            "raw write of %d bytes at %s truncated to %d (block of %d bytes)" % (
                len(data), block.describe_offset(offset), writable, block.size,
            ),
            address=address,
        ))
        block.data[offset:block.size] = data[:writable]

    # ------------------------------------------------------------------
    # typed scalar access

    def read_int(self, address: int, size: int, signed: bool = True) -> int:
        raw = self.read_bytes(address, size)
        return int.from_bytes(raw, "little", signed=signed)

    def write_int(self, address: int, value: int, size: int) -> None:
        mask = (1 << (size * 8)) - 1
        self.write_bytes(address, (value & mask).to_bytes(size, "little"))

    def read_c_string(self, address: int, limit: int = 1 << 16) -> bytes:
        """Read a NUL-terminated string, stopping at the block end."""
        block = self.block_at(address)
        if block is None:
            raise RuntimeFault(FaultEvent(
                FaultKind.WILD_ACCESS, -1, "string read at 0x%x" % address, address,
            ))
        offset = address - block.base
        out = bytearray()
        while offset < block.size and len(out) < limit:
            byte = block.data[offset]
            if byte == 0:
                break
            out.append(byte)
            offset += 1
        return bytes(out)


def sizeof(type_: Type) -> int:
    return type_.size()


def store_initializer(memory: Memory, block: MemoryBlock, type_: Type, value,
                      offset: int = 0) -> None:
    """Write a global initializer (int, bytes, or nested list) into a block."""
    if value is None:
        return
    if isinstance(value, bytes):
        block.data[offset:offset + len(value)] = value
        return
    if isinstance(type_, IntType) and isinstance(value, int):
        size = type_.size()
        mask = (1 << (size * 8)) - 1
        block.data[offset:offset + size] = (value & mask).to_bytes(size, "little")
        return
    if isinstance(type_, PointerType) and isinstance(value, int):
        block.data[offset:offset + 8] = (value & ((1 << 64) - 1)).to_bytes(8, "little")
        return
    if isinstance(type_, ArrayType) and isinstance(value, (list, tuple)):
        for index, element in enumerate(value):
            store_initializer(
                memory, block, type_.element, element,
                offset + index * type_.element.size(),
            )
        return
    if isinstance(type_, StructType) and isinstance(value, (list, tuple)):
        for (name, field_type), element in zip(type_.fields, value):
            store_initializer(
                memory, block, field_type, element, offset + type_.field_offset(name),
            )
        return
    raise TypeError("cannot initialize %s with %r" % (type_, value))
