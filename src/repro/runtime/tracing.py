"""Structured execution tracing: a debugging aid for verifier development.

:class:`TraceLogger` is a :class:`repro.runtime.events.TraceObserver` that
records every event as a plain tuple-like record, with filtering by thread,
address range, and event kind.  ``to_lines`` renders a human-readable
interleaving log — the artifact you want when a race verifier behaves
unexpectedly ("which thread touched this address when?").
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from repro.runtime.events import (
    AccessEvent,
    AllocEvent,
    ExternalCallEvent,
    FreeEvent,
    SyncEvent,
    ThreadLifecycleEvent,
    TraceObserver,
)


class TraceRecord:
    """One recorded event in normalized form."""

    __slots__ = ("step", "thread_id", "kind", "detail", "address", "location")

    def __init__(self, step: int, thread_id: int, kind: str, detail: str,
                 address: Optional[int] = None, location: Optional[str] = None):
        self.step = step
        self.thread_id = thread_id
        self.kind = kind
        self.detail = detail
        self.address = address
        self.location = location

    def render(self) -> str:
        where = " @%s" % self.location if self.location else ""
        addr = " 0x%x" % self.address if self.address is not None else ""
        return "[%6d] t%-2d %-8s %s%s%s" % (
            self.step, self.thread_id, self.kind, self.detail, addr, where,
        )

    def __repr__(self) -> str:
        return "<TraceRecord %s>" % self.render()


class TraceLogger(TraceObserver):
    """Records events, optionally bounded and filtered."""

    def __init__(self, max_records: int = 100_000,
                 kinds: Optional[Sequence[str]] = None):
        self.records: List[TraceRecord] = []
        self.max_records = max_records
        self.kinds = set(kinds) if kinds is not None else None
        self.dropped = 0

    @property
    def truncated(self) -> bool:
        """Whether any event was dropped after ``max_records`` filled up."""
        return self.dropped > 0

    def publish(self, registry) -> None:
        """Fold record/drop counts into a telemetry registry.

        Before the telemetry snapshot, the ``dropped`` counter existed but
        nothing aggregated it; publishing makes a silently truncated trace
        visible as ``tracing.dropped_records`` in the snapshot.
        """
        registry.counter("tracing.records").inc(len(self.records))
        registry.counter("tracing.dropped_records").inc(self.dropped)

    def _add(self, record: TraceRecord) -> None:
        if self.kinds is not None and record.kind not in self.kinds:
            return
        if len(self.records) >= self.max_records:
            self.dropped += 1
            return
        self.records.append(record)

    # ------------------------------------------------------------------
    # observer hooks

    def on_access(self, event: AccessEvent) -> None:
        mode = "write" if event.is_write else "read"
        self._add(TraceRecord(
            event.step, event.thread_id, mode,
            "%s = %d" % (event.variable or "?", event.value),
            address=event.address, location=str(event.instruction.location),
        ))

    def on_sync(self, event: SyncEvent) -> None:
        self._add(TraceRecord(event.step, event.thread_id, "sync",
                              event.kind, address=event.address))

    def on_thread(self, event: ThreadLifecycleEvent) -> None:
        self._add(TraceRecord(event.step, event.thread_id, "thread",
                              "%s t%d" % (event.kind, event.other_thread_id)))

    def on_alloc(self, event: AllocEvent) -> None:
        self._add(TraceRecord(event.step, event.thread_id, "alloc",
                              "%d bytes" % event.size, address=event.address))

    def on_free(self, event: FreeEvent) -> None:
        self._add(TraceRecord(event.step, event.thread_id, "free", "",
                              address=event.address))

    def on_external_call(self, event: ExternalCallEvent) -> None:
        self._add(TraceRecord(event.step, event.thread_id, "call",
                              "%s%r" % (event.name, tuple(event.arguments))))

    def on_fault(self, event) -> None:
        self._add(TraceRecord(event.step, event.thread_id, "FAULT",
                              "%s: %s" % (event.kind.value, event.message),
                              address=event.address))

    # ------------------------------------------------------------------
    # queries

    def filter(self, predicate: Callable[[TraceRecord], bool]) -> List[TraceRecord]:
        return [record for record in self.records if predicate(record)]

    def for_thread(self, thread_id: int) -> List[TraceRecord]:
        return self.filter(lambda r: r.thread_id == thread_id)

    def for_address(self, address: int, size: int = 1) -> List[TraceRecord]:
        return self.filter(
            lambda r: r.address is not None
            and address <= r.address < address + size
        )

    def faults(self) -> List[TraceRecord]:
        return self.filter(lambda r: r.kind == "FAULT")

    def to_lines(self, records: Optional[Iterable[TraceRecord]] = None) -> str:
        full_log = records is None
        chosen = self.records if full_log else list(records)
        lines = [record.render() for record in chosen]
        if full_log and self.dropped:
            lines.append("... truncated (%d dropped)" % self.dropped)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.records)
