"""The differential-execution oracle guarding the VM hot path.

The interpreter's hot path is optimized (per-class dispatch table, memoized
call-stack snapshots, lazy memoized access descriptions, repeated-address
block lookup caching — see :mod:`repro.runtime.interpreter`), and a perf
rewrite is only safe if execution semantics are provably unchanged.  This
module provides the proof obligation: it executes the same program twice —
once with every optimization disabled (``reference``) and once as shipped
(``optimized``) — and asserts that the two executions are *bit-identical*
in everything the rest of OWL can observe:

- the full trace-event stream (access events with thread/step/address/size/
  value/atomicity/call stack/variable description, sync, thread lifecycle,
  alloc/free and external-call events),
- the fault list (including :attr:`Memory.recorded_faults`),
- the execution result (reason, step count, exit code),
- the race-report sets a detector derives from the trace, and
- the pipeline's Table-3 counters (``StageCounters.parity_dict()``).

Both configurations share seeds and schedulers, so any semantic drift in an
optimization shows up as a first-divergence record rather than a silently
different race report three stages later.  ``tools/diff_oracle.py`` drives
this over all registered apps and a seed sweep, and records the reference
vs optimized steps/s in the metrics JSON (schema 4's ``diff_oracle`` block).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.events import (
    AccessEvent,
    AllocEvent,
    ExternalCallEvent,
    FreeEvent,
    SyncEvent,
    ThreadLifecycleEvent,
    TraceObserver,
)
from repro.runtime.interpreter import VM, reference_execution
from repro.runtime.scheduler import RandomScheduler


class TraceRecorder(TraceObserver):
    """Normalizes every trace event into a comparable tuple.

    The tuples carry only plain values (ints, strings, nested tuples), so
    two recorders can be compared field by field regardless of which VM,
    module instance or memory produced them.
    """

    def __init__(self):
        self.records: List[Tuple] = []

    def on_access(self, event: AccessEvent) -> None:
        self.records.append((
            "access", event.thread_id, event.step, event.address, event.size,
            bool(event.is_write), event.value, bool(event.is_atomic),
            event.call_stack, event.variable,
        ))

    def on_sync(self, event: SyncEvent) -> None:
        self.records.append((
            "sync", event.thread_id, event.step, event.kind, event.address,
        ))

    def on_thread(self, event: ThreadLifecycleEvent) -> None:
        self.records.append((
            "thread", event.thread_id, event.step, event.kind,
            event.other_thread_id,
        ))

    def on_alloc(self, event: AllocEvent) -> None:
        self.records.append((
            "alloc", event.thread_id, event.step, event.address, event.size,
        ))

    def on_free(self, event: FreeEvent) -> None:
        self.records.append((
            "free", event.thread_id, event.step, event.address,
        ))

    def on_external_call(self, event: ExternalCallEvent) -> None:
        self.records.append((
            "external", event.thread_id, event.step, event.name,
            event.arguments, event.call_stack,
        ))


def _normalize_fault(fault) -> Tuple:
    return (
        fault.kind.value, fault.thread_id, fault.address, fault.step,
        fault.message, tuple(fault.call_stack),
    )


class ExecutionFingerprint:
    """Everything observable about one execution, in comparable form."""

    #: field comparison order; the first differing field is reported
    FIELDS = ("events", "faults", "recorded_faults", "reason", "exit_code",
              "steps")

    def __init__(self, program: str, seed: int, mode: str,
                 events: List[Tuple], faults: List[Tuple],
                 recorded_faults: List[Tuple], reason: str, steps: int,
                 exit_code: Optional[int], wall_seconds: float):
        self.program = program
        self.seed = seed
        self.mode = mode
        self.events = events
        self.faults = faults
        self.recorded_faults = recorded_faults
        self.reason = reason
        self.steps = steps
        self.exit_code = exit_code
        self.wall_seconds = wall_seconds

    def __repr__(self) -> str:
        return "<ExecutionFingerprint %s seed=%d %s %d events %d steps>" % (
            self.program, self.seed, self.mode, len(self.events), self.steps,
        )


class Divergence:
    """The first observable difference between two executions."""

    def __init__(self, program: str, seed: Optional[int], field: str,
                 index: Optional[int], reference, optimized):
        self.program = program
        self.seed = seed
        self.field = field
        self.index = index
        self.reference = reference
        self.optimized = optimized

    def describe(self) -> str:
        where = self.field if self.index is None else \
            "%s[%d]" % (self.field, self.index)
        return "%s seed=%s diverged at %s:\n  reference: %r\n  optimized: %r" % (
            self.program, self.seed, where, self.reference, self.optimized,
        )

    def __repr__(self) -> str:
        return "<Divergence %s seed=%s %s>" % (
            self.program, self.seed, self.field,
        )


def _first_list_divergence(program, seed, field, ref: List, opt: List
                           ) -> Optional[Divergence]:
    for index, (a, b) in enumerate(zip(ref, opt)):
        if a != b:
            return Divergence(program, seed, field, index, a, b)
    if len(ref) != len(opt):
        index = min(len(ref), len(opt))
        longer = ref if len(ref) > len(opt) else opt
        missing = "<absent: %d vs %d records>" % (len(ref), len(opt))
        if longer is ref:
            return Divergence(program, seed, field, index, longer[index], missing)
        return Divergence(program, seed, field, index, missing, longer[index])
    return None


def compare_fingerprints(reference: ExecutionFingerprint,
                         optimized: ExecutionFingerprint
                         ) -> Optional[Divergence]:
    """First divergence between a reference and an optimized execution."""
    program, seed = reference.program, reference.seed
    for field in ExecutionFingerprint.FIELDS:
        ref_value = getattr(reference, field)
        opt_value = getattr(optimized, field)
        if isinstance(ref_value, list):
            divergence = _first_list_divergence(
                program, seed, field, ref_value, opt_value)
            if divergence is not None:
                return divergence
        elif ref_value != opt_value:
            return Divergence(program, seed, field, None, ref_value, opt_value)
    return None


def fingerprint_run(spec, seed: int, reference: bool,
                    max_steps: Optional[int] = None,
                    fuse=False) -> ExecutionFingerprint:
    """Execute ``spec`` once under ``RandomScheduler(seed)`` and record it.

    ``fuse`` truthy runs the optimized VM with superinstruction fusion
    (:mod:`repro.runtime.fuse`) — the oracle's third mode; ``reference``
    and ``fuse`` are mutually exclusive.  Pass a shared
    :class:`~repro.runtime.fuse.FuseEngine` instead of ``True`` to amortize
    block compiles across a seed sweep (what ``diff_program`` does).
    """
    vm = VM(
        spec.build(),
        scheduler=RandomScheduler(seed),
        world=spec.initial_world() if spec.initial_world is not None else None,
        inputs=spec.workload_inputs,
        max_steps=max_steps or spec.max_steps,
        seed=seed,
        reference=reference,
        fuse=fuse,
    )
    recorder = TraceRecorder()
    vm.add_observer(recorder)
    started = time.perf_counter()
    vm.start(spec.entry)
    result = vm.run()
    wall = time.perf_counter() - started
    return ExecutionFingerprint(
        program=spec.name,
        seed=seed,
        mode=("reference" if reference else
              "fused" if fuse else "optimized"),
        events=recorder.records,
        faults=[_normalize_fault(fault) for fault in vm.faults],
        recorded_faults=[_normalize_fault(fault)
                         for fault in vm.memory.recorded_faults],
        reason=result.reason,
        steps=result.steps,
        exit_code=result.exit_code,
        wall_seconds=wall,
    )


def diff_seed(spec, seed: int,
              max_steps: Optional[int] = None
              ) -> Tuple[Optional[Divergence], ExecutionFingerprint,
                         ExecutionFingerprint]:
    """Compare one seed's reference and optimized executions."""
    reference = fingerprint_run(spec, seed, reference=True,
                                max_steps=max_steps)
    optimized = fingerprint_run(spec, seed, reference=False,
                                max_steps=max_steps)
    return compare_fingerprints(reference, optimized), reference, optimized


class ProgramDiff:
    """Oracle outcome for one program over a seed sweep.

    The sweep always compares reference vs optimized; with ``fuse=True``
    (``diff_program``/``diff_reports``/``diff_counters``) a third, fused
    leg runs per seed and is held bit-identical to the optimized one.
    """

    def __init__(self, program: str, seeds: Sequence[int]):
        self.program = program
        self.seeds = list(seeds)
        self.divergences: List[Divergence] = []
        self.reference_steps = 0
        self.reference_seconds = 0.0
        self.optimized_steps = 0
        self.optimized_seconds = 0.0
        #: fused-mode leg (populated only when the sweep ran with fuse)
        self.fused = False
        self.fused_steps = 0
        self.fused_seconds = 0.0
        #: sorted race-report static keys per mode (diff_reports)
        self.reference_report_keys: Optional[List[Tuple[int, int]]] = None
        self.optimized_report_keys: Optional[List[Tuple[int, int]]] = None
        self.fused_report_keys: Optional[List[Tuple[int, int]]] = None
        #: StageCounters.parity_dict() per mode (diff_counters)
        self.reference_counters: Optional[Dict] = None
        self.optimized_counters: Optional[Dict] = None
        self.fused_counters: Optional[Dict] = None

    @property
    def identical(self) -> bool:
        return (
            not self.divergences
            and self.reference_report_keys == self.optimized_report_keys
            and self.reference_counters == self.optimized_counters
            and (not self.fused or (
                self.optimized_report_keys == self.fused_report_keys
                and self.optimized_counters == self.fused_counters
            ))
        )

    @property
    def reference_steps_per_second(self) -> float:
        if self.reference_seconds <= 0.0:
            return 0.0
        return self.reference_steps / self.reference_seconds

    @property
    def optimized_steps_per_second(self) -> float:
        if self.optimized_seconds <= 0.0:
            return 0.0
        return self.optimized_steps / self.optimized_seconds

    @property
    def speedup(self) -> float:
        if self.reference_steps_per_second <= 0.0:
            return 0.0
        return self.optimized_steps_per_second / self.reference_steps_per_second

    @property
    def fused_steps_per_second(self) -> float:
        if self.fused_seconds <= 0.0:
            return 0.0
        return self.fused_steps / self.fused_seconds

    @property
    def fused_speedup(self) -> float:
        """Fused over *optimized* steps/s — the superinstruction win."""
        if self.optimized_steps_per_second <= 0.0:
            return 0.0
        return self.fused_steps_per_second / self.optimized_steps_per_second

    def as_dict(self) -> Dict:
        payload = {
            "program": self.program,
            "seeds": len(self.seeds),
            "divergences": len(self.divergences),
            "reference_steps_per_second":
                round(self.reference_steps_per_second, 1),
            "optimized_steps_per_second":
                round(self.optimized_steps_per_second, 1),
            "speedup": round(self.speedup, 3),
            "report_sets_identical":
                self.reference_report_keys == self.optimized_report_keys,
            "counters_identical":
                self.reference_counters == self.optimized_counters,
        }
        if self.fused:
            payload["fused_steps_per_second"] = round(
                self.fused_steps_per_second, 1)
            payload["fused_speedup"] = round(self.fused_speedup, 3)
            payload["fused_report_sets_identical"] = (
                self.optimized_report_keys == self.fused_report_keys)
            payload["fused_counters_identical"] = (
                self.optimized_counters == self.fused_counters)
        return payload

    def __repr__(self) -> str:
        return "<ProgramDiff %s seeds=%d divergences=%d speedup=%.2fx>" % (
            self.program, len(self.seeds), len(self.divergences), self.speedup,
        )


def diff_program(spec, seeds: Sequence[int] = range(10),
                 max_steps: Optional[int] = None,
                 stop_on_divergence: bool = False,
                 fuse: bool = False) -> ProgramDiff:
    """Run the event-stream oracle for one program over a seed sweep.

    With ``fuse=True`` each seed additionally runs a third, fused
    execution (superinstructions on), which must be bit-identical to the
    optimized one; fused divergences carry mode "fused" fingerprints.
    """
    diff = ProgramDiff(spec.name, seeds)
    diff.fused = bool(fuse)
    engine = None
    if fuse:
        # One engine across the sweep: block compiles amortize exactly as
        # they do in run_tsan/run_ski's serial paths, so the fused steps/s
        # reflect steady-state fusion rather than per-seed warmup.
        from repro.runtime.fuse import FuseEngine

        engine = FuseEngine()
    for seed in diff.seeds:
        divergence, reference, optimized = diff_seed(
            spec, seed, max_steps=max_steps)
        diff.reference_steps += reference.steps
        diff.reference_seconds += reference.wall_seconds
        diff.optimized_steps += optimized.steps
        diff.optimized_seconds += optimized.wall_seconds
        if divergence is not None:
            diff.divergences.append(divergence)
            if stop_on_divergence:
                break
        if fuse:
            fused = fingerprint_run(spec, seed, reference=False,
                                    max_steps=max_steps, fuse=engine)
            diff.fused_steps += fused.steps
            diff.fused_seconds += fused.wall_seconds
            fused_divergence = compare_fingerprints(optimized, fused)
            if fused_divergence is not None:
                diff.divergences.append(fused_divergence)
                if stop_on_divergence:
                    break
    return diff


def _report_keys(reports) -> List[Tuple[int, int]]:
    return sorted(report.static_key for report in reports)


def diff_reports(spec, diff: Optional[ProgramDiff] = None,
                 fuse: bool = False) -> ProgramDiff:
    """Compare the race-report sets the spec's detector derives per mode."""
    from repro.owl.integration import run_detector

    if diff is None:
        diff = ProgramDiff(spec.name, spec.detect_seeds)
    with reference_execution():
        reference_reports, _ = run_detector(spec)
    optimized_reports, _ = run_detector(spec)
    diff.reference_report_keys = _report_keys(reference_reports)
    diff.optimized_report_keys = _report_keys(optimized_reports)
    if diff.reference_report_keys != diff.optimized_report_keys:
        diff.divergences.append(Divergence(
            spec.name, None, "report_set", None,
            diff.reference_report_keys, diff.optimized_report_keys,
        ))
    if fuse:
        diff.fused = True
        fused_reports, _ = run_detector(spec, fuse=True)
        diff.fused_report_keys = _report_keys(fused_reports)
        if diff.optimized_report_keys != diff.fused_report_keys:
            diff.divergences.append(Divergence(
                spec.name, None, "fused_report_set", None,
                diff.optimized_report_keys, diff.fused_report_keys,
            ))
    return diff


def diff_counters(spec, diff: Optional[ProgramDiff] = None,
                  fuse: bool = False) -> ProgramDiff:
    """Compare ``StageCounters.parity_dict()`` of a full pipeline run."""
    from repro.owl.pipeline import OwlPipeline

    if diff is None:
        diff = ProgramDiff(spec.name, spec.detect_seeds)
    with reference_execution():
        reference_result = OwlPipeline(spec).run()
    optimized_result = OwlPipeline(spec).run()
    diff.reference_counters = reference_result.counters.parity_dict()
    diff.optimized_counters = optimized_result.counters.parity_dict()
    if diff.reference_counters != diff.optimized_counters:
        diff.divergences.append(Divergence(
            spec.name, None, "stage_counters", None,
            diff.reference_counters, diff.optimized_counters,
        ))
    if fuse:
        diff.fused = True
        fused_result = OwlPipeline(spec, fuse=True).run()
        diff.fused_counters = fused_result.counters.parity_dict()
        if diff.optimized_counters != diff.fused_counters:
            diff.divergences.append(Divergence(
                spec.name, None, "fused_stage_counters", None,
                diff.optimized_counters, diff.fused_counters,
            ))
    return diff


def diff_record_replay(spec, seeds: Sequence[int] = range(3),
                       max_steps: Optional[int] = None) -> List[Divergence]:
    """Assert the fuse flag is inert through the record/replay backbone.

    Recording and replay schedulers force ``run_length`` to 1 (recording
    must log one entry per decision; replay consumes one recorded decision
    per step), so requesting fusion there must change nothing.  Each seed
    is recorded twice — fuse off and fuse on — and the two
    :class:`~repro.runtime.record.ScheduleLog` payloads plus recorded
    fingerprints must match; the fuse-off log is then replayed both ways
    and the replayed fingerprints must match too.  Returns every
    divergence found (empty list = identical).
    """
    from repro.runtime.record import record_seed, replay_log

    module = spec.build()
    world = spec.initial_world
    divergences: List[Divergence] = []
    for seed in seeds:
        runs = {}
        for fuse in (False, True):
            log, _result, fingerprint = record_seed(
                module, seed, entry=spec.entry, inputs=spec.workload_inputs,
                max_steps=max_steps or spec.max_steps,
                scheduler=RandomScheduler(seed),
                world=world() if world is not None else None,
                program=spec.name, fingerprint=True, fuse=fuse,
            )
            runs[fuse] = (log, fingerprint)
        log_off, recorded_off = runs[False]
        log_on, recorded_on = runs[True]
        if log_off.to_payload() != log_on.to_payload():
            divergences.append(Divergence(
                spec.name, seed, "recorded_schedule_log", None,
                log_off.to_payload(), log_on.to_payload()))
        divergence = compare_fingerprints(recorded_off, recorded_on)
        if divergence is not None:
            divergence.field = "recorded_" + divergence.field
            divergences.append(divergence)
        replayed = {}
        for fuse in (False, True):
            outcome = replay_log(
                module, log_off, inputs=spec.workload_inputs,
                world=world() if world is not None else None,
                fingerprint=True, fuse=fuse,
            )
            if outcome.total_divergences or not outcome.faithful:
                divergences.append(Divergence(
                    spec.name, seed, "replay_faithfulness", None,
                    "faithful replay",
                    "fuse=%s: %d divergences" % (
                        fuse, outcome.total_divergences)))
            replayed[fuse] = outcome.fingerprint
        divergence = compare_fingerprints(replayed[False], replayed[True])
        if divergence is not None:
            divergence.field = "replayed_" + divergence.field
            divergences.append(divergence)
    return divergences


def benchmark_fused(spec, seeds: Sequence[int] = range(10),
                    max_steps: Optional[int] = None,
                    quantum: int = 50) -> Dict:
    """Measure the fused-vs-optimized steps/s ratio where fusion can act.

    ``RandomScheduler`` preempts geometrically (expected no-preempt run of
    ``n/(n-1)`` with ``n`` runnable threads), so the oracle sweep's
    ``fused_speedup`` is ~1.0x by construction — it proves parity, not
    performance.  The speedup floor is therefore measured under
    :class:`~repro.runtime.scheduler.RoundRobinScheduler`, whose quantum
    gives ``run_length`` real no-preempt windows, with one shared
    :class:`~repro.runtime.fuse.FuseEngine` so compiles amortize across
    seeds exactly as they do in a detector sweep.
    """
    from repro.runtime.fuse import FuseEngine
    from repro.runtime.scheduler import RoundRobinScheduler

    seeds = list(seeds)
    engine = FuseEngine()
    # One module for every VM, exactly like run_tsan/run_ski sweeps: a
    # fresh build per seed would re-randomize addresses and invalidate the
    # shared engine's plans on every attach.
    module = spec.build()
    totals = {"optimized": [0, 0.0], "fused": [0, 0.0]}
    for mode, fuse in (("optimized", False), ("fused", True)):
        for seed in seeds:
            vm = VM(
                module,
                scheduler=RoundRobinScheduler(quantum=quantum),
                world=(spec.initial_world()
                       if spec.initial_world is not None else None),
                inputs=spec.workload_inputs,
                max_steps=max_steps or spec.max_steps,
                seed=seed,
                fuse=engine if fuse else False,
            )
            started = time.perf_counter()
            vm.start(spec.entry)
            result = vm.run()
            totals[mode][0] += result.steps
            totals[mode][1] += time.perf_counter() - started
    optimized_sps = (totals["optimized"][0] / totals["optimized"][1]
                     if totals["optimized"][1] > 0 else 0.0)
    fused_sps = (totals["fused"][0] / totals["fused"][1]
                 if totals["fused"][1] > 0 else 0.0)
    counters = engine.counters()
    fused_steps = totals["fused"][0]
    return {
        "program": spec.name,
        "scheduler": "round_robin",
        "quantum": quantum,
        "seeds": len(seeds),
        "optimized_steps_per_second": round(optimized_sps, 1),
        "fused_steps_per_second": round(fused_sps, 1),
        "fused_speedup": round(fused_sps / optimized_sps, 3)
        if optimized_sps > 0 else 0.0,
        "fused_step_share": round(
            counters["fused_steps"] / fused_steps, 4) if fused_steps else 0.0,
        "compiled_blocks": counters["compiled"],
    }
