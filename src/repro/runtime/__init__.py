"""The concurrent runtime: a VM executing IR modules under controllable schedules.

This package substitutes for native multithreaded execution in the paper's
evaluation.  It provides:

- a byte-addressable shared memory with heap-lifetime tracking
  (:mod:`repro.runtime.memory`),
- threads, frames and call stacks (:mod:`repro.runtime.thread`),
- pluggable schedulers — round-robin, seeded random, PCT, scripted —
  (:mod:`repro.runtime.scheduler`); the schedule is the degree of freedom
  that makes data races manifest, matching the paper's "runtime effects
  (e.g., hardware timings)",
- an instruction interpreter (:mod:`repro.runtime.interpreter`),
- external-function semantics, including the security-sensitive operations
  that constitute OWL's vulnerable sites (:mod:`repro.runtime.externals`),
- an operating-system model tracking privilege and file state
  (:mod:`repro.runtime.os_model`),
- runtime fault detection — NULL dereference, use-after-free, double free,
  buffer/field overflow — (:mod:`repro.runtime.errors`), and
- an LLDB-like debugger with thread-specific breakpoints
  (:mod:`repro.runtime.debugger`), the mechanism under OWL's dynamic race
  and vulnerability verifiers (paper sections 5.2 and 6.2).
"""

from repro.runtime.errors import (
    FaultEvent,
    FaultKind,
    RuntimeFault,
    VMError,
)
from repro.runtime.events import (
    AccessEvent,
    AllocEvent,
    ExternalCallEvent,
    FreeEvent,
    SyncEvent,
    ThreadLifecycleEvent,
    TraceObserver,
)
from repro.runtime.memory import Memory, MemoryBlock
from repro.runtime.scheduler import (
    PCTScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    Scheduler,
    ScriptedScheduler,
)
from repro.runtime.thread import Frame, ThreadContext, ThreadState
from repro.runtime.os_model import OSWorld
from repro.runtime.interpreter import VM, ExecutionResult, reference_execution
from repro.runtime.debugger import Breakpoint, Debugger
from repro.runtime.diffcheck import (
    Divergence,
    ExecutionFingerprint,
    ProgramDiff,
    TraceRecorder,
    compare_fingerprints,
    diff_counters,
    diff_program,
    diff_reports,
    diff_seed,
    fingerprint_run,
)
from repro.runtime.metrics import (
    MetricsSchemaError,
    PipelineMetrics,
    RunStats,
    StageMetrics,
    load_metrics,
    metrics_path,
)
from repro.runtime.spans import Span, SpanTracer, maybe_span

__all__ = [
    "FaultEvent",
    "FaultKind",
    "RuntimeFault",
    "VMError",
    "AccessEvent",
    "AllocEvent",
    "ExternalCallEvent",
    "FreeEvent",
    "SyncEvent",
    "ThreadLifecycleEvent",
    "TraceObserver",
    "Memory",
    "MemoryBlock",
    "PCTScheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "ScriptedScheduler",
    "Frame",
    "ThreadContext",
    "ThreadState",
    "OSWorld",
    "VM",
    "ExecutionResult",
    "reference_execution",
    "Breakpoint",
    "Debugger",
    "Divergence",
    "ExecutionFingerprint",
    "ProgramDiff",
    "TraceRecorder",
    "compare_fingerprints",
    "diff_counters",
    "diff_program",
    "diff_reports",
    "diff_seed",
    "fingerprint_run",
    "MetricsSchemaError",
    "PipelineMetrics",
    "RunStats",
    "StageMetrics",
    "load_metrics",
    "metrics_path",
    "Span",
    "SpanTracer",
    "maybe_span",
]
