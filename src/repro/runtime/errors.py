"""Runtime faults: the consequences concurrency attacks manifest as.

The paper's attacks end in memory corruption with security consequences:
NULL function-pointer dereferences (Linux uselib, Figure 2), use-after-free
(SSDB, Figure 6), buffer/field overflows (Apache bug 25520, Figure 7), double
frees (Apache/MySQL, Table 4).  The VM detects these conditions and records
them as :class:`FaultEvent`s; OWL's dynamic vulnerability verifier checks for
them when deciding whether an attack was realized.
"""

from __future__ import annotations

import enum
from typing import Optional, Tuple


class VMError(Exception):
    """Base class for errors raised by the runtime itself (not the program)."""


class FaultKind(enum.Enum):
    """The kinds of runtime faults the VM detects."""

    NULL_DEREF = "null-pointer-dereference"
    USE_AFTER_FREE = "use-after-free"
    DOUBLE_FREE = "double-free"
    INVALID_FREE = "invalid-free"
    BUFFER_OVERFLOW = "buffer-overflow"
    FIELD_OVERFLOW = "field-overflow"
    WILD_ACCESS = "wild-memory-access"
    DIVISION_BY_ZERO = "division-by-zero"
    STACK_SMASH = "stack-smash"
    DEADLOCK = "deadlock"
    STEP_LIMIT = "step-limit-exceeded"
    ASSERTION = "assertion-failure"


CallStack = Tuple[Tuple[str, str, int], ...]


class FaultEvent:
    """A detected runtime fault, recorded on the VM event log."""

    def __init__(
        self,
        kind: FaultKind,
        thread_id: int,
        message: str,
        address: Optional[int] = None,
        call_stack: CallStack = (),
        step: int = 0,
    ):
        self.kind = kind
        self.thread_id = thread_id
        self.message = message
        self.address = address
        self.call_stack = call_stack
        self.step = step

    def __repr__(self) -> str:
        return "<Fault %s t%d @%s: %s>" % (
            self.kind.value, self.thread_id,
            hex(self.address) if self.address is not None else "-", self.message,
        )


class RuntimeFault(VMError):
    """Raised inside the interpreter when a fault should abort execution."""

    def __init__(self, event: FaultEvent):
        super().__init__("%s: %s" % (event.kind.value, event.message))
        self.event = event
