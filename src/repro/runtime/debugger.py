"""An LLDB-like debugger for the VM: thread-specific breakpoints.

Paper section 5.2: *"The verifier sets thread specific breakpoints indicated
by TSan race reports.  'Thread specific' means when the breakpoint is
triggered, we only halt that specific thread instead of the whole program.
The rest of the threads are still able to run.  In this way, we can actually
catch the race when both of the racing instructions are reached by different
threads and are accessing the same address."*

This module implements exactly that mechanism; the OWL race verifier and
vulnerability verifier drive it.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.ir.instructions import (
    AtomicRMW,
    Call,
    Instruction,
    Load,
    Store,
)
from repro.runtime.thread import ThreadContext, ThreadState


class Breakpoint:
    """A breakpoint on one instruction, optionally filtered to one thread.

    ``thread_filter`` may be a thread id (int), a thread name (str) or None
    (any thread).  A disabled breakpoint never triggers; ``skip_next`` lets
    the controller step a halted thread past its own breakpoint on resume.
    """

    def __init__(
        self,
        instruction: Instruction,
        thread_filter: Optional[Union[int, str]] = None,
    ):
        self.instruction = instruction
        self.thread_filter = thread_filter
        self.enabled = True
        self.hit_count = 0
        self._skip: Dict[int, int] = {}

    def matches(self, thread: ThreadContext, instruction: Instruction) -> bool:
        if not self.enabled or instruction is not self.instruction:
            return False
        if isinstance(self.thread_filter, int):
            if thread.thread_id != self.thread_filter:
                return False
        elif isinstance(self.thread_filter, str):
            if thread.name != self.thread_filter:
                return False
        if self._skip.get(thread.thread_id, 0) > 0:
            self._skip[thread.thread_id] -= 1
            return False
        return True

    def skip_once(self, thread_id: int) -> None:
        self._skip[thread_id] = self._skip.get(thread_id, 0) + 1

    def __repr__(self) -> str:
        return "<Breakpoint %s filter=%r hits=%d>" % (
            self.instruction.location, self.thread_filter, self.hit_count,
        )


class PendingAccess:
    """What a halted thread is about to do: the 'racing moment' snapshot."""

    def __init__(self, instruction: Instruction, address: Optional[int],
                 is_write: bool, value: Optional[int], value_type: str):
        self.instruction = instruction
        self.address = address
        self.is_write = is_write
        self.value = value
        self.value_type = value_type

    def __repr__(self) -> str:
        mode = "write" if self.is_write else "read"
        return "<Pending %s of %s addr=%s val=%r>" % (
            mode, self.value_type,
            hex(self.address) if self.address is not None else "?", self.value,
        )


class Debugger:
    """Owns the VM's breakpoints and halted-thread bookkeeping."""

    def __init__(self, vm):
        self.vm = vm
        self.breakpoints: List[Breakpoint] = []
        self.last_hit: Optional[Tuple[ThreadContext, Breakpoint]] = None
        vm.debugger = self

    # ------------------------------------------------------------------
    # breakpoint management

    def add_breakpoint(self, instruction: Instruction,
                       thread_filter: Optional[Union[int, str]] = None) -> Breakpoint:
        breakpoint = Breakpoint(instruction, thread_filter)
        self.breakpoints.append(breakpoint)
        return breakpoint

    def remove_breakpoint(self, breakpoint: Breakpoint) -> None:
        if breakpoint in self.breakpoints:
            self.breakpoints.remove(breakpoint)

    def clear(self) -> None:
        self.breakpoints = []

    def check(self, thread: ThreadContext, instruction: Instruction) -> bool:
        """VM hook: should ``thread`` halt before executing ``instruction``?"""
        for breakpoint in self.breakpoints:
            if breakpoint.matches(thread, instruction):
                breakpoint.hit_count += 1
                self.last_hit = (thread, breakpoint)
                return True
        return False

    # ------------------------------------------------------------------
    # halted-thread control

    def halted_threads(self) -> List[ThreadContext]:
        return [
            t for t in self.vm.threads.values() if t.state == ThreadState.HALTED
        ]

    def resume(self, thread: ThreadContext, step_past: bool = True) -> None:
        """Make a halted thread runnable again.

        With ``step_past`` the thread's matching breakpoints are skipped once
        so the thread can execute the very instruction it stopped at.
        """
        if thread.state != ThreadState.HALTED:
            return
        if step_past:
            instruction = thread.current_instruction()
            for breakpoint in self.breakpoints:
                if breakpoint.enabled and breakpoint.instruction is instruction:
                    breakpoint.skip_once(thread.thread_id)
        thread.state = ThreadState.RUNNABLE
        self.vm._halted_count -= 1

    def release_one(self) -> Optional[ThreadContext]:
        """Livelock resolution: temporarily release one triggered breakpoint.

        Paper section 5.2: "We resolve this livelock state by temporarily
        releasing one of the currently triggered breakpoints."
        """
        halted = self.halted_threads()
        if not halted:
            return None
        thread = min(halted, key=lambda t: t.thread_id)
        self.resume(thread, step_past=True)
        return thread

    # ------------------------------------------------------------------
    # inspection

    def pending_access(self, thread: ThreadContext) -> Optional[PendingAccess]:
        """The memory access ``thread`` is about to perform, if any.

        Operand values are already computed SSA registers, so the address and
        value can be read without executing the instruction — the debugger's
        equivalent of inspecting registers at a breakpoint.
        """
        instruction = thread.current_instruction()
        if instruction is None or not thread.frames:
            return None
        frame = thread.top
        evaluate = self.vm.evaluate
        try:
            if isinstance(instruction, Load):
                address = evaluate(frame, instruction.pointer)
                return PendingAccess(
                    instruction, address, False, None, str(instruction.type),
                )
            if isinstance(instruction, Store):
                address = evaluate(frame, instruction.pointer)
                value = evaluate(frame, instruction.value)
                return PendingAccess(
                    instruction, address, True, value, str(instruction.value.type),
                )
            if isinstance(instruction, AtomicRMW):
                address = evaluate(frame, instruction.pointer)
                value = evaluate(frame, instruction.value)
                return PendingAccess(
                    instruction, address, True, value, str(instruction.type),
                )
            if isinstance(instruction, Call):
                return PendingAccess(instruction, None, False, None, "call")
        except Exception:
            return None
        return None

    def peek_memory(self, address: int, size: int) -> Optional[int]:
        """Read memory without emitting events (debugger inspection)."""
        block = self.vm.memory.block_at(address)
        if block is None or address + size > block.end:
            return None
        return self.vm.memory.read_int(address, size, signed=False)
