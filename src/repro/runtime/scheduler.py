"""Thread schedulers: the interleaving knob.

In the paper, whether a race manifests depends on "runtime effects (e.g.,
hardware timings)".  Here the interleaving is chosen per instruction by a
:class:`Scheduler`.  The implementations:

- :class:`RoundRobinScheduler` — deterministic quantum-based switching; the
  "common case" schedule under which most races stay latent.
- :class:`RandomScheduler` — uniform random choice each step from a seed;
  the workhorse for detector runs and for the race verifier's re-executions.
- :class:`PCTScheduler` — probabilistic concurrency testing (random priorities
  plus d-1 priority-change points), a stronger bug-finding schedule.
- :class:`ScriptedScheduler` — an explicit schedule script; used by the
  dynamic vulnerability verifier to enforce the racing order (paper
  section 6.2 "requires user intervention to decide the execution order of
  the racing instructions") and by the exploit drivers.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

from repro.runtime.thread import ThreadContext


class Scheduler:
    """Chooses which runnable thread executes the next instruction."""

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        raise NotImplementedError

    def run_length(self, thread: ThreadContext, step: int,
                   max_len: int) -> int:
        """Guaranteed no-preempt run length for block fusion.

        Called by the VM immediately after :meth:`choose` returned
        ``thread`` for decision ``step``, and only while the runnable set
        is guaranteed not to change (nothing blocked, halted or sleeping;
        fused instructions cannot spawn, block or exit).  Returns a length
        ``k`` in ``[1, max_len]`` promising that the next ``k - 1`` calls
        to :meth:`choose` would also return ``thread``, and advances any
        internal state exactly as those ``k - 1`` calls would have — so
        the schedule is bit-identical whether the VM fuses or not.

        The default of 1 disables fusion.  Wrapping schedulers
        (recording, replay, scripted, coverage tracking, the sampling
        profiler) deliberately keep this default: they observe every
        individual decision, so their outputs stay byte-identical with
        fusion on or off.
        """
        return 1

    def on_thread_created(self, thread: ThreadContext) -> None:
        pass

    def reset(self) -> None:
        pass


class RoundRobinScheduler(Scheduler):
    """Run each thread for ``quantum`` steps before switching."""

    def __init__(self, quantum: int = 50):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._current_id: Optional[int] = None
        self._remaining = quantum

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        current = None
        if self._current_id is not None:
            for thread in runnable:
                if thread.thread_id == self._current_id:
                    current = thread
                    break
        if current is not None and self._remaining > 0:
            self._remaining -= 1
            return current
        ordered = sorted(runnable, key=lambda t: t.thread_id)
        if self._current_id is None:
            chosen = ordered[0]
        else:
            # Continue the rotation from the last scheduled id even when that
            # thread is no longer runnable (blocked/exited).  Restarting at
            # the lowest id instead would starve high-id threads whenever a
            # low-id thread keeps blocking and unblocking.
            chosen = next(
                (t for t in ordered if t.thread_id > self._current_id),
                ordered[0],
            )
        self._current_id = chosen.thread_id
        self._remaining = self.quantum - 1
        return chosen

    def run_length(self, thread: ThreadContext, step: int,
                   max_len: int) -> int:
        # ``choose`` just returned ``thread`` leaving ``_remaining`` steps
        # of its quantum: each of the next ``_remaining`` choices keeps the
        # current thread, so the guaranteed run is ``_remaining + 1`` long
        # (including the step already chosen).  Committing ``length - 1``
        # decisions consumes exactly that much quantum.
        if max_len <= 1:
            return 1
        length = min(max_len, self._remaining + 1)
        self._remaining -= length - 1
        return length

    def reset(self) -> None:
        self._current_id = None
        self._remaining = self.quantum


class RandomScheduler(Scheduler):
    """Uniformly random choice each step, from a reproducible seed."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)
        self._last_n: Optional[int] = None
        self._last_index = 0
        self._pending: Optional[int] = None  # pre-drawn index (run_length)
        self._pending_n = 0

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        n = len(runnable)
        pending = self._pending
        if pending is None:
            index = self._rng.randrange(n)
        else:
            # run_length already drew this decision while scanning ahead;
            # serve it verbatim so the rng stream matches stepwise
            # execution draw for draw.
            self._pending = None
            if self._pending_n != n:
                raise RuntimeError(
                    "run_length no-preempt contract violated: runnable set "
                    "changed size (%d -> %d) under a pending draw"
                    % (self._pending_n, n))
            index = pending
        self._last_n = n
        self._last_index = index
        return runnable[index]

    def run_length(self, thread: ThreadContext, step: int,
                   max_len: int) -> int:
        # Seeded lookahead on the *real* rng: each draw is exactly the
        # draw the next ``choose`` would make (the runnable list — hence
        # its length and the chosen thread's index — is invariant during
        # a fused run), so a matching draw is simply committed.  The
        # first differing draw ends the run and is cached in
        # ``_pending`` for the next ``choose`` to serve verbatim: that
        # next choose is guaranteed to happen with the same runnable set
        # because a diverging lookahead always stops strictly inside the
        # caller's window (length < max_len ≤ limit/sleeper clamps), and
        # fused instructions make no calls, so nothing can finish,
        # spawn, unlock or wake before the draw is consumed.  Note
        # ``randrange(n)`` consumes entropy even for ``n == 1``
        # (rejection sampling), so single-threaded runs must advance the
        # rng draw by draw to stay bit-identical.
        if max_len <= 1 or self._last_n is None:
            return 1
        n = self._last_n
        if n > 3:
            # Expected no-preempt run shrinks as n/(n-1): with four or
            # more runnable threads the lookahead almost always stops at
            # the first draw, so skip it (returning 1 commits nothing —
            # the next choose simply draws for itself).
            return 1
        draw = self._rng.randrange
        if n == 1:
            # Only one runnable thread: every draw picks it; just consume
            # the entropy the skipped ``choose`` calls would have.
            for _ in range(max_len - 1):
                draw(1)
            return max_len
        index = self._last_index
        length = 1
        while length < max_len:
            decision = draw(n)
            if decision != index:
                self._pending = decision
                self._pending_n = n
                break
            length += 1
        return length

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._last_n = None
        self._last_index = 0
        self._pending = None
        self._pending_n = 0


class PCTScheduler(Scheduler):
    """Probabilistic concurrency testing (Burckhardt et al.).

    Each thread gets a random priority; at ``depth - 1`` random step indices
    the running thread's priority drops below all others.  Guarantees a
    lower-bound probability of hitting any bug of depth ``d``.
    """

    def __init__(self, seed: int = 0, depth: int = 3, expected_steps: int = 2000):
        self.seed = seed
        self.depth = depth
        self.expected_steps = expected_steps
        self.reset()

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._priorities = {}
        self._used_priorities: set = set()
        self._next_priority = 1_000_000
        # PCT's probabilistic guarantee needs exactly d-1 *distinct* change
        # points; colliding draws would silently shrink the effective depth.
        # Redraw until distinct, clamped to the population of step indices.
        population = max(1, self.expected_steps)
        target = min(max(0, self.depth - 1), population)
        points: set = set()
        while len(points) < target:
            points.add(self._rng.randrange(population))
        self._change_points = points
        self._low_water = 0

    @property
    def change_points(self) -> frozenset:
        """The d-1 distinct priority-change step indices of this schedule."""
        return frozenset(self._change_points)

    def _priority(self, thread: ThreadContext) -> int:
        if thread.thread_id not in self._priorities:
            # PCT's guarantee also needs *distinct* initial priorities: a
            # colliding draw would leave the tie to runnable-list order.
            # Redraw until distinct (change-point demotions use negative
            # low-water values and can never collide with these draws).
            draw = self._rng.randrange(1, self._next_priority)
            while draw in self._used_priorities:
                draw = self._rng.randrange(1, self._next_priority)
            self._used_priorities.add(draw)
            self._priorities[thread.thread_id] = draw
        return self._priorities[thread.thread_id]

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        chosen = max(runnable, key=self._priority)
        if step in self._change_points:
            self._low_water -= 1
            self._priorities[chosen.thread_id] = self._low_water
            chosen = max(runnable, key=self._priority)
        return chosen

    def run_length(self, thread: ThreadContext, step: int,
                   max_len: int) -> int:
        # Priorities only move at change points, and every runnable thread
        # already has a priority assigned (``choose`` evaluated the whole
        # runnable list at ``step``), so the highest-priority thread keeps
        # winning until the next change point: the guaranteed run is the
        # distance to it.  No state needs committing — the skipped
        # ``choose`` calls would not have mutated anything.
        if max_len <= 1:
            return 1
        length = 1
        change_points = self._change_points
        while length < max_len and (step + length) not in change_points:
            length += 1
        return length


ScriptSegment = Tuple[Union[int, str], int]


class ScriptedScheduler(Scheduler):
    """Follow an explicit schedule script, then fall back to round-robin.

    The script is a sequence of ``(thread, steps)`` segments where ``thread``
    is a thread id or name.  If the scripted thread is not currently runnable
    the scheduler waits on it by running other threads one step at a time
    (lowest id first) — this is how a verifier expresses "let the write side
    reach its breakpoint first".  The wait is *bounded*: a scripted thread
    that stays non-runnable for ``wait_limit`` consecutive choices (it may
    have exited for good) has its segment skipped and recorded in
    :attr:`skipped_segments`, instead of spinning the other threads forever.
    """

    def __init__(self, script: Sequence[ScriptSegment],
                 fallback: Optional[Scheduler] = None,
                 wait_limit: int = 1000):
        if wait_limit <= 0:
            raise ValueError("wait_limit must be positive")
        self.script: List[ScriptSegment] = list(script)
        self.fallback = fallback or RoundRobinScheduler()
        self.wait_limit = wait_limit
        #: ``(segment_index, thread_key, steps_left)`` of segments abandoned
        #: after ``wait_limit`` consecutive waits on a non-runnable thread.
        self.skipped_segments: List[Tuple[int, Union[int, str], int]] = []
        self._segment = 0
        self._remaining = self.script[0][1] if self.script else 0
        self._waited = 0

    def _matches(self, thread: ThreadContext, key: Union[int, str]) -> bool:
        if isinstance(key, int):
            return thread.thread_id == key
        return thread.name == key

    def _advance_segment(self) -> None:
        self._segment += 1
        self._waited = 0
        if self._segment < len(self.script):
            self._remaining = self.script[self._segment][1]

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        while self._segment < len(self.script):
            key, _ = self.script[self._segment]
            if self._remaining <= 0:
                self._advance_segment()
                continue
            target = next((t for t in runnable if self._matches(t, key)), None)
            if target is not None:
                self._waited = 0
                self._remaining -= 1
                return target
            # Scripted thread not runnable: nudge others forward, but only
            # up to wait_limit times — a permanently exited thread must not
            # stall the rest of the script.
            self._waited += 1
            if self._waited >= self.wait_limit:
                self.skipped_segments.append(
                    (self._segment, key, self._remaining))
                self._advance_segment()
                continue
            return min(runnable, key=lambda t: t.thread_id)
        return self.fallback.choose(runnable, step)

    def run_length(self, thread: ThreadContext, step: int,
                   max_len: int) -> int:
        # Scripted schedules express per-instruction ordering for the
        # verifiers; fusion must never skip a scripted decision.
        return 1

    def on_thread_created(self, thread: ThreadContext) -> None:
        # The fallback takes over once the script is exhausted; it must
        # learn about every thread created while the script was running.
        self.fallback.on_thread_created(thread)

    def reset(self) -> None:
        self._segment = 0
        self._remaining = self.script[0][1] if self.script else 0
        self._waited = 0
        self.skipped_segments = []
        self.fallback.reset()


class RecordingScheduler(Scheduler):
    """Wraps another scheduler and records the chosen thread ids.

    Together with :class:`ReplayScheduler` this gives PRES-style
    deterministic record/replay (the paper's reference [60]): because the
    VM is deterministic given the interleaving, replaying the recorded
    choice sequence reproduces the execution exactly — including a
    race-triggering one.
    """

    def __init__(self, inner: Scheduler):
        self.inner = inner
        self.trace: List[int] = []

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        chosen = self.inner.choose(runnable, step)
        self.trace.append(chosen.thread_id)
        return chosen

    def run_length(self, thread: ThreadContext, step: int,
                   max_len: int) -> int:
        # Recording must log one entry per scheduling decision; a fused
        # run would silently drop trace entries.
        return 1

    def on_thread_created(self, thread: ThreadContext) -> None:
        self.inner.on_thread_created(thread)

    def reset(self) -> None:
        self.inner.reset()
        self.trace = []


class ReplayScheduler(Scheduler):
    """Replays a recorded choice sequence; falls back after the trace ends.

    If the recorded thread is not runnable at some step (the execution has
    diverged, e.g. because the program or inputs changed), the scheduler
    counts the divergence and picks the lowest-id runnable thread.
    """

    def __init__(self, trace: Sequence[int], fallback: Optional[Scheduler] = None):
        self.trace = list(trace)
        self.fallback = fallback or RoundRobinScheduler()
        self._cursor = 0
        self.divergences = 0

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        if self._cursor < len(self.trace):
            wanted = self.trace[self._cursor]
            self._cursor += 1
            for thread in runnable:
                if thread.thread_id == wanted:
                    return thread
            self.divergences += 1
            return min(runnable, key=lambda t: t.thread_id)
        return self.fallback.choose(runnable, step)

    def run_length(self, thread: ThreadContext, step: int,
                   max_len: int) -> int:
        # Replay consumes exactly one recorded decision per step; fusing
        # would desynchronize the cursor from the log.
        return 1

    def on_thread_created(self, thread: ThreadContext) -> None:
        # The fallback takes over once the trace is exhausted; it must
        # learn about every thread created while the trace was replaying.
        self.fallback.on_thread_created(thread)

    def reset(self) -> None:
        self._cursor = 0
        self.divergences = 0
        self.fallback.reset()
