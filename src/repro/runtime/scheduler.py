"""Thread schedulers: the interleaving knob.

In the paper, whether a race manifests depends on "runtime effects (e.g.,
hardware timings)".  Here the interleaving is chosen per instruction by a
:class:`Scheduler`.  The implementations:

- :class:`RoundRobinScheduler` — deterministic quantum-based switching; the
  "common case" schedule under which most races stay latent.
- :class:`RandomScheduler` — uniform random choice each step from a seed;
  the workhorse for detector runs and for the race verifier's re-executions.
- :class:`PCTScheduler` — probabilistic concurrency testing (random priorities
  plus d-1 priority-change points), a stronger bug-finding schedule.
- :class:`ScriptedScheduler` — an explicit schedule script; used by the
  dynamic vulnerability verifier to enforce the racing order (paper
  section 6.2 "requires user intervention to decide the execution order of
  the racing instructions") and by the exploit drivers.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple, Union

from repro.runtime.thread import ThreadContext


class Scheduler:
    """Chooses which runnable thread executes the next instruction."""

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        raise NotImplementedError

    def on_thread_created(self, thread: ThreadContext) -> None:
        pass

    def reset(self) -> None:
        pass


class RoundRobinScheduler(Scheduler):
    """Run each thread for ``quantum`` steps before switching."""

    def __init__(self, quantum: int = 50):
        if quantum <= 0:
            raise ValueError("quantum must be positive")
        self.quantum = quantum
        self._current_id: Optional[int] = None
        self._remaining = quantum

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        current = None
        if self._current_id is not None:
            for thread in runnable:
                if thread.thread_id == self._current_id:
                    current = thread
                    break
        if current is not None and self._remaining > 0:
            self._remaining -= 1
            return current
        ordered = sorted(runnable, key=lambda t: t.thread_id)
        if self._current_id is None:
            chosen = ordered[0]
        else:
            # Continue the rotation from the last scheduled id even when that
            # thread is no longer runnable (blocked/exited).  Restarting at
            # the lowest id instead would starve high-id threads whenever a
            # low-id thread keeps blocking and unblocking.
            chosen = next(
                (t for t in ordered if t.thread_id > self._current_id),
                ordered[0],
            )
        self._current_id = chosen.thread_id
        self._remaining = self.quantum - 1
        return chosen

    def reset(self) -> None:
        self._current_id = None
        self._remaining = self.quantum


class RandomScheduler(Scheduler):
    """Uniformly random choice each step, from a reproducible seed."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._rng = random.Random(seed)

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        return runnable[self._rng.randrange(len(runnable))]

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class PCTScheduler(Scheduler):
    """Probabilistic concurrency testing (Burckhardt et al.).

    Each thread gets a random priority; at ``depth - 1`` random step indices
    the running thread's priority drops below all others.  Guarantees a
    lower-bound probability of hitting any bug of depth ``d``.
    """

    def __init__(self, seed: int = 0, depth: int = 3, expected_steps: int = 2000):
        self.seed = seed
        self.depth = depth
        self.expected_steps = expected_steps
        self.reset()

    def reset(self) -> None:
        self._rng = random.Random(self.seed)
        self._priorities = {}
        self._used_priorities: set = set()
        self._next_priority = 1_000_000
        # PCT's probabilistic guarantee needs exactly d-1 *distinct* change
        # points; colliding draws would silently shrink the effective depth.
        # Redraw until distinct, clamped to the population of step indices.
        population = max(1, self.expected_steps)
        target = min(max(0, self.depth - 1), population)
        points: set = set()
        while len(points) < target:
            points.add(self._rng.randrange(population))
        self._change_points = points
        self._low_water = 0

    @property
    def change_points(self) -> frozenset:
        """The d-1 distinct priority-change step indices of this schedule."""
        return frozenset(self._change_points)

    def _priority(self, thread: ThreadContext) -> int:
        if thread.thread_id not in self._priorities:
            # PCT's guarantee also needs *distinct* initial priorities: a
            # colliding draw would leave the tie to runnable-list order.
            # Redraw until distinct (change-point demotions use negative
            # low-water values and can never collide with these draws).
            draw = self._rng.randrange(1, self._next_priority)
            while draw in self._used_priorities:
                draw = self._rng.randrange(1, self._next_priority)
            self._used_priorities.add(draw)
            self._priorities[thread.thread_id] = draw
        return self._priorities[thread.thread_id]

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        chosen = max(runnable, key=self._priority)
        if step in self._change_points:
            self._low_water -= 1
            self._priorities[chosen.thread_id] = self._low_water
            chosen = max(runnable, key=self._priority)
        return chosen


ScriptSegment = Tuple[Union[int, str], int]


class ScriptedScheduler(Scheduler):
    """Follow an explicit schedule script, then fall back to round-robin.

    The script is a sequence of ``(thread, steps)`` segments where ``thread``
    is a thread id or name.  If the scripted thread is not currently runnable
    the scheduler waits on it by running other threads one step at a time
    (lowest id first) — this is how a verifier expresses "let the write side
    reach its breakpoint first".  The wait is *bounded*: a scripted thread
    that stays non-runnable for ``wait_limit`` consecutive choices (it may
    have exited for good) has its segment skipped and recorded in
    :attr:`skipped_segments`, instead of spinning the other threads forever.
    """

    def __init__(self, script: Sequence[ScriptSegment],
                 fallback: Optional[Scheduler] = None,
                 wait_limit: int = 1000):
        if wait_limit <= 0:
            raise ValueError("wait_limit must be positive")
        self.script: List[ScriptSegment] = list(script)
        self.fallback = fallback or RoundRobinScheduler()
        self.wait_limit = wait_limit
        #: ``(segment_index, thread_key, steps_left)`` of segments abandoned
        #: after ``wait_limit`` consecutive waits on a non-runnable thread.
        self.skipped_segments: List[Tuple[int, Union[int, str], int]] = []
        self._segment = 0
        self._remaining = self.script[0][1] if self.script else 0
        self._waited = 0

    def _matches(self, thread: ThreadContext, key: Union[int, str]) -> bool:
        if isinstance(key, int):
            return thread.thread_id == key
        return thread.name == key

    def _advance_segment(self) -> None:
        self._segment += 1
        self._waited = 0
        if self._segment < len(self.script):
            self._remaining = self.script[self._segment][1]

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        while self._segment < len(self.script):
            key, _ = self.script[self._segment]
            if self._remaining <= 0:
                self._advance_segment()
                continue
            target = next((t for t in runnable if self._matches(t, key)), None)
            if target is not None:
                self._waited = 0
                self._remaining -= 1
                return target
            # Scripted thread not runnable: nudge others forward, but only
            # up to wait_limit times — a permanently exited thread must not
            # stall the rest of the script.
            self._waited += 1
            if self._waited >= self.wait_limit:
                self.skipped_segments.append(
                    (self._segment, key, self._remaining))
                self._advance_segment()
                continue
            return min(runnable, key=lambda t: t.thread_id)
        return self.fallback.choose(runnable, step)

    def on_thread_created(self, thread: ThreadContext) -> None:
        # The fallback takes over once the script is exhausted; it must
        # learn about every thread created while the script was running.
        self.fallback.on_thread_created(thread)

    def reset(self) -> None:
        self._segment = 0
        self._remaining = self.script[0][1] if self.script else 0
        self._waited = 0
        self.skipped_segments = []
        self.fallback.reset()


class RecordingScheduler(Scheduler):
    """Wraps another scheduler and records the chosen thread ids.

    Together with :class:`ReplayScheduler` this gives PRES-style
    deterministic record/replay (the paper's reference [60]): because the
    VM is deterministic given the interleaving, replaying the recorded
    choice sequence reproduces the execution exactly — including a
    race-triggering one.
    """

    def __init__(self, inner: Scheduler):
        self.inner = inner
        self.trace: List[int] = []

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        chosen = self.inner.choose(runnable, step)
        self.trace.append(chosen.thread_id)
        return chosen

    def on_thread_created(self, thread: ThreadContext) -> None:
        self.inner.on_thread_created(thread)

    def reset(self) -> None:
        self.inner.reset()
        self.trace = []


class ReplayScheduler(Scheduler):
    """Replays a recorded choice sequence; falls back after the trace ends.

    If the recorded thread is not runnable at some step (the execution has
    diverged, e.g. because the program or inputs changed), the scheduler
    counts the divergence and picks the lowest-id runnable thread.
    """

    def __init__(self, trace: Sequence[int], fallback: Optional[Scheduler] = None):
        self.trace = list(trace)
        self.fallback = fallback or RoundRobinScheduler()
        self._cursor = 0
        self.divergences = 0

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        if self._cursor < len(self.trace):
            wanted = self.trace[self._cursor]
            self._cursor += 1
            for thread in runnable:
                if thread.thread_id == wanted:
                    return thread
            self.divergences += 1
            return min(runnable, key=lambda t: t.thread_id)
        return self.fallback.choose(runnable, step)

    def on_thread_created(self, thread: ThreadContext) -> None:
        # The fallback takes over once the trace is exhausted; it must
        # learn about every thread created while the trace was replaying.
        self.fallback.on_thread_created(thread)

    def reset(self) -> None:
        self._cursor = 0
        self.divergences = 0
        self.fallback.reset()
