"""A miniature operating-system model behind the security-sensitive externals.

The paper's attack consequences are judged against OS state: a root shell
means ``execve`` ran with effective uid 0 (the Linux uselib escalation), an
HTML integrity violation means log bytes landed in another user's file
(Apache bug 25520), an authentication bypass means a privileged operation ran
without the check.  :class:`OSWorld` tracks exactly that state so exploit
drivers and the dynamic vulnerability verifier can evaluate attack
predicates on it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple


class FileObject:
    """An open file: descriptor content accumulates on write."""

    def __init__(self, path: str, descriptor: int):
        self.path = path
        self.descriptor = descriptor
        self.content = bytearray()

    def __repr__(self) -> str:
        return "<File fd=%d %s (%d bytes)>" % (
            self.descriptor, self.path, len(self.content),
        )


class ExecRecord:
    """One process-forking operation (execve / system / eval / fork)."""

    def __init__(self, kind: str, command: str, uid: int, euid: int, step: int):
        self.kind = kind
        self.command = command
        self.uid = uid
        self.euid = euid
        self.step = step

    @property
    def as_root(self) -> bool:
        return self.euid == 0

    def __repr__(self) -> str:
        return "<Exec %s %r uid=%d euid=%d>" % (
            self.kind, self.command, self.uid, self.euid,
        )


class PrivilegeRecord:
    """One privilege-changing operation (setuid / commit_creds / ...)."""

    def __init__(self, kind: str, target: int, step: int):
        self.kind = kind
        self.target = target
        self.step = step

    def __repr__(self) -> str:
        return "<Priv %s -> %d>" % (self.kind, self.target)


class OSWorld:
    """Process-visible OS state: credentials, files, fork/exec history."""

    def __init__(self, uid: int = 1000, euid: int = 1000):
        self.uid = uid
        self.euid = euid
        self.files_by_path: Dict[str, FileObject] = {}
        self.files_by_fd: Dict[int, FileObject] = {}
        self._next_fd = 3
        self.exec_log: List[ExecRecord] = []
        self.privilege_log: List[PrivilegeRecord] = []
        self.file_access_log: List[Tuple[str, str, int]] = []  # (op, path, step)
        self.stdout = bytearray()
        self.exit_code: Optional[int] = None
        self.process_killed = False

    # ------------------------------------------------------------------
    # credentials

    def set_uid(self, kind: str, target: int, step: int) -> None:
        self.privilege_log.append(PrivilegeRecord(kind, target, step))
        if kind in ("setuid", "commit_creds"):
            self.uid = target
            self.euid = target
        elif kind == "seteuid":
            self.euid = target

    # ------------------------------------------------------------------
    # files

    def open_file(self, path: str, step: int) -> int:
        self.file_access_log.append(("open", path, step))
        existing = self.files_by_path.get(path)
        if existing is not None:
            return existing.descriptor
        file_object = FileObject(path, self._next_fd)
        self._next_fd += 1
        self.files_by_path[path] = file_object
        self.files_by_fd[file_object.descriptor] = file_object
        return file_object.descriptor

    def write_fd(self, descriptor: int, data: bytes, step: int) -> int:
        file_object = self.files_by_fd.get(descriptor)
        if file_object is None:
            return -1
        file_object.content.extend(data)
        self.file_access_log.append(("write", file_object.path, step))
        return len(data)

    def file_content(self, path: str) -> bytes:
        file_object = self.files_by_path.get(path)
        return bytes(file_object.content) if file_object is not None else b""

    # ------------------------------------------------------------------
    # fork/exec

    def record_exec(self, kind: str, command: str, step: int) -> None:
        self.exec_log.append(ExecRecord(kind, command, self.uid, self.euid, step))

    # ------------------------------------------------------------------
    # attack predicates

    def got_root_shell(self) -> bool:
        """Whether any fork/exec ran with effective uid 0."""
        return any(record.as_root for record in self.exec_log)

    def executed(self, command_fragment: str) -> bool:
        return any(command_fragment in record.command for record in self.exec_log)

    def __repr__(self) -> str:
        return "<OSWorld uid=%d euid=%d files=%d execs=%d>" % (
            self.uid, self.euid, len(self.files_by_path), len(self.exec_log),
        )
