"""Record/replay execution backbone (PRES-style, the paper's reference [60]).

The VM is deterministic given the module, the workload inputs, the VM seed
and the per-step schedule decisions — so one *recorded* execution can be
re-executed later, bit-identically, with any :class:`TraceObserver` (a
TSan/SKI detector, the audit monitor, the differential-oracle recorder)
attached.  That is the non-intrusive detection story of Ronsse & De
Bosschere: record once near reference speed, analyze offline as often as
needed.

A recording is a :class:`ScheduleLog` — a compact, versioned event log:

- a **header** carrying the record schema, program name, IR digest
  (:func:`repro.owl.cache.module_digest` of the module the run executed),
  VM seed, scheduler label, entry point/arguments, step budget and the
  observed steps/reason — everything replay needs to refuse a mismatched
  module *loudly* instead of drifting silently;
- the **schedule decisions**, run-length encoded as ``(thread_id, count)``
  quanta (a RandomScheduler switches threads nearly every step, so the
  pairs are further packed varint+zlib+base64 — a few hundred bytes per
  seed against multi-KB detect cache payloads);
- the **sync-acquisition order** (step, thread, address of every lock/
  flag acquire) and the **thread spawn/join points**, used as replay
  checkpoints: a replay that acquires a different lock order or spawns a
  different thread tree is counted divergent even if its schedule happened
  to stay applicable.

Logs round-trip through JSON payloads (for the batch workers and the
content-addressed result cache) and through a JSON-lines file format (for
``owl record`` / ``owl replay``).  The replay invariant, enforced by
:func:`replay_log` and guarded end-to-end by the diffcheck oracle
(``tools/replay_fidelity.py``): **a log replayed on the same IR digest is
bit-identical or loudly divergent** — never silently different.
"""

from __future__ import annotations

import base64
import json
import os
import time
import zlib
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime.events import (
    SyncEvent,
    ThreadLifecycleEvent,
    TraceObserver,
)
from repro.runtime.interpreter import VM, ExecutionResult
from repro.runtime.scheduler import (
    RandomScheduler,
    ReplayScheduler,
    Scheduler,
)
from repro.runtime.thread import ThreadContext

RECORD_SCHEMA = 1

#: thread-lifecycle kinds that act as replay checkpoints, with their packed
#: integer codes (spawn/join points; START/EXIT are derivable from these)
_THREAD_KIND_CODES = {
    ThreadLifecycleEvent.CREATE: 0,
    ThreadLifecycleEvent.JOIN: 1,
}
_THREAD_KIND_NAMES = {code: kind for kind, code in _THREAD_KIND_CODES.items()}


def module_ir_digest(module) -> str:
    """The module digest replay validates against (same as the cache's)."""
    from repro.owl.cache import module_digest

    return module_digest(module)


# ---------------------------------------------------------------------------
# compact integer packing: varint byte stream -> zlib -> base64 text


def _pack_ints(values: Sequence[int]) -> str:
    """Pack non-negative ints as a base64(zlib(varint)) string."""
    buffer = bytearray()
    for value in values:
        if value < 0:
            raise ValueError("cannot pack negative value %d" % value)
        while True:
            byte = value & 0x7F
            value >>= 7
            buffer.append(byte | (0x80 if value else 0))
            if not value:
                break
    return base64.b64encode(zlib.compress(bytes(buffer), 9)).decode("ascii")


def _unpack_ints(text: str) -> List[int]:
    """Inverse of :func:`_pack_ints`."""
    data = zlib.decompress(base64.b64decode(text.encode("ascii")))
    values: List[int] = []
    value = 0
    shift = 0
    for byte in data:
        value |= (byte & 0x7F) << shift
        if byte & 0x80:
            shift += 7
        else:
            values.append(value)
            value = 0
            shift = 0
    if shift:
        raise ValueError("truncated varint stream")
    return values


def _pack_tuples(tuples: Sequence[Tuple[int, ...]], width: int) -> str:
    flat: List[int] = []
    for item in tuples:
        if len(item) != width:
            raise ValueError("expected %d-tuples, got %r" % (width, item))
        flat.extend(item)
    return _pack_ints(flat)


def _unpack_tuples(text: str, width: int) -> List[Tuple[int, ...]]:
    flat = _unpack_ints(text)
    if len(flat) % width:
        raise ValueError("packed stream is not a multiple of %d" % width)
    return [tuple(flat[i:i + width]) for i in range(0, len(flat), width)]


# ---------------------------------------------------------------------------
# the log


class ScheduleLog:
    """One recorded execution: schedule quanta, sync order, thread tree."""

    def __init__(
        self,
        program: str,
        ir_digest: str,
        seed: int,
        schedule: Sequence[Tuple[int, int]],
        syncs: Sequence[Tuple[int, int, int]] = (),
        threads: Sequence[Tuple[int, int, int, int]] = (),
        scheduler: str = "random",
        entry: str = "main",
        entry_args: Sequence[int] = (),
        max_steps: int = 200_000,
        steps: int = 0,
        reason: str = "",
        schema: int = RECORD_SCHEMA,
    ):
        self.schema = schema
        self.program = program
        self.ir_digest = ir_digest
        self.seed = seed
        self.scheduler = scheduler
        self.entry = entry
        self.entry_args = tuple(entry_args)
        self.max_steps = max_steps
        self.steps = steps
        self.reason = reason
        #: run-length-encoded schedule decisions: ``(thread_id, count)``
        self.schedule: List[Tuple[int, int]] = [
            (int(tid), int(count)) for tid, count in schedule
        ]
        #: sync-acquisition order: ``(step, thread_id, address)``
        self.syncs: List[Tuple[int, int, int]] = [
            tuple(int(v) for v in item) for item in syncs
        ]
        #: spawn/join points: ``(step, kind_code, thread_id, other_id)``
        self.threads: List[Tuple[int, int, int, int]] = [
            tuple(int(v) for v in item) for item in threads
        ]

    @property
    def decisions(self) -> int:
        """Total schedule decisions recorded (sum of quantum lengths)."""
        return sum(count for _tid, count in self.schedule)

    def expand_schedule(self) -> List[int]:
        """The flat per-step thread-id trace a ReplayScheduler consumes."""
        trace: List[int] = []
        for tid, count in self.schedule:
            trace.extend([tid] * count)
        return trace

    # ------------------------------------------------------------------
    # payload round-trip (batch workers + result cache)

    def to_payload(self) -> Dict:
        return {
            "schema": self.schema,
            "program": self.program,
            "ir_digest": self.ir_digest,
            "seed": self.seed,
            "scheduler": self.scheduler,
            "entry": self.entry,
            "entry_args": list(self.entry_args),
            "max_steps": self.max_steps,
            "steps": self.steps,
            "decisions": self.decisions,
            "reason": self.reason,
            "schedule": _pack_tuples(self.schedule, 2),
            "syncs": _pack_tuples(self.syncs, 3),
            "threads": _pack_tuples(self.threads, 4),
        }

    @classmethod
    def from_payload(cls, payload: Dict) -> "ScheduleLog":
        schema = payload.get("schema")
        if schema != RECORD_SCHEMA:
            raise ValueError(
                "schedule log declares unsupported record schema %r "
                "(supported: %d)" % (schema, RECORD_SCHEMA))
        return cls(
            program=payload["program"],
            ir_digest=payload["ir_digest"],
            seed=int(payload["seed"]),
            schedule=_unpack_tuples(payload["schedule"], 2),
            syncs=_unpack_tuples(payload["syncs"], 3),
            threads=_unpack_tuples(payload["threads"], 4),
            scheduler=payload.get("scheduler") or "random",
            entry=payload.get("entry") or "main",
            entry_args=tuple(payload.get("entry_args") or ()),
            max_steps=int(payload.get("max_steps") or 0),
            steps=int(payload.get("steps") or 0),
            reason=payload.get("reason") or "",
            schema=schema,
        )

    # ------------------------------------------------------------------
    # JSON-lines file round-trip (owl record / owl replay)

    def save(self, path: str) -> None:
        """Write the log as JSON lines: one header line, one per section."""
        payload = self.to_payload()
        sections = {key: payload.pop(key)
                    for key in ("schedule", "syncs", "threads")}
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            header = {"kind": "header"}
            header.update(payload)
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for name in ("schedule", "syncs", "threads"):
                handle.write(json.dumps(
                    {"kind": name, "data": sections[name]}) + "\n")

    @classmethod
    def load(cls, path: str) -> "ScheduleLog":
        payload: Dict = {}
        with open(path) as handle:
            for number, line in enumerate(handle, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    raise ValueError(
                        "schedule log %s: corrupt record on line %d"
                        % (path, number))
                kind = record.pop("kind", None)
                if kind == "header":
                    payload.update(record)
                elif kind in ("schedule", "syncs", "threads"):
                    payload[kind] = record["data"]
        for required in ("schedule", "syncs", "threads"):
            if required not in payload:
                raise ValueError(
                    "schedule log %s has no %s section" % (path, required))
        return cls.from_payload(payload)

    def __repr__(self) -> str:
        return ("<ScheduleLog %s seed=%d ir=%s quanta=%d decisions=%d "
                "syncs=%d threads=%d>") % (
            self.program, self.seed, self.ir_digest, len(self.schedule),
            self.decisions, len(self.syncs), len(self.threads),
        )


# ---------------------------------------------------------------------------
# recording


class ScheduleRecorder(Scheduler, TraceObserver):
    """Records a run into :class:`ScheduleLog` raw material.

    Both a scheduler wrapper (delegating every decision unchanged while
    run-length encoding the chosen thread ids — the
    :class:`repro.runtime.coverage.SwitchTracker` idiom) and a trace
    observer (collecting the sync-acquisition order and the thread
    spawn/join points).  Attach the same instance as the VM's scheduler
    *and* as an observer.
    """

    def __init__(self, inner: Scheduler):
        self.inner = inner
        #: run-length-encoded decisions, built incrementally
        self.schedule: List[List[int]] = []
        self.syncs: List[Tuple[int, int, int]] = []
        self.threads: List[Tuple[int, int, int, int]] = []

    # -- scheduler side

    def choose(self, runnable: List[ThreadContext], step: int) -> ThreadContext:
        chosen = self.inner.choose(runnable, step)
        if self.schedule and self.schedule[-1][0] == chosen.thread_id:
            self.schedule[-1][1] += 1
        else:
            self.schedule.append([chosen.thread_id, 1])
        return chosen

    def on_thread_created(self, thread: ThreadContext) -> None:
        self.inner.on_thread_created(thread)

    def reset(self) -> None:
        self.inner.reset()
        self.schedule = []
        self.syncs = []
        self.threads = []

    # -- observer side

    def on_sync(self, event: SyncEvent) -> None:
        if event.kind == SyncEvent.ACQUIRE:
            self.syncs.append((event.step, event.thread_id, event.address))

    def on_thread(self, event: ThreadLifecycleEvent) -> None:
        code = _THREAD_KIND_CODES.get(event.kind)
        if code is not None:
            self.threads.append(
                (event.step, code, event.thread_id, event.other_thread_id))

    # -- assembly

    def to_log(
        self,
        module,
        seed: int,
        program: Optional[str] = None,
        entry: str = "main",
        entry_args: Sequence[int] = (),
        max_steps: int = 200_000,
        result: Optional[ExecutionResult] = None,
        scheduler_label: Optional[str] = None,
    ) -> ScheduleLog:
        return ScheduleLog(
            program=program or module.name,
            ir_digest=module_ir_digest(module),
            seed=seed,
            schedule=[tuple(pair) for pair in self.schedule],
            syncs=list(self.syncs),
            threads=list(self.threads),
            scheduler=scheduler_label or type(self.inner).__name__,
            entry=entry,
            entry_args=entry_args,
            max_steps=max_steps,
            steps=result.steps if result is not None else 0,
            reason=result.reason if result is not None else "",
        )


def record_seed(
    module,
    seed: int,
    entry: str = "main",
    inputs: Optional[Dict] = None,
    entry_args: Sequence[int] = (),
    max_steps: int = 200_000,
    scheduler: Optional[Scheduler] = None,
    scheduler_label: Optional[str] = None,
    world=None,
    program: Optional[str] = None,
    fingerprint: bool = False,
    observers: Sequence[TraceObserver] = (),
    fuse=False,
):
    """Execute once and record it; ``(log, result, fingerprint_or_None)``.

    No detector attaches by default, so recording runs near reference
    speed; pass ``observers`` to analyze on the fly anyway.  With
    ``fingerprint=True`` a :class:`repro.runtime.diffcheck.TraceRecorder`
    rides along and the returned fingerprint (mode ``"recorded"``) is
    directly comparable against :func:`replay_log`'s.

    ``fuse`` is accepted so sweeps that fuse elsewhere can pass their
    engine through uniformly, but it is inert here by design:
    :class:`ScheduleRecorder` keeps the base ``run_length`` of 1 (a fused
    run would silently drop per-decision log entries), so the recorded
    log and fingerprint are bit-identical with or without it — the
    diff-oracle's ``--fuse`` mode asserts exactly that.
    """
    recorder = ScheduleRecorder(scheduler or RandomScheduler(seed))
    vm = VM(module, scheduler=recorder, world=world, inputs=inputs,
            max_steps=max_steps, seed=seed, fuse=fuse)
    vm.add_observer(recorder)
    for observer in observers:
        vm.add_observer(observer)
    trace = None
    if fingerprint:
        from repro.runtime.diffcheck import TraceRecorder

        trace = TraceRecorder()
        vm.add_observer(trace)
    started = time.perf_counter()
    vm.start(entry, entry_args)
    result = vm.run()
    wall = time.perf_counter() - started
    log = recorder.to_log(
        module, seed, program=program, entry=entry, entry_args=entry_args,
        max_steps=max_steps, result=result, scheduler_label=scheduler_label,
    )
    recorded_fingerprint = None
    if fingerprint:
        recorded_fingerprint = _fingerprint(
            log.program, seed, "recorded", trace, vm, result, wall)
    return log, result, recorded_fingerprint


def _fingerprint(program: str, seed: int, mode: str, trace, vm,
                 result: ExecutionResult, wall: float):
    from repro.runtime.diffcheck import ExecutionFingerprint, _normalize_fault

    return ExecutionFingerprint(
        program=program,
        seed=seed,
        mode=mode,
        events=trace.records,
        faults=[_normalize_fault(fault) for fault in vm.faults],
        recorded_faults=[_normalize_fault(fault)
                         for fault in vm.memory.recorded_faults],
        reason=result.reason,
        steps=result.steps,
        exit_code=result.exit_code,
        wall_seconds=wall,
    )


# ---------------------------------------------------------------------------
# replay


class ReplayMismatch(RuntimeError):
    """The log cannot apply to this module (IR digest or schema mismatch)."""


class _ReplayVerifier(TraceObserver):
    """Checks the replay against the recorded sync/thread checkpoints.

    Every acquire and every spawn/join point must re-occur at the recorded
    step, on the recorded thread, against the recorded address/peer — in
    the recorded order.  Any deviation (including missing or extra events)
    is counted, making divergence loud even when the replayed schedule
    happened to remain applicable.
    """

    def __init__(self, log: ScheduleLog):
        self._syncs = log.syncs
        self._threads = log.threads
        self._sync_cursor = 0
        self._thread_cursor = 0
        self.sync_divergences = 0
        self.thread_divergences = 0

    def on_sync(self, event: SyncEvent) -> None:
        if event.kind != SyncEvent.ACQUIRE:
            return
        cursor = self._sync_cursor
        self._sync_cursor += 1
        observed = (event.step, event.thread_id, event.address)
        if cursor >= len(self._syncs) or self._syncs[cursor] != observed:
            self.sync_divergences += 1

    def on_thread(self, event: ThreadLifecycleEvent) -> None:
        code = _THREAD_KIND_CODES.get(event.kind)
        if code is None:
            return
        cursor = self._thread_cursor
        self._thread_cursor += 1
        observed = (event.step, code, event.thread_id, event.other_thread_id)
        if cursor >= len(self._threads) or self._threads[cursor] != observed:
            self.thread_divergences += 1

    def finalize(self) -> None:
        """Recorded checkpoints the replay never reached are divergences."""
        self.sync_divergences += max(0, len(self._syncs) - self._sync_cursor)
        self.thread_divergences += max(
            0, len(self._threads) - self._thread_cursor)


class ReplayResult:
    """Outcome of replaying one :class:`ScheduleLog`."""

    def __init__(self, log: ScheduleLog, result: ExecutionResult,
                 schedule_divergences: int, sync_divergences: int,
                 thread_divergences: int, digest_match: bool,
                 fingerprint=None, wall_seconds: float = 0.0):
        self.log = log
        self.result = result
        self.schedule_divergences = schedule_divergences
        self.sync_divergences = sync_divergences
        self.thread_divergences = thread_divergences
        self.digest_match = digest_match
        self.fingerprint = fingerprint
        self.wall_seconds = wall_seconds

    @property
    def steps_match(self) -> bool:
        return self.result.steps == self.log.steps

    @property
    def reason_match(self) -> bool:
        return self.result.reason == self.log.reason

    @property
    def total_divergences(self) -> int:
        return (self.schedule_divergences + self.sync_divergences
                + self.thread_divergences
                + (0 if self.steps_match else 1)
                + (0 if self.reason_match else 1))

    @property
    def faithful(self) -> bool:
        """The replay invariant held: same digest, zero divergence."""
        return self.digest_match and self.total_divergences == 0

    def as_dict(self) -> Dict:
        return {
            "program": self.log.program,
            "seed": self.log.seed,
            "steps": self.result.steps,
            "recorded_steps": self.log.steps,
            "reason": self.result.reason,
            "digest_match": self.digest_match,
            "schedule_divergences": self.schedule_divergences,
            "sync_divergences": self.sync_divergences,
            "thread_divergences": self.thread_divergences,
            "faithful": self.faithful,
        }

    def __repr__(self) -> str:
        return "<ReplayResult %s seed=%d %s>" % (
            self.log.program, self.log.seed,
            "faithful" if self.faithful else
            "%d divergences" % self.total_divergences,
        )


def replay_log(
    module,
    log: ScheduleLog,
    observers: Sequence[TraceObserver] = (),
    inputs: Optional[Dict] = None,
    world=None,
    strict: bool = True,
    fingerprint: bool = False,
    scheduler_wrapper=None,
    fuse=False,
) -> ReplayResult:
    """Deterministically re-execute a recorded run, observers attached.

    The VM is reconstructed from the log's header (seed, entry, entry
    arguments, step budget) and driven by a :class:`ReplayScheduler` over
    the expanded schedule; ``inputs``/``world`` must match the recording
    (they are the caller's workload, not part of the log — the IR digest
    plus the divergence counters catch a mismatch loudly).  With
    ``strict=True`` (the default) a log recorded against a different
    module digest raises :class:`ReplayMismatch` instead of replaying.
    With ``fingerprint=True`` the result carries an
    :class:`~repro.runtime.diffcheck.ExecutionFingerprint` (mode
    ``"replayed"``) comparable against the recording's.
    ``scheduler_wrapper``, when given, wraps the internal
    :class:`ReplayScheduler` with a pure-delegation observer of the
    decision stream (the predictive detector's decision-index tracker);
    the wrapper must delegate every decision unchanged.  ``fuse`` is
    accepted for uniformity with live sweeps and is inert:
    :class:`~repro.runtime.scheduler.ReplayScheduler` forces
    ``run_length`` to 1 (fusing would desynchronize the log cursor), so
    replayed fingerprints are bit-identical with or without it.
    """
    digest = module_ir_digest(module)
    digest_match = digest == log.ir_digest
    if strict and not digest_match:
        raise ReplayMismatch(
            "log for %s was recorded against IR digest %s, module has %s"
            % (log.program, log.ir_digest, digest))
    replay_scheduler = ReplayScheduler(log.expand_schedule())
    scheduler = (scheduler_wrapper(replay_scheduler)
                 if scheduler_wrapper is not None else replay_scheduler)
    verifier = _ReplayVerifier(log)
    vm = VM(module, scheduler=scheduler, world=world, inputs=inputs,
            max_steps=log.max_steps or 200_000, seed=log.seed, fuse=fuse)
    vm.add_observer(verifier)
    for observer in observers:
        vm.add_observer(observer)
    trace = None
    if fingerprint:
        from repro.runtime.diffcheck import TraceRecorder

        trace = TraceRecorder()
        vm.add_observer(trace)
    started = time.perf_counter()
    vm.start(log.entry, log.entry_args)
    result = vm.run()
    wall = time.perf_counter() - started
    verifier.finalize()
    replay_fingerprint = None
    if fingerprint:
        replay_fingerprint = _fingerprint(
            log.program, log.seed, "replayed", trace, vm, result, wall)
    return ReplayResult(
        log=log,
        result=result,
        schedule_divergences=replay_scheduler.divergences,
        sync_divergences=verifier.sync_divergences,
        thread_divergences=verifier.thread_divergences,
        digest_match=digest_match,
        fingerprint=replay_fingerprint,
        wall_seconds=wall,
    )
