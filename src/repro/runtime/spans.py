"""Hierarchical span tracing for the OWL pipeline.

Where :mod:`repro.runtime.metrics` answers "how much work did each stage
do?", spans answer "where did this particular run spend its time, and on
what?".  A :class:`SpanTracer` records a tree of timed spans — the pipeline
root, one span per stage, one per VM execution (detector seeds, race-verifier
attempts, vulnerability re-runs), one per Algorithm-1 propagation frame — and
exports the tree two ways:

- **JSON lines** (:meth:`SpanTracer.to_jsonl`): one object per span, with
  ``id``/``parent`` links, microsecond timestamps relative to the trace
  origin, and the span's attributes — easy to grep and diff;
- **Chrome ``trace_event`` format** (:meth:`SpanTracer.chrome_trace`):
  ``B``/``E`` duration events that load directly in ``chrome://tracing`` or
  Perfetto.

Worker processes (see :mod:`repro.owl.batch`) cannot share a tracer with the
parent, so each worker records into its own tracer and ships the result back
as a plain payload (:meth:`SpanTracer.export_payload`); the parent re-parents
those spans under its current span with :meth:`SpanTracer.adopt` — always in
seed/report order, never completion order — so the span *tree* is identical
no matter how many jobs ran it.  Adopted groups get their own Chrome track
(``tid``), which keeps ``B``/``E`` nesting well-formed even though worker
spans overlap in time.

**Determinism and parity invariants**:

1. *Structure over timing* — span names, nesting and per-item order are
   deterministic at any job count (:meth:`SpanTracer.structure` is the
   comparison helper); timestamps and durations are observations and vary
   between any two runs.
2. *Adoption order* — worker payloads are adopted in seed/report/
   vulnerability index order, so the tree never depends on which worker
   finished first.
3. *Spans are never cached* — a result-cache hit (:mod:`repro.owl.cache`)
   replays a stage's *result*, not its execution, so the batch layer strips
   spans before storing and emits one ``cached=True`` marker span per hit
   instead of replaying the original execution's timings.  A warm-cache
   trace therefore truthfully shows where *this* run spent its time.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple


class Span:
    """One timed, attributed node in the trace tree."""

    __slots__ = ("name", "sid", "parent", "track", "start", "end", "attrs")

    def __init__(self, name: str, sid: int, parent: Optional[int] = None,
                 track: int = 0, start: float = 0.0,
                 end: Optional[float] = None,
                 attrs: Optional[Dict] = None):
        self.name = name
        self.sid = sid
        self.parent = parent
        self.track = track
        self.start = start
        self.end = end
        self.attrs = attrs if attrs is not None else {}

    @property
    def duration(self) -> float:
        """Span length in seconds (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def __repr__(self) -> str:
        return "<Span %s #%d %.6fs>" % (self.name, self.sid, self.duration)


class SpanTracer:
    """Records spans; parents come from the active context-manager stack."""

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self.origin = clock()
        self.spans: List[Span] = []
        self._stack: List[Span] = []
        self._next_id = 1
        self._next_track = 1

    # ------------------------------------------------------------------
    # recording

    @property
    def current(self) -> Optional[Span]:
        return self._stack[-1] if self._stack else None

    def begin(self, name: str, **attrs) -> Span:
        parent = self._stack[-1].sid if self._stack else None
        span = Span(name, self._next_id, parent=parent,
                    start=self._clock(), attrs=dict(attrs))
        self._next_id += 1
        self.spans.append(span)
        self._stack.append(span)
        return span

    def finish(self, span: Span, **attrs) -> Span:
        span.attrs.update(attrs)
        span.end = self._clock()
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order finishes
            self._stack.remove(span)
        return span

    @contextmanager
    def span(self, name: str, **attrs):
        span = self.begin(name, **attrs)
        try:
            yield span
        finally:
            self.finish(span)

    def instant(self, name: str, **attrs) -> Span:
        """A zero-duration marker under the current span."""
        span = self.begin(name, **attrs)
        self.finish(span)
        span.end = span.start
        return span

    # ------------------------------------------------------------------
    # worker round-trip

    def export_payload(self) -> List[Dict]:
        """All spans as plain dicts, times relative to this trace's origin.

        The picklable boundary format of :mod:`repro.owl.batch` workers.
        """
        return [
            {
                "name": span.name,
                "id": span.sid,
                "parent": span.parent,
                "start": span.start - self.origin,
                "end": (span.end if span.end is not None else span.start)
                       - self.origin,
                "attrs": span.attrs,
            }
            for span in self.spans
        ]

    def adopt(self, payload: Sequence[Dict], parent: Optional[Span] = None,
              track: Optional[int] = None) -> List[Span]:
        """Graft a worker's exported spans under ``parent`` (default: the
        current span).

        Ids are remapped into this tracer's sequence, times are shifted so
        the group begins at the parent's start (durations are preserved; the
        worker's clock domain is meaningless here), and the whole group lands
        on a fresh Chrome track so its B/E events nest independently.
        Callers must adopt in deterministic (seed/report) order — that is
        what keeps the tree identical across job counts.
        """
        if not payload:
            return []
        if parent is None:
            parent = self.current
        if track is None:
            track = self._next_track
            self._next_track += 1
        id_map: Dict[int, int] = {}
        for item in payload:
            id_map[item["id"]] = self._next_id
            self._next_id += 1
        base = parent.start if parent is not None else self.origin
        floor = min(item["start"] for item in payload)
        adopted: List[Span] = []
        for item in payload:
            raw_parent = item["parent"]
            span = Span(
                item["name"], id_map[item["id"]],
                parent=(
                    id_map[raw_parent] if raw_parent in id_map
                    else (parent.sid if parent is not None else None)
                ),
                track=track,
                start=base + (item["start"] - floor),
                end=base + (item["end"] - floor),
                attrs=dict(item["attrs"]),
            )
            self.spans.append(span)
            adopted.append(span)
        return adopted

    # ------------------------------------------------------------------
    # queries

    def __len__(self) -> int:
        return len(self.spans)

    def publish(self, registry) -> None:
        """Record the span count in a telemetry registry.

        A gauge, not a counter: the tracer already holds the merged
        (seed-order-adopted) tree, so the count is job-count invariant and
        re-publishing must not double it.
        """
        registry.gauge("spans.records").set(len(self.spans))

    def find(self, name: str) -> List[Span]:
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Optional[Span]) -> List[Span]:
        parent_id = span.sid if span is not None else None
        return [s for s in self.spans if s.parent == parent_id]

    def roots(self) -> List[Span]:
        known = {span.sid for span in self.spans}
        return [s for s in self.spans
                if s.parent is None or s.parent not in known]

    def structure(self) -> List:
        """The span tree as nested ``(name, children)`` tuples, in record
        order — the job-count-invariant shape of a run."""
        children: Dict[Optional[int], List[Span]] = {}
        known = {span.sid for span in self.spans}
        for span in self.spans:
            parent = span.parent if span.parent in known else None
            children.setdefault(parent, []).append(span)

        def render(span: Span):
            return (span.name,
                    [render(child) for child in children.get(span.sid, [])])

        return [render(span) for span in children.get(None, [])]

    def slowest(self, count: int = 10,
                exclude: Iterable[str] = ()) -> List[Span]:
        """The ``count`` longest spans, slowest first."""
        excluded = set(exclude)
        candidates = [s for s in self.spans
                      if s.end is not None and s.name not in excluded]
        candidates.sort(key=lambda s: -s.duration)
        return candidates[:count]

    # ------------------------------------------------------------------
    # export

    def _ts(self, value: float) -> float:
        return (value - self.origin) * 1e6  # microseconds

    def to_jsonl(self) -> str:
        """One JSON object per span, in record order."""
        lines = []
        for span in self.spans:
            end = span.end if span.end is not None else span.start
            lines.append(json.dumps({
                "name": span.name,
                "id": span.sid,
                "parent": span.parent,
                "track": span.track,
                "ts_us": round(self._ts(span.start), 3),
                "dur_us": round((end - span.start) * 1e6, 3),
                "attrs": span.attrs,
            }, sort_keys=True, default=str))
        return "\n".join(lines) + ("\n" if lines else "")

    def chrome_trace(self) -> Dict:
        """The run as Chrome ``trace_event`` JSON (B/E duration events).

        Events are generated by a per-track tree walk (so every ``E`` closes
        the matching ``B`` even under timestamp ties) and then sorted by
        timestamp with the walk order as the tie-breaker, which keeps ``ts``
        monotone for the whole file.
        """
        children: Dict[int, List[Span]] = {}
        by_track: Dict[int, List[Span]] = {}
        track_ids = {span.sid: span.track for span in self.spans}
        for span in self.spans:
            by_track.setdefault(span.track, []).append(span)
            if span.parent is not None and \
                    track_ids.get(span.parent) == span.track:
                children.setdefault(span.parent, []).append(span)

        events: List[Tuple[float, int, Dict]] = []
        seq = [0]

        def emit(span: Span) -> None:
            end = span.end if span.end is not None else span.start
            events.append((self._ts(span.start), seq[0], {
                "name": span.name, "ph": "B", "cat": "owl",
                "ts": round(self._ts(span.start), 3), "pid": 1,
                "tid": span.track,
                "args": {key: _json_safe(value)
                         for key, value in span.attrs.items()},
            }))
            seq[0] += 1
            for child in children.get(span.sid, []):
                emit(child)
            events.append((self._ts(end), seq[0], {
                "name": span.name, "ph": "E", "cat": "owl",
                "ts": round(self._ts(end), 3), "pid": 1, "tid": span.track,
            }))
            seq[0] += 1

        for track in sorted(by_track):
            in_track = set(s.sid for s in by_track[track])
            for span in by_track[track]:
                if span.parent is None or span.parent not in in_track:
                    emit(span)
        events.sort(key=lambda item: (item[0], item[1]))
        return {
            "traceEvents": [event for _, _, event in events],
            "displayTimeUnit": "ms",
        }

    def save_jsonl(self, path: str) -> str:
        _ensure_dir(path)
        with open(path, "w") as handle:
            handle.write(self.to_jsonl())
        return path

    def save_chrome(self, path: str) -> str:
        _ensure_dir(path)
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle, indent=1)
            handle.write("\n")
        return path

    def __repr__(self) -> str:
        return "<SpanTracer %d spans>" % len(self.spans)


def _json_safe(value):
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return str(value)


def _ensure_dir(path: str) -> None:
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)


@contextmanager
def maybe_span(tracer: Optional[SpanTracer], name: str, **attrs):
    """A span when a tracer is present, a no-op otherwise.

    The instrumentation hook used throughout the detectors and verifiers,
    which all accept ``tracer=None``.
    """
    if tracer is None:
        yield None
        return
    with tracer.span(name, **attrs) as span:
        yield span
