"""Threads, frames and call stacks."""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction
from repro.ir.values import Value

CallStack = Tuple[Tuple[str, str, int], ...]


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    HALTED = "halted"  # stopped at a debugger breakpoint
    FINISHED = "finished"


class Frame:
    """One activation record: function, program counter, SSA registers."""

    def __init__(self, function: Function, call_site: Optional[Call] = None):
        self.function = function
        self.call_site = call_site
        self.block = function.entry
        self.index = 0
        self.registers: Dict[Value, int] = {}
        # Stack blocks owned by this frame (freed logically on return).
        self.allocas: List = []

    def current_instruction(self) -> Optional[Instruction]:
        if self.index < len(self.block.instructions):
            return self.block.instructions[self.index]
        return None

    def jump(self, block) -> None:
        self.block = block
        self.index = 0

    def __repr__(self) -> str:
        inst = self.current_instruction()
        where = str(inst.location) if inst is not None else "<end>"
        return "<Frame %s at %s>" % (self.function.name, where)


class ThreadContext:
    """One simulated thread."""

    def __init__(self, thread_id: int, name: str, entry: Function,
                 argument_values: Optional[List[int]] = None):
        self.thread_id = thread_id
        self.name = name
        self.state = ThreadState.RUNNABLE
        self.frames: List[Frame] = []
        self.blocked_on: Optional[str] = None
        self.wake_step: Optional[int] = None  # for io_delay / usleep
        self.return_value: Optional[int] = None
        self.steps_executed = 0
        frame = Frame(entry)
        values = argument_values or []
        for argument, value in zip(entry.arguments, values):
            frame.registers[argument] = value
        self.frames.append(frame)
        self.joiners: List["ThreadContext"] = []
        self.held_mutexes: List[int] = []

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    def is_runnable(self) -> bool:
        return self.state == ThreadState.RUNNABLE

    def current_instruction(self) -> Optional[Instruction]:
        if not self.frames:
            return None
        return self.top.current_instruction()

    def call_stack(self) -> CallStack:
        """Snapshot (function, file, line) per frame, innermost last.

        The innermost entry carries the location of the instruction about to
        execute; outer entries carry their call sites.  This matches the
        call stacks OWL extracts from detector reports (paper Figure 4).
        """
        entries = []
        for frame in self.frames:
            instruction = frame.current_instruction()
            if instruction is not None:
                loc = instruction.location
            elif frame.block.instructions:
                loc = frame.block.instructions[-1].location
            else:
                loc = None
            entries.append((
                frame.function.name,
                loc.filename if loc else frame.function.source_file,
                loc.line if loc else 0,
            ))
        return tuple(entries)

    def __repr__(self) -> str:
        return "<Thread %d %r %s depth=%d>" % (
            self.thread_id, self.name, self.state.value, len(self.frames),
        )
