"""Threads, frames and call stacks."""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Call, Instruction
from repro.ir.values import Value

CallStack = Tuple[Tuple[str, str, int], ...]


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    HALTED = "halted"  # stopped at a debugger breakpoint
    FINISHED = "finished"


class Frame:
    """One activation record: function, program counter, SSA registers."""

    def __init__(self, function: Function, call_site: Optional[Call] = None):
        self.function = function
        self.call_site = call_site
        self.block = function.entry
        self.index = 0
        self.registers: Dict[Value, int] = {}
        # Stack blocks owned by this frame (freed logically on return).
        self.allocas: List = []

    def current_instruction(self) -> Optional[Instruction]:
        if self.index < len(self.block.instructions):
            return self.block.instructions[self.index]
        return None

    def jump(self, block) -> None:
        self.block = block
        self.index = 0

    def __repr__(self) -> str:
        inst = self.current_instruction()
        where = str(inst.location) if inst is not None else "<end>"
        return "<Frame %s at %s>" % (self.function.name, where)


class ThreadContext:
    """One simulated thread."""

    def __init__(self, thread_id: int, name: str, entry: Function,
                 argument_values: Optional[List[int]] = None,
                 memoize_stack: bool = True):
        self.thread_id = thread_id
        self.name = name
        self.state = ThreadState.RUNNABLE
        self.frames: List[Frame] = []
        self.blocked_on: Optional[str] = None
        self.wake_step: Optional[int] = None  # for io_delay / usleep
        # ``blocked_on`` parsed once at block time ("mutex"/"join"/None plus
        # the address or thread id), so the scheduler's retry scan does not
        # re-parse the reason string on every step.
        self.blocked_kind: Optional[str] = None
        self.blocked_arg = 0
        self.return_value: Optional[int] = None
        self.steps_executed = 0
        #: ``False`` disables the call-stack snapshot memo (reference mode
        #: for the differential oracle, :mod:`repro.runtime.diffcheck`).
        self.memoize_stack = memoize_stack
        # The memo: outer frames only change when the frame list itself
        # changes (push/pop bump ``_stack_version``), so their entries are
        # cached as ``_stack_prefix``; the innermost entry tracks the top
        # frame's program counter via the (block, index) part of the key.
        self._stack_version = 0
        self._stack_key: Optional[tuple] = None
        self._stack_cache: CallStack = ()
        self._stack_prefix: CallStack = ()
        self._stack_prefix_key: Optional[tuple] = None
        frame = Frame(entry)
        values = argument_values or []
        for argument, value in zip(entry.arguments, values):
            frame.registers[argument] = value
        self.frames.append(frame)
        self.joiners: List["ThreadContext"] = []
        self.held_mutexes: List[int] = []

    @property
    def top(self) -> Frame:
        return self.frames[-1]

    def is_runnable(self) -> bool:
        return self.state == ThreadState.RUNNABLE

    def current_instruction(self) -> Optional[Instruction]:
        if not self.frames:
            return None
        return self.top.current_instruction()

    # ------------------------------------------------------------------
    # frame-list mutation (the call-stack memo's invalidation points)

    def push_frame(self, frame: Frame) -> None:
        """Enter a callee frame; invalidates the call-stack memo."""
        self.frames.append(frame)
        self._stack_version += 1

    def pop_frame(self) -> Frame:
        """Leave the top frame; invalidates the call-stack memo."""
        frame = self.frames.pop()
        self._stack_version += 1
        return frame

    def clear_frames(self) -> None:
        """Drop all frames (thread exit); invalidates the call-stack memo."""
        self.frames = []
        self._stack_version += 1

    # ------------------------------------------------------------------

    @staticmethod
    def _frame_entry(frame: Frame) -> Tuple[str, str, int]:
        instruction = frame.current_instruction()
        if instruction is not None:
            loc = instruction.location
        elif frame.block.instructions:
            loc = frame.block.instructions[-1].location
        else:
            loc = None
        return (
            frame.function.name,
            loc.filename if loc else frame.function.source_file,
            loc.line if loc else 0,
        )

    def call_stack(self) -> CallStack:
        """Snapshot (function, file, line) per frame, innermost last.

        The innermost entry carries the location of the instruction about to
        execute; outer entries carry their call sites.  This matches the
        call stacks OWL extracts from detector reports (paper Figure 4).

        The snapshot is memoized: outer frames sit on their call sites until
        a push or pop changes the frame list, and the innermost entry only
        changes with the top frame's program counter, so the tuple is
        rebuilt only on call/ret/jump/step — not on every shared-memory
        access that wants a stack.
        """
        frames = self.frames
        if not frames:
            return ()
        if not self.memoize_stack:
            return tuple(self._frame_entry(frame) for frame in frames)
        top = frames[-1]
        depth = len(frames)
        key = (self._stack_version, depth, top.block, top.index)
        if key == self._stack_key:
            return self._stack_cache
        prefix_key = (self._stack_version, depth)
        if prefix_key != self._stack_prefix_key:
            self._stack_prefix = tuple(
                self._frame_entry(frame) for frame in frames[:-1]
            )
            self._stack_prefix_key = prefix_key
        stack = self._stack_prefix + (self._frame_entry(top),)
        self._stack_key = key
        self._stack_cache = stack
        return stack

    def __repr__(self) -> str:
        return "<Thread %d %r %s depth=%d>" % (
            self.thread_id, self.name, self.state.value, len(self.frames),
        )
