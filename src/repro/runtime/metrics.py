"""Per-stage observability for the OWL pipeline.

The ROADMAP's north star is a system that "runs as fast as the hardware
allows"; that only means something if throughput is measured.  This module
records, for every pipeline stage, the wall time, the VM work performed
(interpreter steps, shared-memory accesses observed by the detector) and the
item throughput (reports verified per second, seeds explored per second,
...), and exports the lot as JSON next to the benchmark tables under
``benchmarks/out/``.

Schema of the exported JSON (one file per program run)::

    {
      "schema": 3,                  # bump on incompatible layout changes
      "program": "apache",          # ProgramSpec name
      "jobs": 4,                    # worker processes (1 = serial)
      "total_seconds": 12.3,
      "stages": [
        {
          "name": "detect",
          "wall_seconds": 8.1,
          "items": 715,             # stage-specific unit, see "unit"
          "unit": "reports",
          "runs": 12,               # VM executions performed
          "vm_steps": 2400000,      # interpreter steps across those runs
          "accesses": 310000,       # shared accesses the detector shadowed
          "steps_per_second": 296296.3,
          "items_per_second": 88.3,
          "cache_hits": 12,         # cache-enabled runs only (schema 2)
          "cache_misses": 0
        },
        ...
      ],
      # schema 2, present when the run used a ResultCache / BatchPolicy:
      "cache": {
        "root": "benchmarks/out/cache",
        "code_version": "2f7a...",  # digest of the repro package source
        "hits": 34, "misses": 2, "stores": 2,
        "stages": {"detect": {"hits": 12, "misses": 0, "stores": 0}, ...}
      },
      "batch": {
        "timeout_seconds": null,    # per-item result-wait budget
        "retry_budget": 2,
        "backoff_seconds": 0.1,
        "timeouts": 0,              # items that exceeded the budget
        "retries": 0,               # items re-submitted to the pool
        "worker_failures": 0,       # exceptions / dead worker processes
        "serial_fallbacks": 0       # items re-run in-process after retries
      },
      # schema 4, present when the run came from the differential-execution
      # oracle (tools/diff_oracle.py; see repro.runtime.diffcheck):
      "diff_oracle": {
        "seeds": 10,                # seeds swept per program
        "divergences": 0,           # first-divergence records (0 = identical)
        "reference_steps_per_second": 120000.0,
        "optimized_steps_per_second": 260000.0,
        "speedup": 2.167,           # optimized / reference steps/s
        "report_sets_identical": true,
        "counters_identical": true
      },
      # schema 3, present when the run used coverage-guided exploration
      # (the detect stage's saturation curve; see repro.owl.explore):
      "explore": {
        "detector": "tsan",
        "policy": {"max_seeds": 20, "wave_size": 4, "saturation_k": 2,
                   "escalate": true},
        "seeds_executed": 12,       # seeds actually run
        "seeds_skipped": 8,         # budget the early stop never spent
        "saturated": true,
        "saturation_wave": 2,       # wave that sealed saturation (or null)
        "total_pairs": 23,          # racy access pairs covered
        "distinct_schedules": 12,   # context-switch signatures seen
        "waves": [
          {"index": 0, "seeds": [0, 1, 2, 3], "scheduler": "random",
           "depth": 3, "new_pairs": 21, "new_signatures": 4,
           "total_pairs": 21, "dry": false, "escalated": false},
          ...
        ]
      },
      # schema 5, present when the detector stages replayed recorded
      # schedule logs instead of executing live (repro.owl.replay):
      "replay": {
        "logs": 20,                 # recorded logs in the sweep
        "decisions": 61234,         # schedule decisions across those logs
        "record_dir": "benchmarks/out/records/apache",
        "replays": 40,              # log re-executions (detect + annotated)
        "schedule_divergences": 0,  # any non-zero means unfaithful replay
        "sync_divergences": 0,
        "thread_divergences": 0,
        "unfaithful_replays": 0
      },
      # schema 7, present when exploration ran a predict wave
      # (repro.detectors.predict): the wave-0 closure/witness counters
      # and the per-pair evidence status:
      "predict": {
        "detector": "predict",
        "program": "memcached",
        "seed": 0,
        "mode": "sync-preserving",  # or "optimistic" (sync-reversal)
        "policy": {"optimistic": false, "witness": true,
                   "max_pairs_per_static": 4, "max_closures": 20000},
        "counters": {"events": 5120, "accesses": 4010,
                     "candidate_pairs": 30, "closures": 30,
                     "predicted": 16, "rejected": 14, "observed": 15,
                     "witnessed": 1, "unwitnessed": 0, ...},
        "pairs": [[[411, 873], "observed"], ...]
      },
      # schema 8, only when the run fused hot blocks into
      # superinstructions (repro.runtime.fuse).  Observational, like
      # steps/s: pooled workers fuse with their own engines, so only the
      # in-process engine's counters appear here:
      "fuse": {
        "enabled": true, "compiled_blocks": 305, "fused_runs": 13793,
        "fused_steps": 183937, "fused_step_share": 0.6551,
        "bailouts": 0, "invalidations": 0
      },
      # schema 6, always present on pipeline runs: the deterministic
      # telemetry snapshot (repro.runtime.telemetry) plus the optional
      # profiler summary (repro.runtime.profiler):
      "telemetry": {
        "counters": {"cache.detect.hits": 30, "vm.steps": 123456, ...},
        "gauges": {"spans.records": 412, ...},
        "histograms": {"vm.steps_per_seed": {"bounds": [...],
                       "counts": [...], "sum": 123456, "count": 10}},
        "profile": {                # only when --profile was on
          "interval": 251, "samples": 480, "observer_samples": 210,
          "top_functions": [["main", 140], ...],
          "top_opcodes": [["Load", 180], ...]
        }
      }
    }

Schema 8 files are identical minus the ``repair`` block
(:meth:`repro.owl.repair.RepairResult.metrics_block` of an ``owl fix``
run); schema 7 files additionally lack the ``fuse`` block (and the
``diff_oracle`` block's ``fused_*`` fields); schema 6 files additionally
lack the ``predict`` block; schema 5 files additionally lack the
``telemetry`` block; schema 4 files further lack the ``replay`` block;
schema 3 files further lack the ``diff_oracle`` block; schema 2 files
further lack the ``explore`` block; schema 1 files lack the
``cache``/``batch`` blocks and the per-stage
``cache_hits``/``cache_misses`` extras as well.  The loader accepts all
nine.

Counters (:class:`repro.owl.pipeline.StageCounters`) stay byte-identical
between serial and parallel runs; metrics are *observations* and naturally
vary with the machine and worker count, so they live in a separate object.
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional

#: Version of the metrics JSON layout.  ``benchmarks/out/metrics_*.json``
#: files are compared across PRs; the loader refuses files whose schema it
#: does not understand rather than silently mis-reading them.
SCHEMA_VERSION = 9

#: Versions :func:`load_metrics` can still read.  Schemas 1–8 are strict
#: subsets of schema 9 (fewer optional blocks), so old files remain
#: loadable.
SUPPORTED_SCHEMAS = (1, 2, 3, 4, 5, 6, 7, 8, 9)


class MetricsSchemaError(ValueError):
    """A metrics file declares a schema this code cannot interpret."""


class RunStats:
    """Lightweight, picklable summary of one VM execution.

    The parallel batch engine cannot ship :class:`ExecutionResult` objects
    across process boundaries (they reference interpreter state and IR
    instructions); workers return these instead.
    """

    __slots__ = ("seed", "reason", "steps", "accesses", "reports",
                 "wall_seconds")

    def __init__(self, seed: int, reason: str, steps: int, accesses: int = 0,
                 reports: int = 0, wall_seconds: float = 0.0):
        self.seed = seed
        self.reason = reason
        self.steps = steps
        self.accesses = accesses
        self.reports = reports
        self.wall_seconds = wall_seconds

    def as_dict(self) -> Dict:
        return {
            "seed": self.seed,
            "reason": self.reason,
            "steps": self.steps,
            "accesses": self.accesses,
            "reports": self.reports,
            "wall_seconds": self.wall_seconds,
        }

    def __repr__(self) -> str:
        return "<RunStats seed=%d %s steps=%d accesses=%d>" % (
            self.seed, self.reason, self.steps, self.accesses,
        )


class StageMetrics:
    """Wall time and work counters for one pipeline stage."""

    def __init__(self, name: str, unit: str = "items"):
        self.name = name
        self.unit = unit
        self.wall_seconds = 0.0
        self.items = 0
        self.runs = 0
        self.vm_steps = 0
        self.accesses = 0
        self.extra: Dict[str, float] = {}

    # ------------------------------------------------------------------

    def absorb_run_stats(self, stats: Iterable[RunStats]) -> None:
        """Fold per-execution stats (serial or from workers) into the stage."""
        for stat in stats:
            self.runs += 1
            self.vm_steps += stat.steps
            self.accesses += stat.accesses

    @property
    def steps_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.vm_steps / self.wall_seconds

    @property
    def items_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.items / self.wall_seconds

    def as_dict(self) -> Dict:
        data = {
            "name": self.name,
            "wall_seconds": self.wall_seconds,
            "items": self.items,
            "unit": self.unit,
            "runs": self.runs,
            "vm_steps": self.vm_steps,
            "accesses": self.accesses,
            "steps_per_second": round(self.steps_per_second, 1),
            "items_per_second": round(self.items_per_second, 1),
        }
        data.update(self.extra)
        return data

    def __repr__(self) -> str:
        return "<StageMetrics %s %.3fs %d %s>" % (
            self.name, self.wall_seconds, self.items, self.unit,
        )


class PipelineMetrics:
    """All stages of one pipeline run, exportable as JSON."""

    def __init__(self, program: str, jobs: int = 1):
        self.program = program
        self.jobs = jobs
        self.stages: List[StageMetrics] = []
        self.total_seconds = 0.0
        #: ``ResultCache.counters()`` of a cache-enabled run (schema 2).
        self.cache: Optional[Dict] = None
        #: ``BatchPolicy.counters()`` of a fault-tolerant run (schema 2).
        self.batch: Optional[Dict] = None
        #: ``ExplorationResult.metrics_block()`` of a coverage-guided run
        #: (schema 3): the detect stage's per-wave saturation curve.
        self.explore: Optional[Dict] = None
        #: ``ProgramDiff.as_dict()`` of a differential-oracle run (schema 4):
        #: reference vs optimized steps/s and the divergence count.
        self.diff_oracle: Optional[Dict] = None
        #: ``ReplaySource.metrics_block()`` of a replayed run (schema 5):
        #: log/decision counts and every divergence counter.
        self.replay: Optional[Dict] = None
        #: ``MetricsRegistry.snapshot()`` of the run (schema 6), with an
        #: optional ``profile`` summary — deterministic content only, so
        #: jobs=1 and jobs=N emit bit-identical blocks.
        self.telemetry: Optional[Dict] = None
        #: ``PredictionResult.metrics_block()`` of a predicting run
        #: (schema 7): the wave-0 trace/closure/witness counters and the
        #: per-pair evidence status — deterministic given the recorded
        #: log, so jobs=1 and jobs=N emit bit-identical blocks.
        self.predict: Optional[Dict] = None
        #: ``OwlPipeline._fuse_block()`` of a superinstruction-fused run
        #: (schema 8): compiled blocks, fused-step share and bailouts of
        #: the in-process engine.  Observational — pooled workers fuse
        #: with per-seed engines invisible to this block.
        self.fuse: Optional[Dict] = None
        #: ``RepairResult.metrics_block()`` of an ``owl fix`` run
        #: (schema 9): per-target candidate/gate outcomes, emitted patch
        #: digests and the ground-truth comparison — deterministic given
        #: the spec (repair runs serially, targets in static-key order),
        #: so jobs=1 and jobs=N emit bit-identical blocks.
        self.repair: Optional[Dict] = None

    # ------------------------------------------------------------------

    @contextmanager
    def stage(self, name: str, unit: str = "items"):
        """Time a stage; the yielded :class:`StageMetrics` collects counters."""
        metrics = StageMetrics(name, unit=unit)
        started = time.perf_counter()
        try:
            yield metrics
        finally:
            metrics.wall_seconds = time.perf_counter() - started
            self.stages.append(metrics)

    def stage_by_name(self, name: str) -> Optional[StageMetrics]:
        for stage in self.stages:
            if stage.name == name:
                return stage
        return None

    @property
    def vm_steps(self) -> int:
        return sum(stage.vm_steps for stage in self.stages)

    @property
    def accesses(self) -> int:
        return sum(stage.accesses for stage in self.stages)

    def as_dict(self) -> Dict:
        data = {
            "schema": SCHEMA_VERSION,
            "program": self.program,
            "jobs": self.jobs,
            "total_seconds": self.total_seconds,
            "vm_steps": self.vm_steps,
            "accesses": self.accesses,
            "stages": [stage.as_dict() for stage in self.stages],
        }
        if self.cache is not None:
            data["cache"] = self.cache
        if self.batch is not None:
            data["batch"] = self.batch
        if self.explore is not None:
            data["explore"] = self.explore
        if self.diff_oracle is not None:
            data["diff_oracle"] = self.diff_oracle
        if self.replay is not None:
            data["replay"] = self.replay
        if self.telemetry is not None:
            data["telemetry"] = self.telemetry
        if self.predict is not None:
            data["predict"] = self.predict
        if self.fuse is not None:
            data["fuse"] = self.fuse
        if self.repair is not None:
            data["repair"] = self.repair
        return data

    def save(self, path: str) -> str:
        """Write the metrics JSON; returns the path written."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=False)
            handle.write("\n")
        return path

    def describe(self) -> str:
        lines = [
            "pipeline metrics: %s (jobs=%d, %.3fs total)" % (
                self.program, self.jobs, self.total_seconds,
            )
        ]
        for stage in self.stages:
            lines.append(
                "  %-22s %8.3fs  %6d %-8s %9d steps  %12.1f steps/s" % (
                    stage.name, stage.wall_seconds, stage.items, stage.unit,
                    stage.vm_steps, stage.steps_per_second,
                )
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "<PipelineMetrics %s jobs=%d stages=%d %.3fs>" % (
            self.program, self.jobs, len(self.stages), self.total_seconds,
        )


def metrics_path(out_dir: str, program: str) -> str:
    """Canonical location of a program's metrics file under ``out_dir``."""
    return os.path.join(out_dir, "metrics_%s.json" % program)


def load_metrics(path: str) -> Dict:
    """Load a metrics JSON file, rejecting unknown schema versions.

    Raises :class:`MetricsSchemaError` when the file declares no ``schema``
    field (pre-versioning files cannot be compared safely) or a version this
    code does not know how to read.
    """
    with open(path) as handle:
        data = json.load(handle)
    version = data.get("schema")
    if version not in SUPPORTED_SCHEMAS:
        raise MetricsSchemaError(
            "metrics file %s declares unsupported schema version %r "
            "(supported: %s)"
            % (path, version,
               ", ".join(str(v) for v in SUPPORTED_SCHEMAS))
        )
    return data
