"""Trace-level superinstructions: fused basic-block execution.

The VM's remaining per-instruction overhead after PR 5's dispatch table is
the run-loop itself: one scheduler decision, one runnable-list pass, one
``step_thread`` frame and one dispatch lookup *per instruction*.  This
module compiles hot straight-line runs of load/store/arith/cast
instructions inside a basic block into one fused Python closure — a
"superinstruction" — that the VM executes in a single call while emitting
exactly the same :class:`~repro.runtime.events.AccessEvent`s, faults and
step increments as stepwise execution.

Soundness contract (see also ``Scheduler.run_length``):

- Fusion only spans steps the scheduler has *committed* not to preempt:
  the VM asks ``scheduler.run_length(thread, step, max_len)`` for a
  guaranteed no-preempt run length and fuses at most that many steps.
  Schedulers that must observe every decision (record, replay, scripted,
  coverage tracking, profiling) answer 1, which disables fusion.
- Only instructions that cannot block, spawn, exit or switch frames are
  fusible (no calls, no atomics — atomics emit SyncEvents that anchor
  happens-before edges and deserve their own step boundary anyway).
- Each fused sub-step increments ``vm.step`` and ``thread.steps_executed``
  and keeps ``frame.index`` pointing at the executing instruction before
  advancing it, so call stacks, event step stamps and fault records are
  bit-identical to stepwise execution.
- A fault inside a fused run bails out through the exact same fault path
  as ``step_thread`` (recorded once, observers notified, FAULT result).

Plans are keyed per ``(basic block, start offset)`` and bake in only
static IR properties (operand kinds, type sizes, field offsets, masks)
plus per-VM constants that never change after construction (global and
function addresses).  Dynamic state — memory contents, block layouts
re-typed by casts, realloc/free — is read through the live ``Memory`` on
every execution, so plans cannot go stale the way offset-description
memos can; :meth:`FuseEngine.invalidate` exists for the debugger-attach
path and for tests.  Attaching a debugger disables fusion at the run-loop
level (breakpoints are per-instruction), independent of invalidation.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.ir.function import ExternalFunction, Function
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Store,
)
from repro.ir.types import IntType, PointerType, StructType
from repro.ir.values import Argument, Constant, GlobalVariable, Value
from repro.runtime.errors import FaultEvent, FaultKind, RuntimeFault
from repro.runtime.memory import MemoryBlock

MASK64 = (1 << 64) - 1

#: Executions of a (block, offset) site before it is compiled.  The VM's
#: basic blocks are short (a handful of instructions) and every seed gets
#: a fresh VM, so warm-up must be cheap: compile on the second execution.
HOT_THRESHOLD = 2

#: A fused run must replace at least this many steps to be worth a plan.
MIN_RUN = 2

#: Upper bound on micro-ops per plan (traces span blocks through
#: unconditional branches; the cap bounds compile time and keeps partial
#: runs — ``run_length`` rarely grants more — from wasting plan space).
MAX_TRACE = 64


class FusePlan:
    """A compiled straight-line run: one micro-op per fused instruction."""

    __slots__ = ("ops", "start", "length")

    def __init__(self, ops: Tuple[Callable, ...], start: int):
        self.ops = ops
        self.start = start
        self.length = len(ops)

    def __repr__(self) -> str:
        return "<FusePlan start=%d length=%d>" % (self.start, self.length)


# ----------------------------------------------------------------------
# operand readers

def _compile_reader(vm, operand: Value) -> Optional[Callable]:
    """Precompiled equivalent of ``VM.evaluate`` for one operand.

    Constants and global/function addresses fold to plain closures over a
    precomputed integer; register operands keep the exact KeyError ->
    "use of undefined value" fault of the interpreter path.  Returns None
    for operand kinds ``evaluate`` would reject — the run is simply not
    fused there.
    """
    if isinstance(operand, Constant):
        value = operand.value
        if isinstance(operand.type, IntType):
            value &= (1 << operand.type.bits) - 1
        else:
            value &= MASK64

        def read_constant(frame, value=value):
            return value

        return read_constant
    if isinstance(operand, GlobalVariable):
        address = vm._global_addresses[operand.name]

        def read_global(frame, address=address):
            return address

        return read_global
    if isinstance(operand, (Function, ExternalFunction)):
        address = vm._function_addresses[operand.name]

        def read_function(frame, address=address):
            return address

        return read_function
    if isinstance(operand, (Argument, Instruction)):
        message = "use of undefined value %s" % operand.short_name()

        def read_register(frame, operand=operand, message=message):
            try:
                return frame.registers[operand]
            except KeyError:
                raise RuntimeFault(FaultEvent(
                    FaultKind.WILD_ACCESS, -1, message,
                )) from None

        return read_register
    return None


# ----------------------------------------------------------------------
# per-class micro-op compilers (each mirrors the matching VM._exec_*
# handler; the differential oracle and the hypothesis differential test
# hold them bit-identical)

def _compile_load(vm, instruction: Load) -> Optional[Callable]:
    read_pointer = _compile_reader(vm, instruction.pointer)
    if read_pointer is None:
        return None
    size = max(1, instruction.type.size())
    atomic = instruction.atomic

    def op(vm, thread, frame, instruction=instruction):
        memory = vm.memory
        address = read_pointer(frame)
        block, fault = memory.check_access(
            address, size, False, thread.thread_id, vm.step,
            thread.call_stack(),
        )
        if fault is not None:
            vm.raise_fault(fault)
        value = memory.read_int(address, size, signed=False)
        frame.registers[instruction] = value
        vm.emit_access(thread, instruction, address, size, False, value,
                       is_atomic=atomic)
        frame.index += 1

    return op


def _compile_store(vm, instruction: Store) -> Optional[Callable]:
    read_pointer = _compile_reader(vm, instruction.pointer)
    read_value = _compile_reader(vm, instruction.value)
    if read_pointer is None or read_value is None:
        return None
    size = max(1, instruction.value.type.size())
    atomic = instruction.atomic

    def op(vm, thread, frame, instruction=instruction):
        memory = vm.memory
        address = read_pointer(frame)
        value = read_value(frame)
        block, fault = memory.check_access(
            address, size, True, thread.thread_id, vm.step,
            thread.call_stack(),
        )
        if fault is not None:
            vm.raise_fault(fault)
        memory.write_int(address, value, size)
        vm.emit_access(thread, instruction, address, size, True, value,
                       is_atomic=atomic)
        frame.index += 1

    return op


def _compile_binop(vm, instruction: BinOp) -> Optional[Callable]:
    read_lhs = _compile_reader(vm, instruction.lhs)
    read_rhs = _compile_reader(vm, instruction.rhs)
    if read_lhs is None or read_rhs is None:
        return None
    bits = (instruction.type.bits
            if isinstance(instruction.type, IntType) else 64)
    mask = (1 << bits) - 1
    sign = bits - 1
    operator = instruction.op
    location = instruction.location

    unsigned = {
        "add": lambda lhs, rhs: lhs + rhs,
        "sub": lambda lhs, rhs: lhs - rhs,
        "mul": lambda lhs, rhs: lhs * rhs,
        "and": lambda lhs, rhs: lhs & rhs,
        "or": lambda lhs, rhs: lhs | rhs,
        "xor": lambda lhs, rhs: lhs ^ rhs,
        "shl": lambda lhs, rhs, bits=bits: lhs << (rhs % bits),
        "lshr": lambda lhs, rhs, bits=bits: lhs >> (rhs % bits),
    }.get(operator)
    if unsigned is not None:
        def op(vm, thread, frame, instruction=instruction):
            frame.registers[instruction] = (
                unsigned(read_lhs(frame), read_rhs(frame)) & mask
            )
            frame.index += 1

        return op

    if operator not in ("udiv", "urem", "sdiv", "srem", "ashr"):
        return None

    def op(vm, thread, frame, instruction=instruction):
        lhs = read_lhs(frame)
        rhs = read_rhs(frame)
        if operator != "ashr" and rhs == 0:
            vm.raise_fault(FaultEvent(
                FaultKind.DIVISION_BY_ZERO, thread.thread_id,
                "division by zero at %s" % location,
                call_stack=thread.call_stack(), step=vm.step,
            ))
        if operator == "udiv":
            result = lhs // rhs
        elif operator == "urem":
            result = lhs % rhs
        else:
            signed_lhs = lhs - (1 << bits) if lhs >> sign else lhs
            signed_rhs = rhs - (1 << bits) if rhs >> sign else rhs
            if operator == "sdiv":
                result = int(signed_lhs / signed_rhs) if signed_rhs else 0
            elif operator == "srem":
                result = (signed_lhs
                          - int(signed_lhs / signed_rhs) * signed_rhs)
            else:  # ashr
                result = signed_lhs >> (rhs % bits)
        frame.registers[instruction] = result & mask
        frame.index += 1

    return op


def _compile_icmp(vm, instruction: ICmp) -> Optional[Callable]:
    read_lhs = _compile_reader(vm, instruction.lhs)
    read_rhs = _compile_reader(vm, instruction.rhs)
    if read_lhs is None or read_rhs is None:
        return None
    lhs_type = instruction.lhs.type
    bits = lhs_type.bits if isinstance(lhs_type, IntType) else 64
    sign = bits - 1
    wrap = 1 << bits
    predicate = instruction.predicate
    signed = predicate.startswith("s")
    compare = {
        "eq": lambda lhs, rhs: lhs == rhs,
        "ne": lambda lhs, rhs: lhs != rhs,
        "slt": lambda lhs, rhs: lhs < rhs,
        "ult": lambda lhs, rhs: lhs < rhs,
        "sle": lambda lhs, rhs: lhs <= rhs,
        "ule": lambda lhs, rhs: lhs <= rhs,
    }.get(predicate)
    if compare is None:
        if predicate in ("sgt", "ugt"):
            compare = lambda lhs, rhs: lhs > rhs  # noqa: E731
        else:  # sge / uge (the reference's final else-arm)
            compare = lambda lhs, rhs: lhs >= rhs  # noqa: E731

    def op(vm, thread, frame, instruction=instruction):
        lhs = read_lhs(frame)
        rhs = read_rhs(frame)
        if signed:
            lhs = lhs - wrap if lhs >> sign else lhs
            rhs = rhs - wrap if rhs >> sign else rhs
        frame.registers[instruction] = 1 if compare(lhs, rhs) else 0
        frame.index += 1

    return op


def _compile_gep(vm, instruction: GetElementPtr) -> Optional[Callable]:
    read_base = _compile_reader(vm, instruction.base)
    if read_base is None:
        return None
    if instruction.field is not None:
        pointee = instruction.base.type.pointee
        offset = pointee.field_offset(instruction.field)

        def op(vm, thread, frame, instruction=instruction):
            frame.registers[instruction] = (read_base(frame) + offset) & MASK64
            frame.index += 1

        return op
    read_index = _compile_reader(vm, instruction.index)
    if read_index is None:
        return None
    element_size = instruction.type.pointee.size()

    def op(vm, thread, frame, instruction=instruction):
        index = read_index(frame)
        if index >> 63:  # negative index (two's complement)
            index -= 1 << 64
        frame.registers[instruction] = (
            read_base(frame) + index * element_size
        ) & MASK64
        frame.index += 1

    return op


def _compile_cast(vm, instruction: Cast) -> Optional[Callable]:
    read_value = _compile_reader(vm, instruction.value)
    if read_value is None:
        return None
    if isinstance(instruction.type, IntType):
        mask = (1 << instruction.type.bits) - 1
    else:
        mask = MASK64
    pointee = (instruction.type.pointee
               if isinstance(instruction.type, PointerType) else None)
    types_struct = isinstance(pointee, StructType)

    def op(vm, thread, frame, instruction=instruction):
        value = read_value(frame) & mask
        frame.registers[instruction] = value
        if types_struct:
            # Struct-pointer casts retype raw heap blocks (field layouts
            # for overflow attribution); the scalar/opaque-pointer cases
            # are compile-time no-ops in _maybe_type_block.
            vm._maybe_type_block(instruction, value)
        frame.index += 1

    return op


def _compile_br(vm, instruction: Br) -> Optional[Callable]:
    if instruction.is_conditional:
        read_condition = _compile_reader(vm, instruction.condition)
        if read_condition is None:
            return None
        true_block = instruction.true_block
        false_block = instruction.false_block

        def op(vm, thread, frame):
            frame.block = true_block if read_condition(frame) else false_block
            frame.index = 0

        return op
    target = instruction.true_block

    def op(vm, thread, frame):
        frame.block = target
        frame.index = 0

    return op


def _compile_alloca(vm, instruction: Alloca) -> Optional[Callable]:
    allocated_type = instruction.allocated_type
    size = allocated_type.size()

    def op(vm, thread, frame, instruction=instruction):
        block = vm.memory.allocate(
            size, MemoryBlock.STACK,
            name="%s.%s" % (frame.function.name, instruction.name or "tmp"),
            value_type=allocated_type, step=vm.step,
        )
        frame.allocas.append(block)
        frame.registers[instruction] = block.base
        frame.index += 1

    return op


#: Fusible instruction classes in the dispatch table's isinstance order.
#: Branches fuse too — an unconditional Br lets the trace continue into
#: the successor block, a conditional Br ends it (the successor depends
#: on a runtime value).  Call can block/spawn/exit; Ret can finish the
#: thread (changing the runnable set mid-run); AtomicRMW emits SyncEvents
#: that anchor happens-before edges and keeps its own step.
_COMPILER_BASES = (
    (Alloca, _compile_alloca),
    (Load, _compile_load),
    (Store, _compile_store),
    (BinOp, _compile_binop),
    (ICmp, _compile_icmp),
    (GetElementPtr, _compile_gep),
    (Cast, _compile_cast),
    (Br, _compile_br),
)


def _compiler_for(instruction: Instruction) -> Optional[Callable]:
    for base, compiler in _COMPILER_BASES:
        if isinstance(instruction, base):
            return compiler
    return None


class FuseEngine:
    """Plan cache, hotness tracker and fusion counters.

    One engine can be shared by every VM executing the *same module
    object* (the detector sweeps run many seeds over one build), so plans
    compiled during seed 0 are reused by seed 19 — the compile cost
    amortizes across the sweep.  Micro-ops read all dynamic state through
    the executing VM, and the only per-VM values they bake in are global
    and function addresses, which the VM assigns deterministically from
    the module; :meth:`attach` verifies that and starts over if a VM with
    a different address layout ever shows up.  (Sharing across *different*
    builds of the same spec is safe but useless: plan keys are basic-block
    objects, so foreign plans are simply never hit.)
    """

    def __init__(self, hot_threshold: int = HOT_THRESHOLD):
        self._vm = None
        self._signature: Optional[Tuple[Dict, Dict]] = None
        self.hot_threshold = hot_threshold
        #: (block, offset) -> FusePlan, or None once the site is known to
        #: be unfusible (so the per-step probe stays one dict lookup).
        self._plans: Dict[tuple, Optional[FusePlan]] = {}
        self._heat: Dict[tuple, int] = {}
        self.compiled = 0
        self.fused_runs = 0
        self.fused_steps = 0
        self.bailouts = 0
        self.invalidations = 0

    def attach(self, vm) -> "FuseEngine":
        """Bind the engine to a VM, validating the baked address layout."""
        signature = (vm._global_addresses, vm._function_addresses)
        if self._signature is None:
            self._signature = (dict(signature[0]), dict(signature[1]))
        elif (self._signature[0] != signature[0]
              or self._signature[1] != signature[1]):
            # A VM with a different global/function address layout: every
            # compiled reader is wrong for it.  Drop the plans and re-sign
            # rather than execute against stale addresses.
            self.invalidate()
            self._signature = (dict(signature[0]), dict(signature[1]))
        self._vm = vm
        return self

    def plan_for(self, thread) -> Optional[FusePlan]:
        """The compiled plan starting at the thread's program counter.

        Returns None while the site is cold or when it cannot be fused;
        sites that fail to compile are cached as None so steady-state
        probing costs one dict lookup.
        """
        if not thread.frames:
            return None
        frame = thread.frames[-1]
        key = (frame.block, frame.index)
        plans = self._plans
        if key in plans:
            return plans[key]
        heat = self._heat.get(key, 0) + 1
        if heat < self.hot_threshold:
            self._heat[key] = heat
            return None
        self._heat.pop(key, None)
        plan = self._compile(frame)
        plans[key] = plan
        return plan

    def _compile(self, frame) -> Optional[FusePlan]:
        """Compile the trace starting at the frame's program counter.

        The trace is the longest run of fusible instructions from
        ``(frame.block, frame.index)``: straight-line within a block, and
        continuing into the successor block across *unconditional*
        branches (the path is static).  A conditional branch fuses as the
        trace's final op — its successor depends on a runtime value, so
        the next plan takes over there.  Revisiting a block ends the
        trace (loops re-enter the plan from the top instead of unrolling).
        """
        block = frame.block
        start = frame.index
        ops: List[Callable] = []
        vm = self._vm
        index = start
        visited = {block}
        while len(ops) < MAX_TRACE:
            instructions = block.instructions
            if index >= len(instructions):
                break
            instruction = instructions[index]
            compiler = _compiler_for(instruction)
            if compiler is None:
                break
            op = compiler(vm, instruction)
            if op is None:
                break
            ops.append(op)
            if isinstance(instruction, Br):
                if instruction.is_conditional:
                    break
                target = instruction.true_block
                if target in visited:
                    break
                visited.add(target)
                block = target
                index = 0
            else:
                index += 1
        if len(ops) < MIN_RUN:
            return None
        self.compiled += 1
        return FusePlan(tuple(ops), start)

    def invalidate(self) -> None:
        """Drop every plan and heat counter (debugger attach, tests)."""
        self._plans.clear()
        self._heat.clear()
        self.invalidations += 1

    def counters(self) -> Dict[str, int]:
        return {
            "compiled": self.compiled,
            "fused_runs": self.fused_runs,
            "fused_steps": self.fused_steps,
            "bailouts": self.bailouts,
            "invalidations": self.invalidations,
        }
