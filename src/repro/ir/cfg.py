"""Control-flow analyses over a function's basic blocks.

Provides the graph facts OWL's static components rely on:

- dominators / postdominators (iterative Cooper–Harvey–Kennedy),
- control dependence (postdominance-frontier construction), used by
  Algorithm 1's ``i is control dependent on cbr`` test,
- natural loops (back edges via dominance), loop membership and loop exits,
  used by the adhoc-synchronization detector's "read in a loop" and "branch
  can break out of the loop" tests (paper section 5.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Br, Instruction


class Loop:
    """A natural loop: header block plus member blocks."""

    def __init__(self, header: BasicBlock, blocks: Set[BasicBlock]):
        self.header = header
        self.blocks = blocks

    def contains(self, block: BasicBlock) -> bool:
        return block in self.blocks

    def exit_edges(self) -> List[Tuple[BasicBlock, BasicBlock]]:
        """Edges (src, dst) leaving the loop."""
        edges = []
        for block in self.blocks:
            for successor in block.successors():
                if successor not in self.blocks:
                    edges.append((block, successor))
        return edges

    def __repr__(self) -> str:
        return "<Loop header=%s blocks=%d>" % (self.header.name, len(self.blocks))


class _VirtualRoot:
    """Sentinel standing in for the virtual entry/exit node.

    The iterative dominator algorithm needs a single root; functions have one
    entry but often several ``ret`` blocks, so postdominators are rooted at
    this sentinel, which all exit blocks point to.
    """

    def __repr__(self) -> str:
        return "<virtual-root>"


VIRTUAL_ROOT = _VirtualRoot()


class ControlFlowInfo:
    """All CFG-derived facts for one function, computed eagerly."""

    def __init__(self, function: Function):
        self.function = function
        self.blocks = list(function.blocks)
        self.predecessors: Dict[BasicBlock, List[BasicBlock]] = {
            block: [] for block in self.blocks
        }
        for block in self.blocks:
            for successor in block.successors():
                self.predecessors[successor].append(block)
        self.rpo = self._reverse_postorder()
        self.idom = self._dominators(self.rpo, self._entry_blocks(), self.predecessors)
        exits = [block for block in self.blocks if not block.successors()]
        reverse_preds = {block: block.successors() for block in self.blocks}
        reverse_rpo = list(reversed(self.rpo))
        self.ipdom = self._dominators(reverse_rpo, exits, reverse_preds)
        self.control_deps = self._control_dependence()
        self.loops = self._natural_loops()

    # ------------------------------------------------------------------
    # queries

    @staticmethod
    def _walk_up(tree: Dict, a: BasicBlock, b: BasicBlock) -> bool:
        """Whether ``a`` is an ancestor of ``b`` in a dominator tree."""
        node = b
        while node is not None and node is not VIRTUAL_ROOT:
            if node is a:
                return True
            node = tree.get(node)
        return False

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """Whether block ``a`` dominates block ``b``."""
        return self._walk_up(self.idom, a, b)

    def postdominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return self._walk_up(self.ipdom, a, b)

    def is_control_dependent(self, instruction: Instruction, branch: Instruction) -> bool:
        """Algorithm 1's control-dependence test between two instructions.

        ``instruction`` is control dependent on a conditional ``branch`` when
        its block is in the branch block's control-dependence region, or when
        it appears in the branch's own block *after* the branch (impossible
        for terminators, so that case is moot).
        """
        if not isinstance(branch, Br) or not branch.is_conditional:
            return False
        if instruction.block is None or branch.block is None:
            return False
        if instruction.block.function is not branch.block.function:
            return False
        return instruction.block in self.control_deps.get(branch.block, set())

    def loop_containing(self, block: BasicBlock) -> Optional[Loop]:
        """The innermost (smallest) loop containing ``block``, if any."""
        best: Optional[Loop] = None
        for loop in self.loops:
            if loop.contains(block):
                if best is None or len(loop.blocks) < len(best.blocks):
                    best = loop
        return best

    def branch_exits_loop(self, branch: Instruction, loop: Loop) -> bool:
        """Whether the conditional branch has a successor outside ``loop``."""
        if not isinstance(branch, Br) or not branch.is_conditional:
            return False
        if branch.block not in loop.blocks:
            return False
        return any(successor not in loop.blocks for successor in branch.successors())

    # ------------------------------------------------------------------
    # construction

    def _entry_blocks(self) -> List[BasicBlock]:
        return [self.function.entry] if self.blocks else []

    def _reverse_postorder(self) -> List[BasicBlock]:
        visited: Set[BasicBlock] = set()
        order: List[BasicBlock] = []

        def visit(block: BasicBlock) -> None:
            stack = [(block, iter(block.successors()))]
            visited.add(block)
            while stack:
                current, successors = stack[-1]
                advanced = False
                for successor in successors:
                    if successor not in visited:
                        visited.add(successor)
                        stack.append((successor, iter(successor.successors())))
                        advanced = True
                        break
                if not advanced:
                    order.append(current)
                    stack.pop()

        if self.blocks:
            visit(self.function.entry)
        for block in self.blocks:
            if block not in visited:
                visit(block)
        order.reverse()
        return order

    @staticmethod
    def _dominators(
        order: List[BasicBlock],
        roots: List[BasicBlock],
        predecessors: Dict[BasicBlock, List[BasicBlock]],
    ) -> Dict[BasicBlock, BasicBlock]:
        """Iterative dominator computation (Cooper–Harvey–Kennedy).

        Multiple roots (several ``ret`` blocks when computing postdominators)
        are joined under :data:`VIRTUAL_ROOT`.
        """
        idom: Dict = {VIRTUAL_ROOT: VIRTUAL_ROOT}
        for root in roots:
            idom[root] = VIRTUAL_ROOT
        position = {block: i for i, block in enumerate(order)}
        position[VIRTUAL_ROOT] = -1

        def intersect(a, b):
            while a is not b:
                while position[a] > position[b]:
                    a = idom[a]
                while position[b] > position[a]:
                    b = idom[b]
            return a

        changed = True
        while changed:
            changed = False
            for block in order:
                if block in roots:
                    continue
                candidates = [p for p in predecessors.get(block, []) if p in idom]
                if not candidates:
                    continue
                new_idom = candidates[0]
                for other in candidates[1:]:
                    new_idom = intersect(new_idom, other)
                if idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True
        return idom

    def _control_dependence(self) -> Dict[BasicBlock, Set[BasicBlock]]:
        """Map branch-block -> blocks control dependent on it.

        Classic construction: for edge (a, b) where b does not postdominate a,
        walk b up the postdominator tree until reaching ipdom(a); every block
        visited is control dependent on a.
        """
        deps: Dict[BasicBlock, Set[BasicBlock]] = {block: set() for block in self.blocks}
        for a in self.blocks:
            successors = a.successors()
            if len(successors) < 2:
                continue
            stop = self.ipdom.get(a)
            for b in successors:
                runner = b
                seen: Set[BasicBlock] = set()
                while (
                    runner is not None
                    and runner is not stop
                    and runner is not VIRTUAL_ROOT
                    and runner not in seen
                ):
                    seen.add(runner)
                    deps[a].add(runner)
                    runner = self.ipdom.get(runner)
        return deps

    def _natural_loops(self) -> List[Loop]:
        loops_by_header: Dict[BasicBlock, Set[BasicBlock]] = {}
        for block in self.blocks:
            for successor in block.successors():
                if self.dominates(successor, block):
                    body = loops_by_header.setdefault(successor, {successor})
                    self._collect_loop_body(successor, block, body)
        return [Loop(header, blocks) for header, blocks in loops_by_header.items()]

    def _collect_loop_body(
        self, header: BasicBlock, tail: BasicBlock, body: Set[BasicBlock]
    ) -> None:
        stack = [tail]
        while stack:
            block = stack.pop()
            if block in body:
                continue
            body.add(block)
            for predecessor in self.predecessors.get(block, []):
                if predecessor is not header:
                    stack.append(predecessor)


_CFG_CACHE: Dict[int, ControlFlowInfo] = {}


def cfg_for(function: Function) -> ControlFlowInfo:
    """Cached :class:`ControlFlowInfo` for a function.

    Functions are immutable once their module is under analysis, so caching by
    identity is safe and keeps Algorithm 1's repeated control-dependence
    queries cheap.
    """
    key = id(function)
    info = _CFG_CACHE.get(key)
    if info is None or info.function is not function:
        info = ControlFlowInfo(function)
        _CFG_CACHE[key] = info
    return info
