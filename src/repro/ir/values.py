"""SSA values: the base :class:`Value`, constants, globals and arguments.

Every producer of a runtime value in the IR is a :class:`Value`.  SSA
instructions (defined in :mod:`repro.ir.instructions`) are themselves values,
mirroring LLVM's design; OWL's Algorithm 1 relies on this to propagate the
corrupted-instruction set through operand membership.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.types import IntType, PointerType, Type, I8, ptr


class SourceLocation:
    """A ``file:line`` source position attached to instructions.

    The model target programs mirror the line numbers quoted in the paper
    (e.g. ``intercept.c:164`` for the Libsafe control dependency), so OWL's
    reports can be compared against paper Figures 4 and 5 directly.
    """

    __slots__ = ("filename", "line")

    def __init__(self, filename: str, line: int):
        self.filename = filename
        self.line = line

    def __str__(self) -> str:
        return "%s:%d" % (self.filename, self.line)

    def __repr__(self) -> str:
        return "SourceLocation(%r, %d)" % (self.filename, self.line)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, SourceLocation)
            and other.filename == self.filename
            and other.line == self.line
        )

    def __hash__(self) -> int:
        return hash((self.filename, self.line))


UNKNOWN_LOCATION = SourceLocation("<unknown>", 0)


class Value:
    """Anything that can appear as an instruction operand."""

    def __init__(self, type_: Type, name: str = ""):
        self.type = type_
        self.name = name

    def short_name(self) -> str:
        """A compact printable name used by the IR printer."""
        return "%%%s" % self.name if self.name else "%?"

    def __repr__(self) -> str:
        return "<%s %s %s>" % (type(self).__name__, self.type, self.short_name())


class Constant(Value):
    """Base class for compile-time constants."""

    def __init__(self, type_: Type, value):
        super().__init__(type_, name="")
        self.value = value

    def short_name(self) -> str:
        return str(self.value)


class ConstantInt(Constant):
    """An integer constant, wrapped into its type's range."""

    def __init__(self, type_: IntType, value: int):
        if not isinstance(type_, IntType):
            raise TypeError("ConstantInt requires an IntType, got %s" % type_)
        super().__init__(type_, type_.wrap(int(value)))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ConstantInt)
            and other.type == self.type
            and other.value == self.value
        )

    def __hash__(self) -> int:
        return hash(("cint", self.type, self.value))


class NullPointer(Constant):
    """The null pointer constant for a given pointer type."""

    def __init__(self, type_: Optional[PointerType] = None):
        super().__init__(type_ or ptr(I8), 0)

    def short_name(self) -> str:
        return "null"


class GlobalVariable(Value):
    """A module-level variable.

    ``value_type`` is the type of the stored value; the global itself, like in
    LLVM, has pointer-to-``value_type`` type.  ``initializer`` may be an int,
    bytes (for string data), a nested list matching an array/struct layout, or
    ``None`` for zero initialization.
    """

    def __init__(self, name: str, value_type: Type, initializer=None):
        super().__init__(PointerType(value_type), name=name)
        self.value_type = value_type
        self.initializer = initializer
        self.module = None

    def short_name(self) -> str:
        return "@%s" % self.name


class Argument(Value):
    """A formal parameter of a function."""

    def __init__(self, type_: Type, name: str, index: int):
        super().__init__(type_, name=name)
        self.index = index
        self.function = None

    def short_name(self) -> str:
        return "%%%s" % self.name
