"""Structural well-formedness checks for IR modules.

The verifier catches builder mistakes early so the interpreter and the static
analyses can assume invariants: every block ends in exactly one terminator,
operands are defined before use (SSA dominance), branch targets belong to the
same function, and call arities match.
"""

from __future__ import annotations

from typing import List, Set

from repro.ir.cfg import cfg_for
from repro.ir.function import ExternalFunction, Function
from repro.ir.instructions import Br, Call, Instruction, Ret
from repro.ir.module import Module
from repro.ir.types import FunctionType, PointerType, VoidType
from repro.ir.values import Argument, Constant, GlobalVariable, Value


class IRVerificationError(Exception):
    """Raised when a module violates a structural invariant."""


def verify_module(module: Module) -> None:
    """Verify every function in the module, raising on the first error."""
    for function in module.functions.values():
        verify_function(function, module)


def verify_function(function: Function, module: Module) -> None:
    if not function.blocks:
        raise IRVerificationError("function %s has no body" % function.name)
    _check_terminators(function)
    _check_branch_targets(function)
    _check_ssa_dominance(function)
    _check_calls(function, module)


def _check_terminators(function: Function) -> None:
    for block in function.blocks:
        if block.terminator is None:
            raise IRVerificationError(
                "block %s.%s does not end in a terminator" % (function.name, block.name)
            )
        for instruction in block.instructions[:-1]:
            if instruction.is_terminator():
                raise IRVerificationError(
                    "terminator in the middle of block %s.%s"
                    % (function.name, block.name)
                )


def _check_branch_targets(function: Function) -> None:
    blocks = set(function.blocks)
    for block in function.blocks:
        terminator = block.terminator
        if isinstance(terminator, Br):
            for target in terminator.successors():
                if target not in blocks:
                    raise IRVerificationError(
                        "branch in %s.%s targets foreign block %s"
                        % (function.name, block.name, target.name)
                    )
        elif isinstance(terminator, Ret):
            returns_void = isinstance(function.ftype.return_type, VoidType)
            if returns_void and terminator.value is not None:
                raise IRVerificationError(
                    "void function %s returns a value" % function.name
                )
            if not returns_void and terminator.value is None:
                raise IRVerificationError(
                    "non-void function %s returns nothing" % function.name
                )


def _is_global_scope_value(value: Value) -> bool:
    return isinstance(value, (Constant, GlobalVariable, Function, ExternalFunction))


def _check_ssa_dominance(function: Function) -> None:
    """Every instruction operand must be defined in a dominating position."""
    cfg = cfg_for(function)
    arguments: Set[Value] = set(function.arguments)
    definition_index = {}
    for block in function.blocks:
        for position, instruction in enumerate(block.instructions):
            definition_index[instruction] = (block, position)
    for block in function.blocks:
        for position, instruction in enumerate(block.instructions):
            for operand in instruction.operands:
                if _is_global_scope_value(operand) or operand in arguments:
                    continue
                if isinstance(operand, Argument):
                    raise IRVerificationError(
                        "%s.%s uses argument of another function"
                        % (function.name, block.name)
                    )
                if not isinstance(operand, Instruction):
                    raise IRVerificationError(
                        "unexpected operand kind %r in %s" % (operand, function.name)
                    )
                defined = definition_index.get(operand)
                if defined is None:
                    raise IRVerificationError(
                        "%s uses %s defined in another function"
                        % (function.name, operand.describe())
                    )
                def_block, def_position = defined
                if def_block is block:
                    if def_position >= position:
                        raise IRVerificationError(
                            "use before definition of %s in %s.%s"
                            % (operand.short_name(), function.name, block.name)
                        )
                elif not cfg.dominates(def_block, block):
                    raise IRVerificationError(
                        "definition of %s in %s.%s does not dominate use in %s.%s"
                        % (
                            operand.short_name(), function.name, def_block.name,
                            function.name, block.name,
                        )
                    )


def _check_calls(function: Function, module: Module) -> None:
    for instruction in function.instructions():
        if not isinstance(instruction, Call):
            continue
        callee = instruction.callee
        ftype = getattr(callee, "ftype", None)
        if ftype is None:
            pointee = callee.type.pointee if isinstance(callee.type, PointerType) else None
            if not isinstance(pointee, FunctionType):
                raise IRVerificationError(
                    "indirect call through non-function pointer in %s" % function.name
                )
            ftype = pointee
        expected = len(ftype.param_types)
        actual = len(instruction.operands)
        if ftype.varargs:
            if actual < expected:
                raise IRVerificationError(
                    "call to %s in %s passes %d args, needs at least %d"
                    % (instruction.callee_name(), function.name, actual, expected)
                )
        elif actual != expected:
            raise IRVerificationError(
                "call to %s in %s passes %d args, expected %d"
                % (instruction.callee_name(), function.name, actual, expected)
            )
        if isinstance(callee, (Function, ExternalFunction)) and callee.module not in (
            None, module,
        ):
            raise IRVerificationError(
                "call to %s from another module in %s"
                % (instruction.callee_name(), function.name)
            )
