"""Textual rendering of IR, matching the style of the paper's Figure 5.

``format_instruction`` renders a single instruction as::

    %632: br %631 if.end13 if.then11 (intercept.c:164)

which is the format OWL's vulnerable-input-hint reports quote.
"""

from __future__ import annotations

from typing import List

from repro.ir.function import BasicBlock, Function
from repro.ir.instructions import Instruction
from repro.ir.module import Module


def format_instruction(instruction: Instruction) -> str:
    """Render one instruction with its uid and source location."""
    uid = instruction.uid if instruction.uid is not None else 0
    return "%%%d: %s (%s)" % (uid, instruction.describe(), instruction.location)


def print_block(block: BasicBlock) -> str:
    lines = ["%s:" % block.name]
    for instruction in block.instructions:
        lines.append("  " + format_instruction(instruction))
    return "\n".join(lines)


def print_function(function: Function) -> str:
    params = ", ".join(
        "%s %%%s" % (arg.type, arg.name) for arg in function.arguments
    )
    lines = [
        "define %s @%s(%s) ; %s"
        % (function.ftype.return_type, function.name, params, function.source_file)
    ]
    for block in function.blocks:
        lines.append(print_block(block))
    return "\n".join(lines)


def print_module(module: Module) -> str:
    lines: List[str] = ["; module %s" % module.name]
    for struct in module.structs.values():
        fields = ", ".join("%s %s" % (t, n) for n, t in struct.fields)
        lines.append("%s = type { %s }" % (struct, fields))
    for variable in module.globals.values():
        # The initializer is part of the digest-relevant surface: two modules
        # whose globals differ only in initial value (e.g. a lock word seeded
        # non-zero) must print — and therefore hash — differently.
        if variable.initializer is None:
            lines.append("@%s = global %s zeroinitializer"
                         % (variable.name, variable.value_type))
        else:
            lines.append("@%s = global %s %r"
                         % (variable.name, variable.value_type,
                            variable.initializer))
    for external in module.externals.values():
        lines.append("declare %s @%s" % (external.ftype, external.name))
    for function in module.functions.values():
        lines.append("")
        lines.append(print_function(function))
    return "\n".join(lines)
