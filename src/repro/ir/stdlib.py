"""Prototypes of the external functions the runtime implements.

These declarations play the role of libc / syscall / pthread prototypes.  The
runtime package gives each a concrete semantics
(:mod:`repro.runtime.externals`); the OWL vulnerable-site registry
(:mod:`repro.owl.vuln_sites`) classifies the security-sensitive ones into the
paper's five vulnerable-site types (section 3.2).
"""

from __future__ import annotations

from typing import Dict

from repro.ir.types import FunctionType, IntType, PointerType, Type, I8, I32, I64, U64, VOID

_PTR = PointerType(I8)
_FPTR = PointerType(FunctionType(VOID, [_PTR]))


def _ft(ret: Type, *params: Type, varargs: bool = False) -> FunctionType:
    return FunctionType(ret, list(params), varargs=varargs)


#: name -> FunctionType for every external the runtime implements.
STDLIB_PROTOTYPES: Dict[str, FunctionType] = {
    # --- memory management -------------------------------------------------
    "malloc": _ft(_PTR, I64),
    "free": _ft(VOID, _PTR),
    "realloc": _ft(_PTR, _PTR, I64),
    # --- memory operations (vulnerable site type: MEMORY_OP) ---------------
    "strcpy": _ft(_PTR, _PTR, _PTR),
    "strncpy": _ft(_PTR, _PTR, _PTR, I64),
    "strcat": _ft(_PTR, _PTR, _PTR),
    "memcpy": _ft(_PTR, _PTR, _PTR, I64),
    "memset": _ft(_PTR, _PTR, I32, I64),
    "sprintf": _ft(I32, _PTR, _PTR, varargs=True),
    "strlen": _ft(I64, _PTR),
    "strcmp": _ft(I32, _PTR, _PTR),
    # --- privilege operations (PRIVILEGE_OP) --------------------------------
    "setuid": _ft(I32, I32),
    "seteuid": _ft(I32, I32),
    "setgid": _ft(I32, I32),
    "setgroups": _ft(I32, I32, _PTR),
    "commit_creds": _ft(I32, _PTR),
    # --- file operations (FILE_OP) ------------------------------------------
    "access": _ft(I32, _PTR, I32),
    "open": _ft(I32, _PTR, I32),
    "chmod": _ft(I32, _PTR, I32),
    "unlink": _ft(I32, _PTR),
    "write": _ft(I64, I32, _PTR, I64),
    "read": _ft(I64, I32, _PTR, I64),
    "close": _ft(I32, I32),
    # --- process forking operations (FORK_OP) --------------------------------
    "execve": _ft(I32, _PTR, _PTR, _PTR),
    "system": _ft(I32, _PTR),
    "eval": _ft(I32, _PTR),
    "fork": _ft(I32),
    # --- threads -------------------------------------------------------------
    "thread_create": _ft(I64, _FPTR, _PTR),
    "thread_join": _ft(I32, I64),
    "thread_exit": _ft(VOID),
    "thread_yield": _ft(VOID),
    # --- synchronization -----------------------------------------------------
    "mutex_init": _ft(I32, _PTR),
    "mutex_lock": _ft(I32, _PTR),
    "mutex_unlock": _ft(I32, _PTR),
    "cond_init": _ft(I32, _PTR),
    "cond_wait": _ft(I32, _PTR, _PTR),
    "cond_signal": _ft(I32, _PTR),
    "cond_broadcast": _ft(I32, _PTR),
    "atomic_add": _ft(I64, _PTR, I64),
    "atomic_sub": _ft(I64, _PTR, I64),
    # TSan-markup-style annotations, applied by OWL's adhoc-sync annotator.
    "tsan_acquire": _ft(VOID, _PTR),
    "tsan_release": _ft(VOID, _PTR),
    # --- timing / IO shaping (the "vulnerable window" knob, section 3.1) ----
    "io_delay": _ft(VOID, I64),
    "usleep": _ft(VOID, I64),
    # --- misc ----------------------------------------------------------------
    "printf": _ft(I32, _PTR, varargs=True),
    "puts": _ft(I32, _PTR),
    "exit": _ft(VOID, I32),
    "abort": _ft(VOID),
    "kill_process": _ft(VOID),
    "getpid": _ft(I32),
    "getuid": _ft(I32),
    "rand_range": _ft(I64, I64),
    "input_int": _ft(I64, I64),
    "input_str": _ft(_PTR, I64),
}


def stdlib_prototype(name: str) -> FunctionType:
    """Prototype for a standard external, raising ``KeyError`` if unknown."""
    try:
        return STDLIB_PROTOTYPES[name]
    except KeyError:
        raise KeyError("no stdlib prototype for %r" % name) from None
