"""LLVM-like typed SSA intermediate representation.

This package is the substrate that stands in for LLVM bitcode in the OWL
reproduction (paper section 6.1 operates on "a program's LLVM bitcode in SSA
form").  It provides:

- a small type system (:mod:`repro.ir.types`),
- SSA values, constants and globals (:mod:`repro.ir.values`),
- the instruction set (:mod:`repro.ir.instructions`),
- functions, basic blocks and modules (:mod:`repro.ir.function`,
  :mod:`repro.ir.module`),
- a builder DSL used to write the model target programs
  (:mod:`repro.ir.builder`),
- CFG analyses: dominators, postdominators, control dependence and natural
  loops (:mod:`repro.ir.cfg`),
- a textual printer producing Figure-5-style instruction renderings
  (:mod:`repro.ir.printer`), and
- a structural verifier (:mod:`repro.ir.verifier`).
"""

from repro.ir.types import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VoidType,
    I1,
    I8,
    I32,
    I64,
    U64,
    VOID,
    ptr,
)
from repro.ir.values import (
    Argument,
    Constant,
    ConstantInt,
    GlobalVariable,
    NullPointer,
    SourceLocation,
    Value,
)
from repro.ir.instructions import (
    Alloca,
    BinOp,
    Br,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Ret,
    Store,
)
from repro.ir.function import BasicBlock, ExternalFunction, Function
from repro.ir.module import Module
from repro.ir.builder import IRBuilder
from repro.ir.printer import format_instruction, print_function, print_module
from repro.ir.cfg import ControlFlowInfo
from repro.ir.verifier import IRVerificationError, verify_module

__all__ = [
    "ArrayType",
    "FunctionType",
    "IntType",
    "PointerType",
    "StructType",
    "Type",
    "VoidType",
    "I1",
    "I8",
    "I32",
    "I64",
    "U64",
    "VOID",
    "ptr",
    "Argument",
    "Constant",
    "ConstantInt",
    "GlobalVariable",
    "NullPointer",
    "SourceLocation",
    "Value",
    "Alloca",
    "BinOp",
    "Br",
    "Call",
    "Cast",
    "GetElementPtr",
    "ICmp",
    "Instruction",
    "Load",
    "Ret",
    "Store",
    "BasicBlock",
    "ExternalFunction",
    "Function",
    "Module",
    "IRBuilder",
    "format_instruction",
    "print_function",
    "print_module",
    "ControlFlowInfo",
    "IRVerificationError",
    "verify_module",
]
