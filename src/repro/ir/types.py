"""Type system for the IR.

The type system mirrors the subset of LLVM types the OWL analyses need:
integers of various widths, pointers, fixed-size arrays, named structs,
function types and ``void``.  Sizes are byte-exact (packed structs, no
padding) because the runtime memory model is byte addressable and the
reproduced exploits depend on adjacency of struct fields (e.g. the Apache
bug-25520 one-byte overflow of ``buf->outbuf`` into the neighbouring file
descriptor field, paper Figure 7).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

POINTER_SIZE = 8


class Type:
    """Base class for all IR types."""

    def size(self) -> int:
        """Size of a value of this type in bytes."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)


class VoidType(Type):
    """The type of functions that return nothing."""

    def size(self) -> int:
        return 0

    def __str__(self) -> str:
        return "void"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, VoidType)

    def __hash__(self) -> int:
        return hash("void")


class IntType(Type):
    """A fixed-width integer type such as ``i32`` or ``u64``."""

    def __init__(self, bits: int, signed: bool = True):
        if bits <= 0 or bits % 8 != 0 and bits != 1:
            raise ValueError("integer width must be 1 or a multiple of 8, got %d" % bits)
        self.bits = bits
        self.signed = signed

    def size(self) -> int:
        return max(1, self.bits // 8)

    @property
    def min_value(self) -> int:
        if not self.signed:
            return 0
        return -(1 << (self.bits - 1))

    @property
    def max_value(self) -> int:
        if not self.signed:
            return (1 << self.bits) - 1
        return (1 << (self.bits - 1)) - 1

    def wrap(self, value: int) -> int:
        """Wrap an arbitrary Python int into this type's range (two's complement)."""
        mask = (1 << self.bits) - 1
        value &= mask
        if self.signed and value > self.max_value:
            value -= 1 << self.bits
        return value

    def __str__(self) -> str:
        prefix = "i" if self.signed else "u"
        return "%s%d" % (prefix, self.bits)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IntType)
            and other.bits == self.bits
            and other.signed == self.signed
        )

    def __hash__(self) -> int:
        return hash(("int", self.bits, self.signed))


class PointerType(Type):
    """A pointer to a value of ``pointee`` type."""

    def __init__(self, pointee: Type):
        self.pointee = pointee

    def size(self) -> int:
        return POINTER_SIZE

    def __str__(self) -> str:
        return "%s*" % self.pointee

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PointerType) and other.pointee == self.pointee

    def __hash__(self) -> int:
        return hash(("ptr", self.pointee))


class ArrayType(Type):
    """A fixed-size array ``[count x element]``."""

    def __init__(self, element: Type, count: int):
        if count < 0:
            raise ValueError("array count must be non-negative")
        self.element = element
        self.count = count

    def size(self) -> int:
        return self.element.size() * self.count

    def __str__(self) -> str:
        return "[%d x %s]" % (self.count, self.element)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ArrayType)
            and other.element == self.element
            and other.count == self.count
        )

    def __hash__(self) -> int:
        return hash(("array", self.element, self.count))


class StructType(Type):
    """A named struct with ordered, named fields (packed layout)."""

    def __init__(self, name: str, fields: Sequence[Tuple[str, Type]]):
        self.name = name
        self.fields: List[Tuple[str, Type]] = list(fields)
        names = [field_name for field_name, _ in self.fields]
        if len(set(names)) != len(names):
            raise ValueError("duplicate field name in struct %s" % name)

    def size(self) -> int:
        return sum(field_type.size() for _, field_type in self.fields)

    def field_offset(self, field_name: str) -> int:
        """Byte offset of ``field_name`` from the start of the struct."""
        offset = 0
        for name, field_type in self.fields:
            if name == field_name:
                return offset
            offset += field_type.size()
        raise KeyError("struct %s has no field %r" % (self.name, field_name))

    def field_type(self, field_name: str) -> Type:
        for name, field_type in self.fields:
            if name == field_name:
                return field_type
        raise KeyError("struct %s has no field %r" % (self.name, field_name))

    def field_index(self, field_name: str) -> int:
        for index, (name, _) in enumerate(self.fields):
            if name == field_name:
                return index
        raise KeyError("struct %s has no field %r" % (self.name, field_name))

    def field_at_offset(self, offset: int) -> Optional[str]:
        """Name of the field containing byte ``offset``, or ``None``."""
        position = 0
        for name, field_type in self.fields:
            if position <= offset < position + field_type.size():
                return name
            position += field_type.size()
        return None

    def layout(self) -> List[Tuple[str, int, int]]:
        """Return ``(name, offset, size)`` for every field."""
        result = []
        offset = 0
        for name, field_type in self.fields:
            result.append((name, offset, field_type.size()))
            offset += field_type.size()
        return result

    def __str__(self) -> str:
        return "%%struct.%s" % self.name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, StructType) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("struct", self.name))


class FunctionType(Type):
    """The type of a function: return type plus parameter types."""

    def __init__(self, return_type: Type, param_types: Sequence[Type], varargs: bool = False):
        self.return_type = return_type
        self.param_types: List[Type] = list(param_types)
        self.varargs = varargs

    def size(self) -> int:
        return POINTER_SIZE

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self.param_types)
        if self.varargs:
            params = params + ", ..." if params else "..."
        return "%s (%s)" % (self.return_type, params)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, FunctionType)
            and other.return_type == self.return_type
            and other.param_types == self.param_types
            and other.varargs == self.varargs
        )

    def __hash__(self) -> int:
        return hash(("func", self.return_type, tuple(self.param_types), self.varargs))


VOID = VoidType()
I1 = IntType(1)
I8 = IntType(8)
I16 = IntType(16)
I32 = IntType(32)
I64 = IntType(64)
U8 = IntType(8, signed=False)
U32 = IntType(32, signed=False)
U64 = IntType(64, signed=False)


def ptr(pointee: Type) -> PointerType:
    """Shorthand for :class:`PointerType`."""
    return PointerType(pointee)
