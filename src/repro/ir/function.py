"""Functions, external declarations and basic blocks."""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence, Tuple

from repro.ir.instructions import Instruction
from repro.ir.types import FunctionType, PointerType, Type
from repro.ir.values import Argument, Value


class BasicBlock:
    """A straight-line sequence of instructions ending in a terminator."""

    def __init__(self, name: str, function: "Function"):
        self.name = name
        self.function = function
        self.instructions: List[Instruction] = []

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator():
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None or not term.is_branch():
            return []
        return term.successors()

    def append(self, instruction: Instruction) -> Instruction:
        if self.terminator is not None:
            raise ValueError(
                "cannot append %s after terminator in block %s"
                % (instruction.opcode, self.name)
            )
        instruction.block = self
        self.instructions.append(instruction)
        module = self.function.module
        if module is not None:
            module.register_instruction(instruction)
        return instruction

    def index_of(self, instruction: Instruction) -> int:
        return self.instructions.index(instruction)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def __repr__(self) -> str:
        return "<BasicBlock %s.%s (%d instrs)>" % (
            self.function.name, self.name, len(self.instructions),
        )


class Function(Value):
    """A function with a body ("internal" in Algorithm 1's terms)."""

    def __init__(
        self,
        name: str,
        ftype: FunctionType,
        param_names: Optional[Sequence[str]] = None,
        source_file: str = "<unknown>",
    ):
        super().__init__(PointerType(ftype), name=name)
        self.ftype = ftype
        self.module = None
        self.source_file = source_file
        self.blocks: List[BasicBlock] = []
        names = list(param_names) if param_names else [
            "arg%d" % i for i in range(len(ftype.param_types))
        ]
        if len(names) != len(ftype.param_types):
            raise ValueError("parameter name count mismatch for %s" % name)
        self.arguments: List[Argument] = []
        for index, (pname, ptype) in enumerate(zip(names, ftype.param_types)):
            argument = Argument(ptype, pname, index)
            argument.function = self
            self.arguments.append(argument)

    def return_type(self) -> Type:
        return self.ftype.return_type

    def is_internal(self) -> bool:
        """Whether the function has a body OWL's analyses can descend into."""
        return bool(self.blocks)

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError("function %s has no blocks" % self.name)
        return self.blocks[0]

    def add_block(self, name: str) -> BasicBlock:
        if any(block.name == name for block in self.blocks):
            raise ValueError("duplicate block name %r in %s" % (name, self.name))
        block = BasicBlock(name, self)
        self.blocks.append(block)
        return block

    def get_block(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError("function %s has no block %r" % (self.name, name))

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            for instruction in block.instructions:
                yield instruction

    def first_instruction(self) -> Instruction:
        return self.entry.instructions[0]

    def find_by_line(self, line: int, filename: Optional[str] = None) -> List[Instruction]:
        """All instructions at a given source line (used by test fixtures)."""
        result = []
        for instruction in self.instructions():
            loc = instruction.location
            if loc.line == line and (filename is None or loc.filename == filename):
                result.append(instruction)
        return result

    def short_name(self) -> str:
        return "@%s" % self.name

    def __repr__(self) -> str:
        return "<Function %s %s>" % (self.name, self.ftype)


class ExternalFunction(Value):
    """A declared-only function implemented by the runtime (libc, syscalls).

    External functions are where OWL's five vulnerable-site types live
    (``strcpy``, ``setuid``, ``access``, ``exec``...); the runtime gives each
    a concrete semantics in :mod:`repro.runtime.externals`.
    """

    def __init__(self, name: str, ftype: FunctionType):
        super().__init__(PointerType(ftype), name=name)
        self.ftype = ftype
        self.module = None

    def return_type(self) -> Type:
        return self.ftype.return_type

    def is_internal(self) -> bool:
        return False

    def short_name(self) -> str:
        return "@%s" % self.name

    def __repr__(self) -> str:
        return "<ExternalFunction %s %s>" % (self.name, self.ftype)


CallStackEntry = Tuple[str, str, int]
