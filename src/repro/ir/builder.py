"""A fluent builder for constructing IR modules.

The model target programs (``repro.apps``) are written against this DSL.  It
keeps track of the current insertion block and a current source location so
programs can mirror the line numbers quoted in the paper's figures::

    b = IRBuilder(Module("libsafe"))
    dying = b.global_var("dying", I32)
    f = b.begin_function("stack_check", I32, [("addr", ptr(I8))],
                         source_file="util.c")
    value = b.load(dying, line=145)
    ...
    b.end_function()
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.ir.function import BasicBlock, ExternalFunction, Function
from repro.ir.instructions import (
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Ret,
    Store,
)
from repro.ir.module import Module
from repro.ir.stdlib import STDLIB_PROTOTYPES
from repro.ir.types import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    I1,
    I8,
    I32,
    I64,
    VOID,
)
from repro.ir.values import (
    Argument,
    ConstantInt,
    GlobalVariable,
    NullPointer,
    SourceLocation,
    Value,
)

ParamSpec = Tuple[str, Type]


class IRBuilder:
    """Incrementally builds functions inside a :class:`Module`."""

    def __init__(self, module: Module):
        self.module = module
        self.function: Optional[Function] = None
        self.block: Optional[BasicBlock] = None
        self._current_file = "<unknown>"
        self._current_line = 0

    # ------------------------------------------------------------------
    # module-level pieces

    def struct(self, name: str, fields: Sequence[Tuple[str, Type]]) -> StructType:
        return self.module.add_struct(StructType(name, fields))

    def global_var(self, name: str, value_type: Type, initializer=None) -> GlobalVariable:
        return self.module.add_global(GlobalVariable(name, value_type, initializer))

    def global_string(self, name: str, text: str) -> GlobalVariable:
        data = text.encode() + b"\x00"
        return self.global_var(name, ArrayType(I8, len(data)), data)

    def extern(self, name: str) -> ExternalFunction:
        """Declare (or fetch) a stdlib external by name."""
        if name in self.module.externals:
            return self.module.externals[name]
        return self.module.declare_external(name, STDLIB_PROTOTYPES[name])

    def declare(self, name: str, ftype: FunctionType) -> ExternalFunction:
        return self.module.declare_external(name, ftype)

    # ------------------------------------------------------------------
    # function / block management

    def begin_function(
        self,
        name: str,
        return_type: Type,
        params: Sequence[ParamSpec] = (),
        source_file: Optional[str] = None,
    ) -> Function:
        if self.function is not None:
            raise ValueError(
                "begin_function(%r) while %r is still open" % (name, self.function.name)
            )
        param_names = [p[0] for p in params]
        param_types = [p[1] for p in params]
        ftype = FunctionType(return_type, param_types)
        function = Function(
            name, ftype, param_names, source_file=source_file or self._current_file
        )
        self.module.add_function(function)
        self.function = function
        if source_file:
            self._current_file = source_file
        self.block = function.add_block("entry")
        return function

    def end_function(self) -> Function:
        if self.function is None:
            raise ValueError("end_function() with no open function")
        function = self.function
        for block in function.blocks:
            if block.terminator is None:
                raise ValueError(
                    "block %s.%s lacks a terminator" % (function.name, block.name)
                )
        self.function = None
        self.block = None
        return function

    def add_block(self, name: str) -> BasicBlock:
        """Create a block in the current function without moving insertion."""
        return self._require_function().add_block(name)

    def at(self, block: Union[str, BasicBlock]) -> BasicBlock:
        """Move the insertion point to ``block`` (by name or object)."""
        function = self._require_function()
        if isinstance(block, str):
            block = function.get_block(block)
        if block.function is not function:
            raise ValueError("block %s belongs to another function" % block.name)
        self.block = block
        return block

    def block_here(self, name: str) -> BasicBlock:
        """Create a block and position the builder at it."""
        return self.at(self.add_block(name))

    def arg(self, name: str) -> Argument:
        for argument in self._require_function().arguments:
            if argument.name == name:
                return argument
        raise KeyError(
            "function %s has no parameter %r" % (self._require_function().name, name)
        )

    # ------------------------------------------------------------------
    # source locations

    def set_location(self, filename: Optional[str] = None, line: Optional[int] = None):
        if filename is not None:
            self._current_file = filename
        if line is not None:
            self._current_line = line

    def _place(self, instruction: Instruction, line: Optional[int]) -> Instruction:
        if line is not None:
            self._current_line = line
        instruction.location = SourceLocation(self._current_file, self._current_line)
        self._require_block().append(instruction)
        return instruction

    # ------------------------------------------------------------------
    # constants

    def const(self, type_: IntType, value: int) -> ConstantInt:
        return ConstantInt(type_, value)

    def i1(self, value: int) -> ConstantInt:
        return ConstantInt(I1, value)

    def i8(self, value: int) -> ConstantInt:
        return ConstantInt(I8, value)

    def i32(self, value: int) -> ConstantInt:
        return ConstantInt(I32, value)

    def i64(self, value: int) -> ConstantInt:
        return ConstantInt(I64, value)

    def null(self, pointee: Optional[Type] = None) -> NullPointer:
        return NullPointer(PointerType(pointee) if pointee is not None else None)

    # ------------------------------------------------------------------
    # instructions

    def alloca(self, type_: Type, name: str = "", line: Optional[int] = None) -> Alloca:
        return self._place(Alloca(type_, name=name), line)

    def load(self, pointer: Value, name: str = "", line: Optional[int] = None,
             atomic: bool = False) -> Load:
        return self._place(Load(pointer, name=name, atomic=atomic), line)

    def store(self, value: Union[Value, int], pointer: Value,
              line: Optional[int] = None, atomic: bool = False) -> Store:
        value = self._coerce(value, pointer.type.pointee)
        return self._place(Store(value, pointer, atomic=atomic), line)

    def binop(self, op: str, lhs: Value, rhs: Union[Value, int], name: str = "",
              line: Optional[int] = None) -> BinOp:
        rhs = self._coerce(rhs, lhs.type)
        return self._place(BinOp(op, lhs, rhs, name=name), line)

    def add(self, lhs, rhs, name="", line=None):
        return self.binop("add", lhs, rhs, name=name, line=line)

    def sub(self, lhs, rhs, name="", line=None):
        return self.binop("sub", lhs, rhs, name=name, line=line)

    def mul(self, lhs, rhs, name="", line=None):
        return self.binop("mul", lhs, rhs, name=name, line=line)

    def icmp(self, predicate: str, lhs: Value, rhs: Union[Value, int], name: str = "",
             line: Optional[int] = None) -> ICmp:
        rhs = self._coerce(rhs, lhs.type)
        return self._place(ICmp(predicate, lhs, rhs, name=name), line)

    def br(self, target: Union[str, BasicBlock], line: Optional[int] = None) -> Br:
        return self._place(Br(None, self._resolve_block(target)), line)

    def cond_br(self, condition: Value, true_target, false_target,
                line: Optional[int] = None) -> Br:
        return self._place(
            Br(condition, self._resolve_block(true_target),
               self._resolve_block(false_target)),
            line,
        )

    def call(self, callee, args: Sequence[Union[Value, int]] = (), name: str = "",
             line: Optional[int] = None) -> Call:
        if isinstance(callee, str):
            callee = self._resolve_callee(callee)
        coerced = self._coerce_args(callee, list(args))
        return self._place(Call(callee, coerced, name=name), line)

    def ret(self, value: Optional[Union[Value, int]] = None,
            line: Optional[int] = None) -> Ret:
        function = self._require_function()
        if value is not None:
            value = self._coerce(value, function.ftype.return_type)
        return self._place(Ret(value), line)

    def ret_void(self, line: Optional[int] = None) -> Ret:
        return self.ret(None, line=line)

    def field(self, base: Value, field_name: str, name: str = "",
              line: Optional[int] = None) -> GetElementPtr:
        return self._place(GetElementPtr(base, field=field_name, name=name), line)

    def index(self, base: Value, index: Union[Value, int], name: str = "",
              line: Optional[int] = None) -> GetElementPtr:
        index = self._coerce(index, I64)
        return self._place(GetElementPtr(base, index=index, name=name), line)

    def cast(self, kind: str, value: Value, to_type: Type, name: str = "",
             line: Optional[int] = None) -> Cast:
        return self._place(Cast(kind, value, to_type, name=name), line)

    def atomicrmw(self, op: str, pointer: Value, value: Union[Value, int],
                  name: str = "", line: Optional[int] = None) -> AtomicRMW:
        value = self._coerce(value, pointer.type.pointee)
        return self._place(AtomicRMW(op, pointer, value, name=name), line)

    # ------------------------------------------------------------------
    # composite helpers

    def local(self, type_: Type, name: str, init: Optional[Union[Value, int]] = None,
              line: Optional[int] = None) -> Alloca:
        """An alloca with optional initial store, like a C local declaration."""
        slot = self.alloca(type_, name=name, line=line)
        if init is not None:
            self.store(init, slot, line=line)
        return slot

    # ------------------------------------------------------------------
    # internals

    def _require_function(self) -> Function:
        if self.function is None:
            raise ValueError("no function is open; call begin_function() first")
        return self.function

    def _require_block(self) -> BasicBlock:
        if self.block is None:
            raise ValueError("no insertion block; call at() or block_here() first")
        return self.block

    def _resolve_block(self, target: Union[str, BasicBlock]) -> BasicBlock:
        if isinstance(target, str):
            function = self._require_function()
            try:
                return function.get_block(target)
            except KeyError:
                return function.add_block(target)
        return target

    def _resolve_callee(self, name: str):
        if name in self.module.functions:
            return self.module.functions[name]
        if name in self.module.externals:
            return self.module.externals[name]
        if name in STDLIB_PROTOTYPES:
            return self.extern(name)
        raise KeyError("unknown callee %r" % name)

    def _coerce(self, value: Union[Value, int], expected: Type) -> Value:
        if isinstance(value, Value):
            return value
        if isinstance(value, int):
            if isinstance(expected, IntType):
                return ConstantInt(expected, value)
            if isinstance(expected, PointerType):
                if value == 0:
                    return NullPointer(expected)
                raise TypeError("only 0 may be coerced to a pointer, got %d" % value)
            return ConstantInt(I64, value)
        raise TypeError("cannot use %r as an operand" % (value,))

    def _coerce_args(self, callee, args: List[Union[Value, int]]) -> List[Value]:
        ftype = getattr(callee, "ftype", None)
        if ftype is None and isinstance(callee.type, PointerType):
            pointee = callee.type.pointee
            if isinstance(pointee, FunctionType):
                ftype = pointee
        coerced: List[Value] = []
        for position, arg in enumerate(args):
            if ftype is not None and position < len(ftype.param_types):
                expected = ftype.param_types[position]
            else:
                expected = I64
            coerced.append(self._coerce(arg, expected))
        return coerced
