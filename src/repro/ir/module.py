"""The :class:`Module`: a whole program (functions + globals + structs)."""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Union

from repro.ir.function import ExternalFunction, Function
from repro.ir.instructions import Instruction
from repro.ir.types import FunctionType, StructType
from repro.ir.values import GlobalVariable


class Module:
    """A complete program: functions, external declarations and globals.

    Stands in for the "LLVM bitcode" the paper's analyses consume.  Every
    instruction added to a function registered here receives a module-unique
    ``uid`` so reports can reference instructions the way paper Figure 5
    references ``%632``.
    """

    def __init__(self, name: str):
        self.name = name
        self.functions: Dict[str, Function] = {}
        self.externals: Dict[str, ExternalFunction] = {}
        self.globals: Dict[str, GlobalVariable] = {}
        self.structs: Dict[str, StructType] = {}
        self._next_uid = 1
        self._instructions_by_uid: Dict[int, Instruction] = {}

    # ------------------------------------------------------------------
    # registration

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions or function.name in self.externals:
            raise ValueError("duplicate function %r in module %s" % (function.name, self.name))
        function.module = self
        self.functions[function.name] = function
        for instruction in function.instructions():
            self.register_instruction(instruction)
        return function

    def declare_external(self, name: str, ftype: FunctionType) -> ExternalFunction:
        if name in self.functions:
            raise ValueError("%r already defined as internal function" % name)
        if name in self.externals:
            existing = self.externals[name]
            if existing.ftype != ftype:
                raise ValueError("conflicting redeclaration of external %r" % name)
            return existing
        external = ExternalFunction(name, ftype)
        external.module = self
        self.externals[name] = external
        return external

    def add_global(self, variable: GlobalVariable) -> GlobalVariable:
        if variable.name in self.globals:
            raise ValueError("duplicate global %r in module %s" % (variable.name, self.name))
        variable.module = self
        self.globals[variable.name] = variable
        return variable

    def add_struct(self, struct: StructType) -> StructType:
        if struct.name in self.structs:
            raise ValueError("duplicate struct %r in module %s" % (struct.name, self.name))
        self.structs[struct.name] = struct
        return struct

    def register_instruction(self, instruction: Instruction) -> None:
        if instruction.uid is not None:
            # Adopt a pre-assigned uid (module cloning relies on this: a
            # clone's instructions must keep the original uids so race-report
            # static keys stay valid across the copy).
            self._instructions_by_uid[instruction.uid] = instruction
            self._next_uid = max(self._next_uid, instruction.uid + 1)
            return
        instruction.uid = self._next_uid
        self._next_uid += 1
        self._instructions_by_uid[instruction.uid] = instruction

    # ------------------------------------------------------------------
    # lookup

    def get_function(self, name: str) -> Function:
        try:
            return self.functions[name]
        except KeyError:
            raise KeyError("module %s has no function %r" % (self.name, name)) from None

    def get_callable(self, name: str) -> Union[Function, ExternalFunction]:
        if name in self.functions:
            return self.functions[name]
        if name in self.externals:
            return self.externals[name]
        raise KeyError("module %s has no callable %r" % (self.name, name))

    def get_global(self, name: str) -> GlobalVariable:
        try:
            return self.globals[name]
        except KeyError:
            raise KeyError("module %s has no global %r" % (self.name, name)) from None

    def instruction_by_uid(self, uid: int) -> Instruction:
        return self._instructions_by_uid[uid]

    def instructions(self) -> Iterator[Instruction]:
        for function in self.functions.values():
            for instruction in function.instructions():
                yield instruction

    def find_instructions(
        self, filename: Optional[str] = None, line: Optional[int] = None,
        opcode: Optional[str] = None,
    ) -> List[Instruction]:
        """Locate instructions by source position and/or opcode."""
        result = []
        for instruction in self.instructions():
            loc = instruction.location
            if filename is not None and loc.filename != filename:
                continue
            if line is not None and loc.line != line:
                continue
            if opcode is not None and instruction.opcode != opcode:
                continue
            result.append(instruction)
        return result

    def instruction_count(self) -> int:
        return len(self._instructions_by_uid)

    def __repr__(self) -> str:
        return "<Module %s: %d functions, %d globals>" % (
            self.name, len(self.functions), len(self.globals),
        )
