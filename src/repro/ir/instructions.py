"""The IR instruction set.

The instruction mix matches what ``clang -O0`` emits and what OWL's analyses
consume: locals live in :class:`Alloca` slots accessed through
:class:`Load`/:class:`Store` (so there are no phi nodes), control flow uses
conditional/unconditional :class:`Br`, and address arithmetic uses
:class:`GetElementPtr`.  Instructions are SSA values; Algorithm 1 (paper
section 6.1) propagates corruption through instruction operands.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.ir.types import (
    ArrayType,
    FunctionType,
    IntType,
    PointerType,
    StructType,
    Type,
    VOID,
    I1,
    I64,
)
from repro.ir.values import SourceLocation, UNKNOWN_LOCATION, Value


class Instruction(Value):
    """Base class for all instructions.

    Attributes:
        operands: the value operands, in a fixed per-opcode order.
        block: the owning :class:`repro.ir.function.BasicBlock`.
        location: source position (``file:line``).
        uid: module-unique integer id, assigned when the function is added to
            a module; used by reports ("%632" in paper Figure 5).
    """

    opcode = "instr"

    def __init__(self, type_: Type, operands: Sequence[Value], name: str = ""):
        super().__init__(type_, name=name)
        self.operands: List[Value] = list(operands)
        self.block = None
        self.location: SourceLocation = UNKNOWN_LOCATION
        self.uid: Optional[int] = None

    @property
    def function(self):
        """The owning function, or None if detached."""
        return self.block.function if self.block is not None else None

    def is_terminator(self) -> bool:
        return False

    def is_branch(self) -> bool:
        return False

    def is_call(self) -> bool:
        return False

    def short_name(self) -> str:
        if self.name:
            return "%%%s" % self.name
        if self.uid is not None:
            return "%%%d" % self.uid
        return "%?"

    def describe(self) -> str:
        """One-line description used in reports and exceptions."""
        parts = [self.opcode]
        parts.extend(op.short_name() for op in self.operands)
        return " ".join(parts)

    def __repr__(self) -> str:
        return "<%s %s at %s>" % (type(self).__name__, self.describe(), self.location)


class Alloca(Instruction):
    """Stack allocation of one value of ``allocated_type`` in the current frame."""

    opcode = "alloca"

    def __init__(self, allocated_type: Type, name: str = ""):
        super().__init__(PointerType(allocated_type), [], name=name)
        self.allocated_type = allocated_type

    def describe(self) -> str:
        return "alloca %s" % self.allocated_type


class Load(Instruction):
    """Read a value of the pointee type from a pointer operand."""

    opcode = "load"

    def __init__(self, pointer: Value, name: str = "", atomic: bool = False):
        if not isinstance(pointer.type, PointerType):
            raise TypeError("load requires a pointer operand, got %s" % pointer.type)
        super().__init__(pointer.type.pointee, [pointer], name=name)
        self.atomic = atomic

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    def describe(self) -> str:
        flavor = "load atomic" if self.atomic else "load"
        return "%s %s, %s" % (flavor, self.type, self.pointer.short_name())


class Store(Instruction):
    """Write ``value`` through ``pointer``.  Produces no SSA value."""

    opcode = "store"

    def __init__(self, value: Value, pointer: Value, atomic: bool = False):
        if not isinstance(pointer.type, PointerType):
            raise TypeError("store requires a pointer operand, got %s" % pointer.type)
        super().__init__(VOID, [value, pointer])
        self.atomic = atomic

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def pointer(self) -> Value:
        return self.operands[1]

    def describe(self) -> str:
        flavor = "store atomic" if self.atomic else "store"
        return "%s %s, %s" % (flavor, self.value.short_name(), self.pointer.short_name())


BINARY_OPS = {
    "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
    "and", "or", "xor", "shl", "lshr", "ashr",
}


class BinOp(Instruction):
    """Integer arithmetic / bitwise operation."""

    opcode = "binop"

    def __init__(self, op: str, lhs: Value, rhs: Value, name: str = ""):
        if op not in BINARY_OPS:
            raise ValueError("unknown binary op %r" % op)
        super().__init__(lhs.type, [lhs, rhs], name=name)
        self.op = op

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def describe(self) -> str:
        return "%s %s, %s" % (self.op, self.lhs.short_name(), self.rhs.short_name())


ICMP_PREDICATES = {"eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge"}


class ICmp(Instruction):
    """Integer / pointer comparison producing an ``i1``."""

    opcode = "icmp"

    def __init__(self, predicate: str, lhs: Value, rhs: Value, name: str = ""):
        if predicate not in ICMP_PREDICATES:
            raise ValueError("unknown icmp predicate %r" % predicate)
        super().__init__(I1, [lhs, rhs], name=name)
        self.predicate = predicate

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def describe(self) -> str:
        return "icmp %s %s, %s" % (
            self.predicate, self.lhs.short_name(), self.rhs.short_name(),
        )


class Br(Instruction):
    """Conditional or unconditional branch terminator."""

    opcode = "br"

    def __init__(self, condition: Optional[Value], true_block, false_block=None):
        operands = [] if condition is None else [condition]
        super().__init__(VOID, operands)
        if condition is not None and false_block is None:
            raise ValueError("conditional branch requires two targets")
        self.condition = condition
        self.true_block = true_block
        self.false_block = false_block

    def is_terminator(self) -> bool:
        return True

    def is_branch(self) -> bool:
        return True

    @property
    def is_conditional(self) -> bool:
        return self.condition is not None

    def successors(self) -> List:
        if self.is_conditional:
            return [self.true_block, self.false_block]
        return [self.true_block]

    def describe(self) -> str:
        if self.is_conditional:
            return "br %s %s %s" % (
                self.condition.short_name(), self.true_block.name, self.false_block.name,
            )
        return "br %s" % self.true_block.name


class Call(Instruction):
    """Direct, external, or indirect (function-pointer) call.

    ``callee`` is a :class:`repro.ir.function.Function`, an
    :class:`repro.ir.function.ExternalFunction`, or an arbitrary pointer-typed
    :class:`Value` for indirect calls (paper Figure 2's
    ``file->f_op->fsync(...)`` is an indirect call through a racy pointer).
    """

    opcode = "call"

    def __init__(self, callee, args: Sequence[Value], name: str = ""):
        return_type = self._callee_return_type(callee)
        super().__init__(return_type, list(args), name=name)
        self.callee = callee

    @staticmethod
    def _callee_return_type(callee) -> Type:
        ftype = getattr(callee, "ftype", None)
        if isinstance(ftype, FunctionType):
            return ftype.return_type
        if isinstance(callee.type, PointerType) and isinstance(
            callee.type.pointee, FunctionType
        ):
            return callee.type.pointee.return_type
        raise TypeError("callee %r is not callable" % (callee,))

    def is_call(self) -> bool:
        return True

    @property
    def is_indirect(self) -> bool:
        from repro.ir.function import ExternalFunction, Function

        return not isinstance(self.callee, (Function, ExternalFunction))

    def callee_name(self) -> str:
        from repro.ir.function import ExternalFunction, Function

        if isinstance(self.callee, (Function, ExternalFunction)):
            return self.callee.name
        return "<indirect>"

    def describe(self) -> str:
        args = ", ".join(op.short_name() for op in self.operands)
        name = self.callee_name()
        if name == "<indirect>":
            # The callee value identity must feed the printed form (and so
            # the module digest): two indirect calls through different
            # pointers are different sync surfaces.
            name = "<indirect %s>" % self.callee.short_name()
        return "call %s(%s)" % (name, args)


class Ret(Instruction):
    """Return from the current function."""

    opcode = "ret"

    def __init__(self, value: Optional[Value] = None):
        super().__init__(VOID, [] if value is None else [value])
        self.value = value

    def is_terminator(self) -> bool:
        return True

    def describe(self) -> str:
        if self.value is None:
            return "ret void"
        return "ret %s" % self.value.short_name()


class GetElementPtr(Instruction):
    """Address computation: struct field access and array indexing.

    ``gep base, field=<name>`` resolves a struct field;
    ``gep base, index=<value>`` indexes into an array or does pointer
    arithmetic scaled by the element size.
    """

    opcode = "gep"

    def __init__(
        self,
        base: Value,
        field: Optional[str] = None,
        index: Optional[Value] = None,
        name: str = "",
    ):
        if not isinstance(base.type, PointerType):
            raise TypeError("gep requires a pointer base, got %s" % base.type)
        if (field is None) == (index is None):
            raise ValueError("gep takes exactly one of field= or index=")
        pointee = base.type.pointee
        if field is not None:
            if not isinstance(pointee, StructType):
                raise TypeError("field gep requires pointer-to-struct, got %s" % base.type)
            result_type = PointerType(pointee.field_type(field))
            operands = [base]
        else:
            if isinstance(pointee, ArrayType):
                element = pointee.element
            else:
                element = pointee
            result_type = PointerType(element)
            operands = [base, index]
        super().__init__(result_type, operands, name=name)
        self.field = field

    @property
    def base(self) -> Value:
        return self.operands[0]

    @property
    def index(self) -> Optional[Value]:
        return self.operands[1] if len(self.operands) > 1 else None

    def describe(self) -> str:
        if self.field is not None:
            return "gep %s, .%s" % (self.base.short_name(), self.field)
        return "gep %s, [%s]" % (self.base.short_name(), self.index.short_name())


CAST_KINDS = {"bitcast", "ptrtoint", "inttoptr", "trunc", "zext", "sext"}


class Cast(Instruction):
    """Value reinterpretation between integer and pointer types."""

    opcode = "cast"

    def __init__(self, kind: str, value: Value, to_type: Type, name: str = ""):
        if kind not in CAST_KINDS:
            raise ValueError("unknown cast kind %r" % kind)
        super().__init__(to_type, [value], name=name)
        self.kind = kind

    @property
    def value(self) -> Value:
        return self.operands[0]

    def describe(self) -> str:
        return "%s %s to %s" % (self.kind, self.value.short_name(), self.type)


RMW_OPS = {"add", "sub", "xchg", "and", "or", "xor"}


class AtomicRMW(Instruction):
    """Atomic read-modify-write; returns the old value.

    Used by "fixed" variants of the model programs (e.g. the corrected Apache
    balancer busy counter) to show the races disappearing under the detector.
    """

    opcode = "atomicrmw"

    def __init__(self, op: str, pointer: Value, value: Value, name: str = ""):
        if op not in RMW_OPS:
            raise ValueError("unknown atomicrmw op %r" % op)
        if not isinstance(pointer.type, PointerType):
            raise TypeError("atomicrmw requires a pointer operand")
        super().__init__(pointer.type.pointee, [pointer, value], name=name)
        self.op = op

    @property
    def pointer(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]

    def describe(self) -> str:
        return "atomicrmw %s %s, %s" % (
            self.op, self.pointer.short_name(), self.value.short_name(),
        )
