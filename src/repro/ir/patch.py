"""Module cloning and undo-logged patch application.

The repair engine (:mod:`repro.owl.repair`) synthesizes candidate fixes as
IR edits.  A candidate must never touch the module under analysis — gate
runs compare patched vs unpatched behaviour, and other pipeline stages may
still hold references to the original instructions — so every candidate is
applied to a *clone*:

- :func:`clone_module` deep-copies a module while **preserving instruction
  uids**, so race-report static keys (uid pairs) recorded against the
  original remain valid addresses into the clone.  The clone prints
  identically (:func:`repro.ir.printer.print_module`) and therefore hashes
  identically (:func:`repro.owl.cache.module_digest`).
- :class:`ModulePatcher` applies edits (instruction insertion, new globals,
  new external declarations, atomic-flag flips) with an undo journal;
  :meth:`ModulePatcher.revert` restores the clone bit-for-bit — printed
  output and digest equal to the pre-patch state.

Inserted instructions receive fresh uids past the original range, so a
patch never perturbs existing static keys; it *does* change the printed
module and hence the digest, which is what keeps patched modules distinct
cache keys (a stale detector hit on a patched module would make the repair
gates lie).
"""

from __future__ import annotations

import difflib
from typing import List, Optional, Tuple

from repro.ir.function import BasicBlock, ExternalFunction, Function
from repro.ir.instructions import (
    Alloca,
    AtomicRMW,
    BinOp,
    Br,
    Call,
    Cast,
    GetElementPtr,
    ICmp,
    Instruction,
    Load,
    Ret,
    Store,
)
from repro.ir.module import Module
from repro.ir.printer import print_module
from repro.ir.stdlib import STDLIB_PROTOTYPES
from repro.ir.values import GlobalVariable, Value


# ---------------------------------------------------------------------------
# cloning


def _clone_instruction(old: Instruction, env, block_map) -> Instruction:
    def m(value):
        if value is None:
            return None
        return env.get(value, value)  # constants / null stay shared

    if isinstance(old, Alloca):
        return Alloca(old.allocated_type, name=old.name)
    if isinstance(old, Load):
        return Load(m(old.pointer), name=old.name, atomic=old.atomic)
    if isinstance(old, Store):
        return Store(m(old.value), m(old.pointer), atomic=old.atomic)
    if isinstance(old, BinOp):
        return BinOp(old.op, m(old.operands[0]), m(old.operands[1]),
                     name=old.name)
    if isinstance(old, ICmp):
        return ICmp(old.predicate, m(old.operands[0]), m(old.operands[1]),
                    name=old.name)
    if isinstance(old, Br):
        return Br(
            m(old.condition),
            block_map[old.true_block],
            block_map[old.false_block] if old.false_block is not None else None,
        )
    if isinstance(old, Call):
        return Call(m(old.callee), [m(arg) for arg in old.operands],
                    name=old.name)
    if isinstance(old, Ret):
        return Ret(m(old.value))
    if isinstance(old, GetElementPtr):
        if old.field is not None:
            return GetElementPtr(m(old.base), field=old.field, name=old.name)
        return GetElementPtr(m(old.base), index=m(old.index), name=old.name)
    if isinstance(old, Cast):
        return Cast(old.kind, m(old.value), old.type, name=old.name)
    if isinstance(old, AtomicRMW):
        return AtomicRMW(old.op, m(old.pointer), m(old.value), name=old.name)
    raise TypeError("cannot clone instruction %r" % (old,))


def clone_module(module: Module) -> Module:
    """Deep-copy ``module``, preserving instruction uids.

    Structs and constants are shared (immutable); globals, externals,
    functions, blocks and instructions are fresh objects wired to the
    clone, so in-place edits on the clone never leak back.  The verifier's
    cross-module call check holds on the clone because every callee is
    remapped to the clone's own :class:`Function`/:class:`ExternalFunction`.
    ``print_module(clone) == print_module(module)`` by construction.
    """
    clone = Module(module.name)
    clone.structs.update(module.structs)

    env = {}
    for variable in module.globals.values():
        copied = GlobalVariable(variable.name, variable.value_type,
                                variable.initializer)
        clone.add_global(copied)
        env[variable] = copied
    for external in module.externals.values():
        env[external] = clone.declare_external(external.name, external.ftype)
    block_map = {}
    for function in module.functions.values():
        copied = Function(
            function.name,
            function.ftype,
            param_names=[arg.name for arg in function.arguments],
            source_file=function.source_file,
        )
        clone.add_function(copied)
        env[function] = copied
        for old_arg, new_arg in zip(function.arguments, copied.arguments):
            env[old_arg] = new_arg
        for block in function.blocks:
            block_map[block] = copied.add_block(block.name)

    for function in module.functions.values():
        ordered = [
            instruction
            for block in function.blocks
            for instruction in block.instructions
        ]
        # uid order == construction order, and every operand predates its
        # user — so cloning in uid order guarantees operands are mapped
        # before they are needed, independent of block layout.
        ordered.sort(key=lambda instruction: instruction.uid)
        for old in ordered:
            copied = _clone_instruction(old, env, block_map)
            copied.uid = old.uid
            copied.location = old.location
            target = block_map[old.block]
            target.instructions.append(copied)
            copied.block = target
            clone.register_instruction(copied)
            env[old] = copied

    clone._next_uid = module._next_uid
    return clone


# ---------------------------------------------------------------------------
# patch application


class ModulePatcher:
    """Apply IR edits to a module with a journal that can undo them all.

    Supported edits: insert an instruction before/after an anchor, add a
    global, declare a stdlib external, flip an access's atomic flag.
    ``revert()`` restores the module so that its printed form — and hence
    :func:`repro.owl.cache.module_digest` — equals the pre-patch state.
    """

    def __init__(self, module: Module):
        self.module = module
        self._journal: List[Tuple] = []
        #: human-readable edit descriptions, in application order (evidence)
        self.ops: List[str] = []
        self._saved_next_uid = module._next_uid

    # -- edits ---------------------------------------------------------

    def add_global(self, name: str, value_type, initializer=None
                   ) -> GlobalVariable:
        variable = GlobalVariable(name, value_type, initializer)
        self.module.add_global(variable)
        self._journal.append(("global", name))
        self.ops.append("add global @%s : %s" % (name, value_type))
        return variable

    def ensure_external(self, name: str) -> ExternalFunction:
        if name in self.module.externals:
            return self.module.externals[name]
        external = self.module.declare_external(name, STDLIB_PROTOTYPES[name])
        self._journal.append(("external", name))
        self.ops.append("declare @%s" % name)
        return external

    def insert_before(self, anchor: Instruction, instruction: Instruction
                      ) -> Instruction:
        block = anchor.block
        return self._insert(block, block.index_of(anchor), instruction)

    def insert_after(self, anchor: Instruction, instruction: Instruction
                     ) -> Instruction:
        block = anchor.block
        return self._insert(block, block.index_of(anchor) + 1, instruction)

    def set_atomic(self, instruction: Instruction, atomic: bool = True
                   ) -> None:
        previous = instruction.atomic
        instruction.atomic = atomic
        self._journal.append(("atomic", instruction, previous))
        self.ops.append("set %%%d %s atomic=%s" % (
            instruction.uid, instruction.opcode, atomic))

    def _insert(self, block: BasicBlock, index: int,
                instruction: Instruction) -> Instruction:
        if instruction.location.line == 0:
            # Inherit a location from a neighbour so printed IR stays
            # fully located (reports and diffs quote locations).
            neighbour = block.instructions[min(index, len(block.instructions) - 1)]
            instruction.location = neighbour.location
        instruction.block = block
        block.instructions.insert(index, instruction)
        self.module.register_instruction(instruction)
        self._journal.append(("insert", block, instruction))
        self.ops.append("insert %%%d: %s in %s.%s" % (
            instruction.uid, instruction.describe(),
            block.function.name, block.name))
        return instruction

    # -- undo ----------------------------------------------------------

    def revert(self) -> None:
        for entry in reversed(self._journal):
            kind = entry[0]
            if kind == "insert":
                _, block, instruction = entry
                block.instructions.remove(instruction)
                self.module._instructions_by_uid.pop(instruction.uid, None)
                instruction.block = None
            elif kind == "global":
                del self.module.globals[entry[1]]
            elif kind == "external":
                del self.module.externals[entry[1]]
            elif kind == "atomic":
                _, instruction, previous = entry
                instruction.atomic = previous
        self._journal.clear()
        self.ops.clear()
        self.module._next_uid = self._saved_next_uid


def ir_diff(original: Module, patched: Module,
            context: int = 2) -> List[str]:
    """Unified diff of the two modules' printed IR (evidence artifact)."""
    return list(difflib.unified_diff(
        print_module(original).splitlines(),
        print_module(patched).splitlines(),
        fromfile="a/%s" % original.name,
        tofile="b/%s" % patched.name,
        n=context,
        lineterm="",
    ))
