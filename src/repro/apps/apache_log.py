"""Model of the Apache bug-25520 HTML integrity violation (paper Figure 7).

``ap_buffered_log_writer`` shares ``buf->outcnt`` (the log buffer cursor)
between worker threads without synchronization.  Two workers can both pass
the ``len + buf->outcnt > LOG_BUFSIZE`` check with a stale cursor; after one
advances the cursor, the other's ``memcpy`` at http_log.c:1359 lands past the
end of ``buf->outbuf`` — and Apache stores the HTTP-request-log file
descriptor *next to* ``outbuf``, so the overflowing bytes (attacker-chosen
log content) overwrite the descriptor.  The next flush then writes Apache's
own request log into whatever file the corrupted descriptor names — another
user's HTML file: an HTML integrity violation and information leak.

The paper notes this race had been known for years but "people thought the
worst consequence of this bug would just be corrupting Apache's own request
log"; OWL was the first to detect the HTML integrity attack and the authors
the first to build the exploit.  The exploit script here reproduces it: the
crafted log message carries the victim file's descriptor value in the bytes
that land on ``buf->fd``.
"""

from __future__ import annotations

import struct

from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import ArrayType, I32, I64, I8, VOID, ptr
from repro.ir.verifier import verify_module
from repro.owl.vuln_sites import VulnSiteType
from repro.runtime.interpreter import VM
from repro.spec import AttackGroundTruth, ProgramSpec

#: input channels
CH_LOG_MSG1 = 11     # worker 1's log message
CH_LOG_MSG2 = 12     # worker 2's log message
CH_LOG_WINDOW = 13   # IO delay between the size check and the memcpy

LOG_BUFSIZE = 32
MESSAGE_LEN = 20

#: the descriptor the corrupted fd should point at (main opens access.log
#: first => fd 3, then the victim's user.html => fd 4)
VICTIM_FD = 4


def build_into(b: IRBuilder, fixed: bool = False) -> dict:
    """Add the mod_log code to a module; returns named handles.

    With ``fixed=True`` the writer body runs under a mutex (the upstream
    fix shape): check, memcpy and cursor advance become one critical
    section, so the stale-cursor overflow cannot happen and the detector
    reports no race on ``outcnt``.
    """
    module = b.module
    log_struct = b.struct("buffered_log", [
        ("outcnt", I64),
        ("outbuf", ArrayType(I8, LOG_BUFSIZE)),
        ("fd", I32),
        ("spare", ArrayType(I8, 16)),
    ])
    log_global = b.global_var("buffered_log_state", log_struct)
    log_lock = b.global_var("buffered_log_lock", I64, 0) if fixed else None

    # ------------------------------------------------------------------
    # flush_log: drain outbuf to the (possibly corrupted) descriptor

    b.set_location("http_log.c", 1300)
    b.begin_function("flush_log", VOID, [("buf", ptr(log_struct))],
                     source_file="http_log.c")
    count_slot = b.field(b.arg("buf"), "outcnt", line=1302)
    count = b.load(count_slot, line=1302)
    fd = b.load(b.field(b.arg("buf"), "fd", line=1303), line=1303)
    data = b.index(
        b.cast("bitcast", b.field(b.arg("buf"), "outbuf", line=1304), ptr(I8),
               line=1304),
        0, line=1304,
    )
    b.call("write", [fd, data, count], line=1305)
    b.store(0, count_slot, line=1306)
    b.ret_void(line=1307)
    b.end_function()

    # ------------------------------------------------------------------
    # ap_buffered_log_writer (Figure 7, lines 1327-1366)

    b.begin_function("ap_buffered_log_writer", I32,
                     [("handle", ptr(I8)), ("strs", ptr(I8)), ("len", I64)],
                     source_file="http_log.c")
    buf = b.cast("bitcast", b.arg("handle"), ptr(log_struct), name="buf", line=1339)
    if fixed:
        b.call("mutex_lock",
               [b.cast("bitcast", log_lock, ptr(I8), line=1340)], line=1340)
    outcnt_slot = b.field(buf, "outcnt", line=1342)
    outcnt = b.load(outcnt_slot, line=1342)
    total = b.add(b.arg("len"), outcnt, line=1342)
    too_big = b.icmp("sgt", total, LOG_BUFSIZE, line=1342)
    b.cond_br(too_big, "flush", "append", line=1342)
    b.at("flush")
    b.call("flush_log", [buf], line=1343)
    b.br("append", line=1343)
    b.at("append")
    window = b.call("input_int", [b.i64(CH_LOG_WINDOW)], line=1357)
    b.call("io_delay", [window], line=1357)
    cursor = b.load(outcnt_slot, line=1358)               # racy re-read
    outbuf = b.cast("bitcast", b.field(buf, "outbuf", line=1358), ptr(I8), line=1358)
    destination = b.index(outbuf, cursor, name="s", line=1358)
    b.call("memcpy", [destination, b.arg("strs"), b.arg("len")],
           line=1359)                                      # <- vulnerable site
    before = b.load(outcnt_slot, line=1362)
    b.store(b.add(before, b.arg("len"), line=1362), outcnt_slot, line=1362)
    if fixed:
        b.call("mutex_unlock",
               [b.cast("bitcast", log_lock, ptr(I8), line=1363)], line=1363)
    b.ret(b.i32(0), line=1363)
    b.end_function()

    # ------------------------------------------------------------------
    # log worker: one request's logging path

    b.begin_function("log_worker", I32, [("arg", ptr(I8))], source_file="http_log.c")
    channel = b.cast("ptrtoint", b.arg("arg"), I64, line=1400)
    message = b.call("input_str", [channel], line=1401)
    length = b.call("strlen", [message], line=1402)
    handle = b.cast("bitcast", log_global, ptr(I8), line=1403)
    b.call("ap_buffered_log_writer", [handle, message, length], line=1404)
    b.ret(b.i32(0), line=1405)
    b.end_function()

    return {"log_struct": log_struct, "log_global": log_global}


def setup_main_body(b: IRBuilder, handles: dict, line: int = 1500) -> int:
    """Emit the mod_log setup into an open main(): open files, init state."""
    log_global = handles["log_global"]
    access_log = b.global_string("path_access_log", "access.log")
    user_html = b.global_string("path_user_html", "user.html")
    html_content = b.global_string("html_content", "<html>user page</html>")
    fd_log = b.call(
        "open", [b.cast("bitcast", access_log, ptr(I8), line=line), 0], line=line,
    )
    fd_html = b.call(
        "open", [b.cast("bitcast", user_html, ptr(I8), line=line + 1), 0],
        line=line + 1,
    )
    content_ptr = b.cast("bitcast", html_content, ptr(I8), line=line + 2)
    b.call("write", [fd_html, content_ptr, 22], line=line + 2)
    b.store(fd_log, b.field(log_global, "fd", line=line + 3), line=line + 3)
    b.store(0, b.field(log_global, "outcnt", line=line + 3), line=line + 3)
    return line + 4


def build_module(fixed: bool = False) -> Module:
    module = Module("apache_log" if not fixed else "apache_log_fixed")
    b = IRBuilder(module)
    handles = build_into(b, fixed=fixed)
    b.begin_function("main", I32, [], source_file="main.c")
    line = setup_main_body(b, handles, line=1500)
    worker = module.get_function("log_worker")
    one = b.cast("inttoptr", b.i64(CH_LOG_MSG1), ptr(I8), line=line)
    two = b.cast("inttoptr", b.i64(CH_LOG_MSG2), ptr(I8), line=line)
    t1 = b.call("thread_create", [worker, one], line=line + 1)
    t2 = b.call("thread_create", [worker, two], line=line + 2)
    b.call("thread_join", [t1], line=line + 3)
    b.call("thread_join", [t2], line=line + 4)
    b.call("flush_log", [handles["log_global"]], line=line + 5)
    b.ret(b.i32(0), line=line + 6)
    b.end_function()
    verify_module(module)
    return module


# ---------------------------------------------------------------------------
# inputs and predicates


def _plain_message() -> bytes:
    return b"log:entry:alpha:" + b"0" * (MESSAGE_LEN - 16)


def _crafted_message(victim_fd: int = VICTIM_FD) -> bytes:
    """A log message whose overflowing tail lands the victim fd on buf->fd.

    The second writer's memcpy starts at ``outbuf[MESSAGE_LEN]`` (struct
    offset 8 + 20 = 28) and writes MESSAGE_LEN bytes (28..48); ``fd`` lives
    at struct offset 40, i.e. message bytes [12..16).
    """
    message = bytearray(b"log:leak:" + b"x" * (MESSAGE_LEN - 9))
    message[12:16] = struct.pack("<i", victim_fd)
    return bytes(message)


def workload_inputs() -> dict:
    """Ordinary logging traffic: short messages, no crafted bytes."""
    return {
        CH_LOG_MSG1: [_plain_message()],
        CH_LOG_MSG2: [b"log:entry:beta:" + b"1" * (MESSAGE_LEN - 15)],
        CH_LOG_WINDOW: [40],
    }


def exploit_inputs() -> dict:
    return {
        CH_LOG_MSG1: [_plain_message()],
        CH_LOG_MSG2: [_crafted_message()],
        CH_LOG_WINDOW: [120],
    }


def naive_inputs() -> dict:
    return {
        CH_LOG_MSG1: [b"hi"],
        CH_LOG_MSG2: [b"yo"],
        CH_LOG_WINDOW: [1],
    }


def attack_realized(vm: VM) -> bool:
    """Apache's request log bytes ended up inside the user's HTML file."""
    return b"log:" in vm.world.file_content("user.html")


# ---------------------------------------------------------------------------
# the spec


def apache_log_attack() -> AttackGroundTruth:
    return AttackGroundTruth(
        attack_id="apache-25520",
        name="Apache buffered-log HTML integrity violation",
        vuln_type=VulnSiteType.MEMORY_OP,
        site_location=("http_log.c", 1359),
        racy_variable="buffered_log_state.outcnt",
        subtle_inputs=exploit_inputs(),
        naive_inputs=naive_inputs(),
        racing_order="write-first",
        predicate=attack_realized,
        description=(
            "Racy outcnt lets a memcpy overrun outbuf into the adjacent log "
            "file descriptor; the corrupted descriptor redirects Apache's "
            "request log into a user's HTML file."
        ),
        reference="Apache bug 25520, paper Figure 7 / section 8.4",
        subtle_input_summary="Concurrent requests with crafted log lengths",
    )


def build_fixed_module() -> Module:
    return build_module(fixed=True)


def apache_log_fixed_spec() -> ProgramSpec:
    """Ground-truth fixed variant: the writer is mutex-protected."""
    return ProgramSpec(
        name="apache_log_fixed",
        module_factory=build_fixed_module,
        detector="tsan",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(12),
        verify_seeds=range(10),
        max_steps=60_000,
        attacks=[],
        paper_loc="290K",
    )


def apache_log_spec() -> ProgramSpec:
    return ProgramSpec(
        name="apache_log",
        module_factory=build_module,
        detector="tsan",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(12),
        verify_seeds=range(10),
        max_steps=60_000,
        attacks=[apache_log_attack()],
        paper_loc="290K",
    )
