"""Shared building blocks for the model target programs.

Real servers carry large amounts of *benign* shared state that race
detectors flag: statistics counters updated without locks (harmless), and
adhoc flag synchronizations (correct but invisible to happens-before
detectors).  ``add_benign_counters`` and ``add_adhoc_sync_workers`` generate
those at a configurable scale so each model app reproduces the paper's
signal-to-noise ratio: the vulnerable race is a needle in a haystack of
benign reports (paper Finding V).
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.builder import IRBuilder
from repro.ir.types import I32, I64, I8, ptr
from repro.ir.values import GlobalVariable


def add_benign_counters(
    builder: IRBuilder,
    count: int,
    source_file: str,
    first_line: int = 9000,
    iterations: int = 1,
    prefix: str = "stat",
    atomic: bool = False,
) -> str:
    """Create ``count`` racy-but-harmless statistics counters.

    Returns the name of a worker function that bumps every counter
    ``iterations`` times without holding a lock.  Two such workers racing
    produce ``count`` distinct benign race reports (reads and writes of each
    counter), none of which is an adhoc sync and all of which verify as real
    races — the reports that "deeply bury the vulnerable ones".  With
    ``atomic=True`` the bumps use atomic loads/stores — the "fixed"
    upstream shape, under which the detector reports nothing.
    """
    counters: List[GlobalVariable] = []
    for index in range(count):
        counters.append(
            builder.global_var("%s_%s_%d" % (prefix, source_file.split(".")[0], index),
                               I64, 0)
        )
    name = "%s_worker_%s" % (prefix, source_file.split(".")[0])
    builder.begin_function(name, I32, [("arg", ptr(I8))], source_file=source_file)
    line = first_line
    for _ in range(iterations):
        for counter in counters:
            value = builder.load(counter, line=line, atomic=atomic)
            builder.store(builder.add(value, 1, line=line), counter,
                          line=line, atomic=atomic)
            line += 1
    builder.ret(builder.i32(0), line=line)
    builder.end_function()
    return name


def add_adhoc_sync_workers(
    builder: IRBuilder,
    count: int,
    source_file: str,
    first_line: int = 8000,
    prefix: str = "ready",
) -> tuple:
    """Create ``count`` adhoc flag synchronizations.

    Returns ``(setter_name, waiter_name)``.  The setter stores the constant 1
    into each flag; the waiter busy-waits on each flag in a loop whose exit
    branch depends on the read — exactly the section 5.1 pattern OWL's
    adhoc-sync detector recognizes and annotates away.
    """
    flags: List[GlobalVariable] = []
    for index in range(count):
        flags.append(
            builder.global_var("%s_%s_%d" % (prefix, source_file.split(".")[0], index),
                               I32, 0)
        )
    setter = "%s_setter_%s" % (prefix, source_file.split(".")[0])
    builder.begin_function(setter, I32, [("arg", ptr(I8))], source_file=source_file)
    line = first_line
    for flag in flags:
        builder.store(1, flag, line=line)
        line += 1
    builder.ret(builder.i32(0), line=line)
    builder.end_function()

    waiter = "%s_waiter_%s" % (prefix, source_file.split(".")[0])
    builder.begin_function(waiter, I32, [("arg", ptr(I8))], source_file=source_file)
    line = first_line + 100
    for index, flag in enumerate(flags):
        spin = "spin%d" % index
        after = "after%d" % index
        builder.br(spin, line=line)
        builder.at(spin)
        value = builder.load(flag, line=line)
        done = builder.icmp("ne", value, 0, line=line)
        builder.cond_br(done, after, spin, line=line)
        builder.at(after)
        line += 1
    builder.ret(builder.i32(0), line=line)
    builder.end_function()
    return setter, waiter


def spawn_and_join(builder: IRBuilder, function_names, line: int,
                   arg: Optional[object] = None) -> int:
    """Emit thread_create for each function then thread_join for all.

    Returns the next free line number.  Must be called with an open function
    and positioned builder.
    """
    handles = []
    argument = arg if arg is not None else builder.null()
    for name in function_names:
        target = builder.module.get_function(name)
        handle = builder.call("thread_create", [target, argument], line=line)
        handles.append(handle)
        line += 1
    for handle in handles:
        builder.call("thread_join", [handle], line=line)
        line += 1
    return line


def add_publish_races(
    builder: IRBuilder,
    count: int,
    source_file: str,
    first_line: int = 7000,
    iterations: int = 5,
    prefix: str = "job",
) -> tuple:
    """Create ``count`` racy-publish patterns whose races resist verification.

    Each pattern is the classic publish-through-racy-pointer shape: a
    producer initializes a fresh heap object *then* publishes its address
    with an atomic store; a consumer reads the pointer with a plain load (no
    acquire) and writes a field of the published object.  A happens-before
    detector flags the two field writes as a race (the publication edge is
    invisible), but the race verifier can never catch the pair "in the racing
    moment": when the producer is halted at its field write it always holds a
    *newer, unpublished* object than the one the consumer holds, so the
    pending addresses never match.  These model the reports the paper's
    dynamic race verifier eliminates (the R.V.E. column of Table 3) —
    schedule-sensitive races that "can't be reliably reproduced".

    Returns ``(producer_name, consumer_name)``.
    """
    from repro.ir.types import U64

    slots = []
    for index in range(count):
        slots.append(
            builder.global_var("%s_slot_%s_%d" % (prefix, source_file.split(".")[0], index),
                               U64, 0)
        )
    stem = source_file.split(".")[0]
    producer = "%s_producer_%s" % (prefix, stem)
    builder.begin_function(producer, I32, [("arg", ptr(I8))], source_file=source_file)
    line = first_line
    for index, slot in enumerate(slots):
        loop = "produce%d" % index
        done = "produced%d" % index
        i_slot = builder.local(I64, "i%d" % index, 0, line=line)
        builder.br(loop, line=line)
        builder.at(loop)
        i_value = builder.load(i_slot, line=line)
        more = builder.icmp("slt", i_value, iterations, line=line)
        body = "pbody%d" % index
        builder.cond_br(more, body, done, line=line)
        builder.at(body)
        job = builder.call("malloc", [16], line=line + 1)
        field = builder.cast("bitcast", job, ptr(I64), line=line + 1)
        builder.store(7, field, line=line + 1)          # racy field write (W-producer)
        address = builder.cast("ptrtoint", job, I64, line=line + 2)
        builder.store(address, slot, line=line + 2, atomic=True)  # publish
        builder.store(builder.add(i_value, 1, line=line + 3), i_slot, line=line + 3)
        builder.br(loop, line=line + 3)
        builder.at(done)
        line += 10
    builder.ret(builder.i32(0), line=line)
    builder.end_function()

    consumer = "%s_consumer_%s" % (prefix, stem)
    builder.begin_function(consumer, I32, [("arg", ptr(I8))], source_file=source_file)
    line = first_line + 500
    for index, slot in enumerate(slots):
        loop = "consume%d" % index
        done = "consumed%d" % index
        skip = "cskip%d" % index
        i_slot = builder.local(I64, "ci%d" % index, 0, line=line)
        builder.br(loop, line=line)
        builder.at(loop)
        i_value = builder.load(i_slot, line=line)
        more = builder.icmp("slt", i_value, iterations, line=line)
        body = "cbody%d" % index
        builder.cond_br(more, body, done, line=line)
        builder.at(body)
        published = builder.load(slot, line=line + 1)   # plain load: no acquire
        is_set = builder.icmp("ne", published, 0, line=line + 1)
        use = "cuse%d" % index
        builder.cond_br(is_set, use, skip, line=line + 1)
        builder.at(use)
        pointer = builder.cast("inttoptr", published, ptr(I64), line=line + 2)
        builder.store(9, pointer, line=line + 2)        # racy field write (W-consumer)
        builder.br(skip, line=line + 2)
        builder.at(skip)
        builder.store(builder.add(i_value, 1, line=line + 3), i_slot, line=line + 3)
        builder.br(loop, line=line + 3)
        builder.at(done)
        line += 10
    builder.ret(builder.i32(0), line=line)
    builder.end_function()
    return producer, consumer
