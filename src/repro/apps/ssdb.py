"""Model of the SSDB use-after-free concurrency attack (paper Figure 6).

CVE-2016-1000324, the previously unknown attack OWL found.  During server
shutdown, ``~BinlogQueue()`` frees the database object and sets ``db = NULL``
(ssdb.cpp:200) while the log-clean thread is still running.  The clean thread
checks ``logs->db`` at line 359; if the destructor runs *between* that check
and the use inside ``del_range`` (the ``db->Write(...)`` virtual call at
line 347, a function-pointer dereference), the thread dereferences freed
memory — a use-after-free that "could cause log corruption or program crash
if the memory area was reused".

The model mirrors the figure's line numbers.  Alongside the vulnerable race
the program carries ten publish-pattern races (binlog jobs handed between
threads through racy pointers) which the race verifier cannot catch in the
racing moment — reproducing SSDB's Table 3 row: 12 raw reports, 0 adhoc
syncs, 10 eliminated by the race verifier, 2 remaining.
"""

from __future__ import annotations

from repro.apps.support import add_publish_races
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import FunctionType, I32, I64, I8, U64, VOID, ptr
from repro.ir.verifier import verify_module
from repro.owl.vuln_sites import VulnSiteType
from repro.runtime.errors import FaultKind
from repro.runtime.interpreter import VM
from repro.spec import AttackGroundTruth, ProgramSpec

#: input channels
CH_WRITE_DELAY = 3     # IO delay inside del_range's db->Write (the window)
CH_SHUTDOWN_DELAY = 4  # how long main serves before invoking the destructor

CLEAN_ITERATIONS = 6


def build_module() -> Module:
    module = Module("ssdb")
    b = IRBuilder(module)

    binlog_struct = b.struct("BinlogQueue", [
        ("thread_quit", I32),
        ("db", U64),
        ("start", I64),
        ("end", I64),
    ])
    db_struct = b.struct("SSDB_DB", [
        ("write_fn", U64),
        ("records", I64),
    ])
    logs_global = b.global_var("binlog_queue", binlog_struct)

    # ------------------------------------------------------------------
    # the leveldb-backed Write implementation (target of db->Write)

    b.set_location("ssdb.cpp", 100)
    b.begin_function("db_write", I32, [("db", ptr(I8))], source_file="ssdb.cpp")
    db = b.cast("bitcast", b.arg("db"), ptr(db_struct), line=101)
    records = b.field(db, "records", line=102)
    value = b.load(records, line=102)
    b.store(b.add(value, 1, line=102), records, line=102)
    b.ret(b.i32(0), line=103)
    b.end_function()

    # ------------------------------------------------------------------
    # del_range (Figure 6, lines 341-351)

    b.set_location("ssdb.cpp", 341)
    b.begin_function("del_range", I32,
                     [("logs", ptr(binlog_struct)), ("start", I64), ("end", I64)],
                     source_file="ssdb.cpp")
    cursor = b.local(I64, "cursor", b.arg("start"), line=342)
    b.br("while_cond", line=342)
    b.at("while_cond")
    current = b.load(cursor, line=342)
    more = b.icmp("sle", current, b.arg("end"), line=342)
    b.cond_br(more, "body", "out", line=342)
    b.at("body")
    delay = b.call("input_int", [b.i64(CH_WRITE_DELAY)], line=345)
    b.call("io_delay", [delay], line=345)               # disk IO before the write
    db_field = b.field(b.arg("logs"), "db", line=346)
    db_value = b.load(db_field, line=346)
    db_ptr = b.cast("inttoptr", db_value, ptr(db_struct), line=346)
    write_slot = b.field(db_ptr, "write_fn", line=347)
    write_fn = b.load(write_slot, line=347)             # use-after-free read
    callee = b.cast(
        "inttoptr", write_fn, ptr(FunctionType(I32, [ptr(I8)])), line=347,
    )
    b.call(callee, [b.cast("bitcast", db_ptr, ptr(I8), line=347)],
           line=347)                                    # <- vulnerable site
    b.store(b.add(current, 1, line=350), cursor, line=350)
    b.br("while_cond", line=350)
    b.at("out")
    b.ret(b.i32(0), line=351)
    b.end_function()

    # ------------------------------------------------------------------
    # log_clean_thread_func (Figure 6, lines 355-380)

    b.begin_function("log_clean_thread_func", I32, [("arg", ptr(I8))],
                     source_file="ssdb.cpp")
    logs = b.cast("bitcast", b.arg("arg"), ptr(binlog_struct), name="logs", line=356)
    rounds = b.local(I64, "rounds", 0, line=357)
    b.br("while_head", line=358)
    b.at("while_head")
    quit_field = b.field(logs, "thread_quit", line=358)
    quit = b.load(quit_field, line=358)
    keep_going = b.icmp("eq", quit, 0, line=358)
    b.cond_br(keep_going, "check_db", "out", line=358)
    b.at("check_db")
    db_field = b.field(logs, "db", line=359)
    db_value = b.load(db_field, line=359)               # the racy read
    is_null = b.icmp("eq", db_value, 0, line=359)
    b.cond_br(is_null, "out", "work", line=359)
    b.at("work")
    start = b.load(b.field(logs, "start", line=370), line=370)
    end = b.load(b.field(logs, "end", line=370), line=370)
    b.call("del_range", [logs, start, end], line=371)
    done = b.load(rounds, line=375)
    b.store(b.add(done, 1, line=375), rounds, line=375)
    enough = b.icmp("sge", b.load(rounds, line=375), CLEAN_ITERATIONS, line=375)
    b.cond_br(enough, "out", "while_head", line=375)
    b.at("out")
    b.ret(b.i32(0), line=380)
    b.end_function()

    # ------------------------------------------------------------------
    # ~BinlogQueue (Figure 6, lines 190-201)

    b.begin_function("binlog_queue_destructor", VOID, [("logs", ptr(binlog_struct))],
                     source_file="ssdb.cpp")
    db_field = b.field(b.arg("logs"), "db", line=195)
    db_value = b.load(db_field, line=195)
    db_raw = b.cast("inttoptr", db_value, ptr(I8), line=195)
    b.call("free", [db_raw], line=195)
    b.store(0, db_field, line=200)                      # db = NULL (the racy write)
    b.ret_void(line=201)
    b.end_function()

    # ------------------------------------------------------------------
    # binlog job hand-off: ten publish-pattern races (eliminated by the
    # race verifier; they model SSDB's remaining 10 raw reports)

    producer, consumer = add_publish_races(b, 10, "binlog.cpp", first_line=7000)

    # ------------------------------------------------------------------
    # main: server startup, serving, shutdown

    b.begin_function("main", I32, [], source_file="serv.cpp")
    db_raw = b.call("malloc", [db_struct.size()], line=500)
    db = b.cast("bitcast", db_raw, ptr(db_struct), line=500)
    write_addr = b.cast("ptrtoint", module.get_function("db_write"), U64, line=501)
    b.store(write_addr, b.field(db, "write_fn", line=501), line=501)
    b.store(0, b.field(db, "records", line=501), line=501)
    db_as_int = b.cast("ptrtoint", db_raw, U64, line=502)
    b.store(db_as_int, b.field(logs_global, "db", line=502), line=502)
    b.store(0, b.field(logs_global, "thread_quit", line=502), line=502)
    b.store(1, b.field(logs_global, "start", line=503), line=503)
    b.store(2, b.field(logs_global, "end", line=503), line=503)

    clean = module.get_function("log_clean_thread_func")
    logs_raw = b.cast("bitcast", logs_global, ptr(I8), line=504)
    t_clean = b.call("thread_create", [clean, logs_raw], line=505)
    t_prod = b.call("thread_create", [module.get_function(producer), b.null()],
                    line=506)
    t_cons = b.call("thread_create", [module.get_function(consumer), b.null()],
                    line=507)
    shutdown_delay = b.call("input_int", [b.i64(CH_SHUTDOWN_DELAY)], line=508)
    b.call("io_delay", [shutdown_delay], line=508)
    b.call("binlog_queue_destructor", [logs_global], line=509)  # shutdown
    b.call("thread_join", [t_clean], line=510)
    b.call("thread_join", [t_prod], line=511)
    b.call("thread_join", [t_cons], line=512)
    b.ret(b.i32(0), line=513)
    b.end_function()

    verify_module(module)
    return module


# ---------------------------------------------------------------------------
# inputs and predicates


def workload_inputs() -> dict:
    """The testing workload: quick writes, shutdown after serving.

    The attack stays latent here — the shutdown normally lands after the
    clean thread has finished — but the racy accesses still execute in every
    run, so the happens-before detector reports them.
    """
    return {CH_WRITE_DELAY: [5], CH_SHUTDOWN_DELAY: [4000]}


def exploit_inputs() -> dict:
    """Subtle inputs: stretch the IO window inside db->Write so the
    destructor lands between the line-359 check and the line-347 use."""
    return {CH_WRITE_DELAY: [160], CH_SHUTDOWN_DELAY: [60]}


def naive_inputs() -> dict:
    """Shutdown long after the clean thread finished: no window at all."""
    return {CH_WRITE_DELAY: [1], CH_SHUTDOWN_DELAY: [30_000]}


def attack_realized(vm: VM) -> bool:
    """The use-after-free (or the NULL deref through the freed pointer)."""
    return any(
        fault.kind in (FaultKind.USE_AFTER_FREE, FaultKind.NULL_DEREF)
        for fault in vm.faults
    )


# ---------------------------------------------------------------------------
# the spec


def ssdb_spec() -> ProgramSpec:
    attack = AttackGroundTruth(
        attack_id="ssdb-cve-2016-1000324",
        name="SSDB BinlogQueue use-after-free",
        vuln_type=VulnSiteType.NULL_PTR_DEREF,
        site_location=("ssdb.cpp", 347),
        racy_variable="binlog_queue.db",
        subtle_inputs=exploit_inputs(),
        naive_inputs=naive_inputs(),
        racing_order="read-first",
        predicate=attack_realized,
        description=(
            "~BinlogQueue frees db and NULLs the pointer while "
            "log_clean_thread_func is between its check (line 359) and the "
            "db->Write function-pointer dereference (line 347)."
        ),
        reference="CVE-2016-1000324, paper Figure 6 / section 8.4",
        subtle_input_summary="Server shutdown during log compaction",
    )
    return ProgramSpec(
        name="ssdb",
        module_factory=build_module,
        detector="tsan",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(14),
        verify_seeds=range(8),
        max_steps=80_000,
        attacks=[attack],
        paper_loc="67K",
        paper_raw_reports=12,
        paper_remaining_reports=2,
        paper_adhoc_syncs=0,
    )
