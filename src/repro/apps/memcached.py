"""Model of Memcached: a noise-only target (paper Table 3 row Memcached).

Memcached appears in the paper's reduction table with 5 376 raw race
reports, zero adhoc synchronizations, 5 372 eliminated by the race verifier
and 4 remaining — and **no** concurrency attacks.  It demonstrates that
OWL's reductions do not conjure vulnerabilities where there are none.

The model reproduces that shape: item hand-offs between worker threads use
the racy-publish pattern (detected but never caught in the racing moment,
hence eliminated), plus a pair of global statistics counters whose races are
real, verifiable, and harmless.
"""

from __future__ import annotations

from repro.apps.support import add_benign_counters, add_publish_races
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import I32, I8, ptr
from repro.ir.verifier import verify_module
from repro.spec import ProgramSpec


def build_module(fixed: bool = False) -> Module:
    """With ``fixed=True`` the statistics counters bump atomically — the
    upstream fix shape for the only verifiable races in this model; the
    publish hand-offs are unchanged (they never verify)."""
    module = Module("memcached" if not fixed else "memcached_fixed")
    b = IRBuilder(module)
    producer, consumer = add_publish_races(b, 12, "items.c", first_line=7000)
    counters = add_benign_counters(b, 2, "stats.c", first_line=9000,
                                   atomic=fixed)
    b.begin_function("main", I32, [], source_file="memcached.c")
    line = 100
    threads = []
    for name in (producer, consumer, counters, counters):
        target = module.get_function(name)
        threads.append(b.call("thread_create", [target, b.null()], line=line))
        line += 1
    for handle in threads:
        b.call("thread_join", [handle], line=line)
        line += 1
    b.ret(b.i32(0), line=line)
    b.end_function()
    verify_module(module)
    return module


def build_fixed_module() -> Module:
    return build_module(fixed=True)


def memcached_fixed_spec() -> ProgramSpec:
    """Ground-truth fixed variant: atomic counters, no verifiable races."""
    return ProgramSpec(
        name="memcached_fixed",
        module_factory=build_fixed_module,
        detector="tsan",
        entry="main",
        workload_inputs={},
        detect_seeds=range(12),
        verify_seeds=range(8),
        max_steps=60_000,
        attacks=[],
    )


def memcached_spec() -> ProgramSpec:
    return ProgramSpec(
        name="memcached",
        module_factory=build_module,
        detector="tsan",
        entry="main",
        workload_inputs={},
        detect_seeds=range(12),
        verify_seeds=range(8),
        max_steps=60_000,
        attacks=[],
        paper_loc="",
        paper_raw_reports=5376,
        paper_remaining_reports=4,
        paper_adhoc_syncs=0,
    )
