"""Model of the Apache-2.0.48 double free (paper Table 4, "PhP queries").

Concurrent PHP request handlers release a shared request pool through an
unlocked reference count.  Two handlers can both observe ``refcnt == 1``
(the stale read), both decrement, and both take the ``refcnt reached zero``
branch — freeing the pool's buffer twice.  A double free hands the allocator
attacker-influenced state: the classic setup for heap corruption.

The vulnerable site is the ``free`` call, control dependent on the branch
fed by the racy reference-count load.
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import I32, I64, I8, U64, ptr
from repro.ir.verifier import verify_module
from repro.owl.vuln_sites import VulnSiteType
from repro.runtime.errors import FaultKind
from repro.runtime.interpreter import VM
from repro.spec import AttackGroundTruth, ProgramSpec

#: input channels
CH_PHP_KIND = 31     # request kind: 1 = php (releases the pool), 0 = static
CH_PHP_WINDOW = 32   # IO delay between the refcount load and the store
CH_PHP_STAGGER = 33  # per-handler start offset (decorrelates the handlers)


def build_into(b: IRBuilder, fixed: bool = False) -> dict:
    """With ``fixed=True`` the refcount release runs under a mutex — the
    upstream fix shape: no race, no double free."""
    module = b.module
    pool_lock = b.global_var("php_pool_lock", I64, 0)
    pool_struct = b.struct("req_pool", [
        ("refcnt", I64),
        ("data", U64),
    ])
    pool = b.global_var("php_req_pool", pool_struct)

    b.set_location("mod_php.c", 700)
    b.begin_function("php_release_pool", I32, [("p", ptr(pool_struct))],
                     source_file="mod_php.c")
    if fixed:
        b.call("mutex_lock", [b.cast("bitcast", pool_lock, ptr(I8), line=749)],
               line=749)
    refcnt_slot = b.field(b.arg("p"), "refcnt", line=750)
    count = b.load(refcnt_slot, line=750)           # racy read (unless fixed)
    window = b.call("input_int", [b.i64(CH_PHP_WINDOW)], line=750)
    b.call("io_delay", [window], line=750)
    remaining = b.sub(count, 1, line=751)
    b.store(remaining, refcnt_slot, line=751)       # racy write
    empty = b.icmp("eq", remaining, 0, line=752)
    b.cond_br(empty, "destroy", "out", line=752)
    b.at("destroy")
    data = b.load(b.field(b.arg("p"), "data", line=753), line=753)
    b.call("free", [b.cast("inttoptr", data, ptr(I8), line=753)],
           line=753)                                 # <- vulnerable site
    b.br("out", line=753)
    b.at("out")
    if fixed:
        b.call("mutex_unlock",
               [b.cast("bitcast", pool_lock, ptr(I8), line=754)], line=754)
    b.ret(b.i32(0), line=754)
    b.end_function()

    b.begin_function("php_handler", I32, [("arg", ptr(I8))],
                     source_file="mod_php.c")
    stagger = b.call("input_int", [b.i64(CH_PHP_STAGGER)], line=759)
    b.call("io_delay", [stagger], line=759)
    kind = b.call("input_int", [b.i64(CH_PHP_KIND)], line=760)
    is_php = b.icmp("ne", kind, 0, line=760)
    b.cond_br(is_php, "release", "done", line=760)
    b.at("release")
    b.call("php_release_pool", [pool], line=761)
    b.br("done", line=761)
    b.at("done")
    b.ret(b.i32(0), line=762)
    b.end_function()

    return {"pool_struct": pool_struct, "pool": pool}


def setup_main_body(b: IRBuilder, handles: dict, line: int = 800) -> int:
    pool = handles["pool"]
    data = b.call("malloc", [64], line=line)
    b.store(b.cast("ptrtoint", data, I64, line=line),
            b.field(pool, "data", line=line), line=line)
    b.store(1, b.field(pool, "refcnt", line=line + 1), line=line + 1)
    return line + 2


def build_module(fixed: bool = False) -> Module:
    module = Module("apache_php" if not fixed else "apache_php_fixed")
    b = IRBuilder(module)
    handles = build_into(b, fixed=fixed)
    b.begin_function("main", I32, [], source_file="main.c")
    line = setup_main_body(b, handles, line=800)
    handler = module.get_function("php_handler")
    t1 = b.call("thread_create", [handler, b.null()], line=line)
    t2 = b.call("thread_create", [handler, b.null()], line=line + 1)
    b.call("thread_join", [t1], line=line + 2)
    b.call("thread_join", [t2], line=line + 3)
    b.ret(b.i32(0), line=line + 4)
    b.end_function()
    verify_module(module)
    return module


def workload_inputs() -> dict:
    """PHP traffic with a tiny release window: the race is visible to the
    detector but the double free almost never fires."""
    return {CH_PHP_KIND: [1, 1], CH_PHP_WINDOW: [2], CH_PHP_STAGGER: [1, 400]}


def exploit_inputs() -> dict:
    """Two concurrent PHP queries with a stretched release window."""
    return {CH_PHP_KIND: [1, 1], CH_PHP_WINDOW: [150], CH_PHP_STAGGER: [1, 1]}


def naive_inputs() -> dict:
    return {CH_PHP_KIND: [0, 0], CH_PHP_WINDOW: [1], CH_PHP_STAGGER: [1, 1]}


def attack_realized(vm: VM) -> bool:
    return any(fault.kind is FaultKind.DOUBLE_FREE for fault in vm.faults)


def apache_php_attack() -> AttackGroundTruth:
    return AttackGroundTruth(
        attack_id="apache-2.0.48-doublefree",
        name="Apache mod_php pool double free",
        vuln_type=VulnSiteType.MEMORY_OP,
        site_location=("mod_php.c", 753),
        racy_variable="php_req_pool.refcnt",
        subtle_inputs=exploit_inputs(),
        naive_inputs=naive_inputs(),
        racing_order="read-first",
        predicate=attack_realized,
        description=(
            "Two PHP handlers race on the pool refcount; both observe the "
            "final reference and both free the pool buffer."
        ),
        reference="paper Table 4 row Apache-2.0.48",
        subtle_input_summary="PhP queries",
    )


def build_fixed_module() -> Module:
    return build_module(fixed=True)


def apache_php_fixed_spec() -> ProgramSpec:
    """Ground-truth fixed variant: the pool release runs under a mutex."""
    return ProgramSpec(
        name="apache_php_fixed",
        module_factory=build_fixed_module,
        detector="tsan",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(12),
        verify_seeds=range(10),
        max_steps=40_000,
        attacks=[],
        paper_loc="290K",
    )


def apache_php_spec() -> ProgramSpec:
    return ProgramSpec(
        name="apache_php",
        module_factory=build_module,
        detector="tsan",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(12),
        verify_seeds=range(10),
        max_steps=40_000,
        attacks=[apache_php_attack()],
        paper_loc="290K",
    )
