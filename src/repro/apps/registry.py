"""Combined program specs and the target registry.

The paper evaluates *programs*, not individual bugs: its Apache target
carries three attacks (bugs 25520, 46215, and the 2.0.48 double free) and
its Linux target two (the uselib NULL function pointer and the 2.6.29
privilege escalation).  ``apache_spec`` and ``linux_spec`` build those
combined modules — all attack code paths plus the target's benign noise —
so the pipeline's per-program counters line up with Tables 2 and 3.

``all_specs`` returns the six evaluated programs in the tables' order.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.apps import apache_balancer, apache_log, apache_php
from repro.apps import linux_proc, linux_uselib
from repro.apps.support import add_adhoc_sync_workers, add_benign_counters, add_publish_races
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import I32, I8, ptr
from repro.ir.verifier import verify_module
from repro.spec import ProgramSpec


def build_apache_module(noise: bool = True) -> Module:
    """One httpd: mod_log + mod_proxy_balancer + mod_php + benign noise."""
    module = Module("apache")
    b = IRBuilder(module)
    log_handles = apache_log.build_into(b)
    balancer_handles = apache_balancer.build_into(b)
    php_handles = apache_php.build_into(b)
    extra: List[str] = []
    if noise:
        # Table 3 row Apache: 7 adhoc synchronizations.
        setter, waiter = add_adhoc_sync_workers(b, 7, "worker.c", first_line=8000)
        producer, consumer = add_publish_races(b, 16, "apr_pools.c",
                                               first_line=7000)
        counters = add_benign_counters(b, 3, "scoreboard.c", first_line=9000)
        extra = [setter, waiter, producer, consumer, counters, counters]
    b.begin_function("main", I32, [], source_file="httpd_main.c")
    line = apache_log.setup_main_body(b, log_handles, line=2000)
    line = apache_balancer.setup_main_body(b, balancer_handles, line=line)
    line = apache_php.setup_main_body(b, php_handles, line=line)
    threads = []

    def spawn(name: str, arg=None) -> None:
        nonlocal line
        target = module.get_function(name)
        argument = arg if arg is not None else b.null()
        threads.append(b.call("thread_create", [target, argument], line=line))
        line += 1

    one = b.cast("inttoptr", b.i64(apache_log.CH_LOG_MSG1), ptr(I8), line=line)
    two = b.cast("inttoptr", b.i64(apache_log.CH_LOG_MSG2), ptr(I8), line=line)
    spawn("log_worker", one)
    spawn("log_worker", two)
    for _ in range(3):
        spawn("completion")
    spawn("dispatcher")
    spawn("php_handler")
    spawn("php_handler")
    for name in extra:
        spawn(name)
    for handle in threads:
        b.call("thread_join", [handle], line=line)
        line += 1
    b.call("flush_log", [log_handles["log_global"]], line=line)
    b.ret(b.i32(0), line=line + 1)
    b.end_function()
    verify_module(module)
    return module


def apache_workload_inputs() -> Dict:
    inputs = {}
    inputs.update(apache_log.workload_inputs())
    inputs.update(apache_balancer.workload_inputs())
    inputs.update(apache_php.workload_inputs())
    return inputs


def _merge_over_workload(specific: Dict) -> Dict:
    """An attack's inputs on top of the combined workload baseline."""
    inputs = apache_workload_inputs()
    inputs.update(specific)
    return inputs


def apache_spec(noise: bool = True) -> ProgramSpec:
    attacks = []
    for attack, module_inputs in (
        (apache_log.apache_log_attack(), apache_log),
        (apache_balancer.apache_balancer_attack(), apache_balancer),
        (apache_php.apache_php_attack(), apache_php),
    ):
        attack.subtle_inputs = _merge_over_workload(attack.subtle_inputs)
        attack.naive_inputs = _merge_over_workload(attack.naive_inputs)
        attacks.append(attack)
    return ProgramSpec(
        name="apache",
        module_factory=lambda: build_apache_module(noise=noise),
        detector="tsan",
        entry="main",
        workload_inputs=apache_workload_inputs(),
        detect_seeds=range(12),
        verify_seeds=range(8),
        max_steps=200_000,
        attacks=attacks,
        paper_loc="290K",
        paper_raw_reports=715,
        paper_remaining_reports=10,
        paper_adhoc_syncs=7,
    )


def build_linux_module(noise: bool = True) -> Module:
    """One kernel: uselib/msync race + credential race + kernel noise."""
    module = Module("linux")
    b = IRBuilder(module)
    uselib_handles = linux_uselib.build_into(b)
    linux_proc.build_into(b)
    extra: List[str] = []
    if noise:
        # Table 3 row Linux: 8 adhoc synchronizations.
        setter, waiter = add_adhoc_sync_workers(b, 8, "kernel_sched.c",
                                                first_line=8000)
        producer, consumer = add_publish_races(b, 20, "kernel_rcu.c",
                                               first_line=7000)
        counters = add_benign_counters(b, 4, "kernel_stat.c", first_line=9000)
        extra = [setter, waiter, producer, consumer, counters, counters]
    b.begin_function("main", I32, [], source_file="init.c")
    line = linux_uselib.setup_main_body(b, uselib_handles, line=900)
    task = module.get_global("current_task")
    b.store(0, b.field(task, "cap_effective", line=line), line=line)
    b.store(1000, b.field(task, "uid", line=line), line=line)
    line += 1
    threads = []
    names = ["sys_msync", "sys_uselib", "install_exec_creds", "sys_setuid"]
    names += extra
    for name in names:
        target = module.get_function(name)
        threads.append(b.call("thread_create", [target, b.null()], line=line))
        line += 1
    for handle in threads:
        b.call("thread_join", [handle], line=line)
        line += 1
    b.ret(b.i32(0), line=line)
    b.end_function()
    verify_module(module)
    return module


def linux_workload_inputs() -> Dict:
    inputs = {}
    inputs.update(linux_uselib.workload_inputs())
    inputs.update(linux_proc.workload_inputs())
    return inputs


def linux_spec(noise: bool = True) -> ProgramSpec:
    def merge(specific: Dict) -> Dict:
        inputs = linux_workload_inputs()
        inputs.update(specific)
        return inputs

    attacks = []
    for attack in (linux_uselib.linux_uselib_attack(),
                   linux_proc.linux_proc_attack()):
        attack.subtle_inputs = merge(attack.subtle_inputs)
        attack.naive_inputs = merge(attack.naive_inputs)
        attacks.append(attack)
    return ProgramSpec(
        name="linux",
        module_factory=lambda: build_linux_module(noise=noise),
        detector="ski",
        entry="main",
        workload_inputs=linux_workload_inputs(),
        detect_seeds=range(16),
        verify_seeds=range(8),
        max_steps=250_000,
        attacks=attacks,
        paper_loc="2.8M",
        paper_raw_reports=24641,
        paper_remaining_reports=1718,
        paper_adhoc_syncs=8,
    )


def all_specs() -> List[ProgramSpec]:
    """The six evaluated programs, in the paper's table order."""
    from repro.apps.chrome import chrome_spec
    from repro.apps.libsafe import libsafe_spec
    from repro.apps.memcached import memcached_spec
    from repro.apps.mysql import mysql_spec
    from repro.apps.ssdb import ssdb_spec

    return [
        apache_spec(),
        chrome_spec(),
        libsafe_spec(),
        linux_spec(),
        memcached_spec(),
        mysql_spec(),
        ssdb_spec(),
    ]


_FACTORIES: Dict[str, Callable[[], ProgramSpec]] = {}


def _ensure_factories() -> Dict[str, Callable[[], ProgramSpec]]:
    if not _FACTORIES:
        from repro.apps.apache_balancer import (
            apache_balancer_fixed_spec, apache_balancer_spec)
        from repro.apps.apache_log import (
            apache_log_fixed_spec, apache_log_spec)
        from repro.apps.apache_php import (
            apache_php_fixed_spec, apache_php_spec)
        from repro.apps.chrome import chrome_spec
        from repro.apps.libsafe import libsafe_fixed_spec, libsafe_spec
        from repro.apps.linux_proc import linux_proc_spec
        from repro.apps.linux_uselib import linux_uselib_spec
        from repro.apps.memcached import (
            memcached_fixed_spec, memcached_spec)
        from repro.apps.mysql import mysql_spec
        from repro.apps.ssdb import ssdb_spec

        _FACTORIES.update({
            "apache": apache_spec,
            "apache_log": apache_log_spec,
            "apache_log_fixed": apache_log_fixed_spec,
            "apache_balancer": apache_balancer_spec,
            "apache_balancer_fixed": apache_balancer_fixed_spec,
            "apache_php": apache_php_spec,
            "apache_php_fixed": apache_php_fixed_spec,
            "chrome": chrome_spec,
            "libsafe": libsafe_spec,
            "libsafe_fixed": libsafe_fixed_spec,
            "linux": linux_spec,
            "linux_uselib": linux_uselib_spec,
            "linux_proc": linux_proc_spec,
            "memcached": memcached_spec,
            "memcached_fixed": memcached_fixed_spec,
            "mysql": mysql_spec,
            "ssdb": ssdb_spec,
        })
    return _FACTORIES


def spec_by_name(name: str) -> ProgramSpec:
    """Look up any spec — combined or focused — by its name."""
    try:
        return _ensure_factories()[name]()
    except KeyError:
        raise KeyError("unknown program spec %r" % name) from None


def has_spec(name: str) -> bool:
    """Whether ``name`` resolves here — i.e. worker processes can rebuild it."""
    return name in _ensure_factories()


def known_spec_names() -> List[str]:
    return sorted(_ensure_factories())
