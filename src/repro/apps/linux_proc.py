"""Model of the Linux-2.6.29 privilege-escalation race (paper Table 4).

A credential-handling race in the exec/setuid paths: installing the
credentials of a setuid-root binary transiently raises the task's effective
capability before the kernel drops it back for the unprivileged caller.  A
concurrent ``setuid(0)``-style syscall whose permission check reads the
capability field without synchronization can observe the transient value,
pass the check, and commit root credentials for the attacker's process —
after which the attacker execs a shell as root.  ("We needed to call extra
system calls to get a root shell out of this race", section 3.1 — here the
follow-up ``execve`` is that extra input.)

Kernel target: analyzed with the SKI-style explorer.
"""

from __future__ import annotations

from repro.apps.support import add_benign_counters, add_publish_races
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import I32, I64, I8, U64, ptr
from repro.ir.verifier import verify_module
from repro.owl.vuln_sites import VulnSiteType
from repro.runtime.interpreter import VM
from repro.spec import AttackGroundTruth, ProgramSpec

#: input channels (Table 4: "Syscall parameters")
CH_CAP_WINDOW = 55    # how long the transient capability stays raised
CH_CHECK_DELAY = 56   # when the attacker's setuid check reads the capability


def build_into(b: IRBuilder) -> dict:
    module = b.module
    task_struct = b.struct("task_struct", [
        ("cap_effective", I64),
        ("uid", I64),
    ])
    task = b.global_var("current_task", task_struct)
    root_cred = b.global_var("root_cred", I32, 0)  # uid 0 credential blob

    # ------------------------------------------------------------------
    # install_exec_creds: the transient raise (fs/exec.c)

    b.set_location("fs/exec.c", 1170)
    b.begin_function("install_exec_creds", I32, [("arg", ptr(I8))],
                     source_file="fs/exec.c")
    cap_slot = b.field(task, "cap_effective", line=1174)
    b.store(1, cap_slot, line=1174)                   # transiently privileged
    window = b.call("input_int", [b.i64(CH_CAP_WINDOW)], line=1175)
    b.call("io_delay", [window], line=1175)           # binary loading IO
    b.store(0, cap_slot, line=1177)                   # dropped again
    b.ret(b.i32(0), line=1178)
    b.end_function()

    # ------------------------------------------------------------------
    # sys_setuid: capability check then commit (kernel/sys.c)

    b.set_location("kernel/sys.c", 600)
    b.begin_function("sys_setuid", I32, [("arg", ptr(I8))],
                     source_file="kernel/sys.c")
    delay = b.call("input_int", [b.i64(CH_CHECK_DELAY)], line=604)
    b.call("io_delay", [delay], line=604)
    cap = b.load(b.field(task, "cap_effective", line=605), line=605)  # racy
    allowed = b.icmp("ne", cap, 0, line=605)
    b.cond_br(allowed, "commit", "denied", line=605)
    b.at("commit")
    b.call("commit_creds", [b.cast("bitcast", root_cred, ptr(I8), line=607)],
           line=607)                                   # <- vulnerable site
    shell = b.global_string("root_shell", "/bin/sh")
    b.call("execve", [b.cast("bitcast", shell, ptr(I8), line=608),
                      b.null(), b.null()], line=608)   # the root shell
    b.ret(b.i32(0), line=609)
    b.at("denied")
    b.ret(b.i32(1), line=610)
    b.end_function()

    return {"task": task, "task_struct": task_struct}


def build_module(noise: bool = True) -> Module:
    module = Module("linux_proc")
    b = IRBuilder(module)
    handles = build_into(b)
    extra = []
    if noise:
        producer, consumer = add_publish_races(b, 8, "kernel_workqueue.c",
                                               first_line=7000)
        counters = add_benign_counters(b, 3, "kernel_proc_stat.c",
                                       first_line=9000)
        extra = [producer, consumer, counters, counters]
    b.begin_function("main", I32, [], source_file="init.c")
    line = 950
    task = handles["task"]
    b.store(0, b.field(task, "cap_effective", line=line), line=line)
    b.store(1000, b.field(task, "uid", line=line), line=line)
    names = ["install_exec_creds", "sys_setuid"] + extra
    threads = []
    for name in names:
        target = module.get_function(name)
        threads.append(b.call("thread_create", [target, b.null()], line=line + 1))
        line += 1
    for handle in threads:
        b.call("thread_join", [handle], line=line + 1)
        line += 1
    b.ret(b.i32(0), line=line + 1)
    b.end_function()
    verify_module(module)
    return module


# ---------------------------------------------------------------------------
# inputs and predicates


def workload_inputs() -> dict:
    """Ordinary exec + setuid traffic: check fires long after the drop."""
    return {CH_CAP_WINDOW: [3], CH_CHECK_DELAY: [400]}


def exploit_inputs() -> dict:
    """Syscall parameters landing the check inside the raised window."""
    return {CH_CAP_WINDOW: [200], CH_CHECK_DELAY: [60]}


def naive_inputs() -> dict:
    return {CH_CAP_WINDOW: [1], CH_CHECK_DELAY: [4000]}


def attack_realized(vm: VM) -> bool:
    """Root credentials committed and a shell exec'd as root."""
    return vm.world.got_root_shell()


# ---------------------------------------------------------------------------
# the spec


def linux_proc_attack() -> AttackGroundTruth:
    return AttackGroundTruth(
        attack_id="linux-2.6.29-privesc",
        name="Linux credential race privilege escalation",
        vuln_type=VulnSiteType.PRIVILEGE_OP,
        site_location=("kernel/sys.c", 607),
        racy_variable="current_task.cap_effective",
        subtle_inputs=exploit_inputs(),
        naive_inputs=naive_inputs(),
        racing_order="write-first",
        predicate=attack_realized,
        description=(
            "sys_setuid's capability check reads a transiently raised "
            "cap_effective from a concurrent exec; commit_creds then "
            "installs root credentials for the attacker."
        ),
        reference="paper Table 4 row Linux-2.6.29",
        subtle_input_summary="Syscall parameters",
    )


def linux_proc_spec(noise: bool = True) -> ProgramSpec:
    return ProgramSpec(
        name="linux_proc",
        module_factory=lambda: build_module(noise=noise),
        detector="ski",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(16),
        verify_seeds=range(8),
        max_steps=100_000,
        attacks=[linux_proc_attack()],
        paper_loc="2.8M",
    )
