"""Model of the Apache bug-46215 integer-overflow DoS (paper Figure 8).

Each proxy worker has an unsigned busyness counter ``worker->s->busy``.
Load-balancer threads increment/decrement it without a lock
(proxy_util.c:616-617); the "if (worker && worker->s->busy)" guard can pass
on a stale value, after which the decrement underflows the unsigned counter
to 18,446,744,073,709,551,614 — marking the worker the "busiest" forever.
``find_best_bybusyness`` (proxy_util.c:1138) then never selects it
(``mycandidate = worker`` at line 1195 is control dependent on the corrupted
comparison at line 1192), so the worker is completely starved: a DoS that
collapses Apache's effective capacity.

The paper's race report pairs line 617's decrement with line 1192's read;
OWL's analyzer flags the pointer assignment at 1195 as control dependent on
the corrupted branch — this model reproduces both.
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import ArrayType, I32, I64, I8, U64, VOID, ptr
from repro.ir.verifier import verify_module
from repro.owl.vuln_sites import VulnSiteType
from repro.runtime.interpreter import VM
from repro.spec import AttackGroundTruth, ProgramSpec

#: input channels
CH_BAL_WINDOW = 21    # IO delay between the busy check and the decrement
CH_BAL_REQUESTS = 22  # how many requests the dispatcher routes

WORKER_COUNT = 2
#: the value the paper observed: two underflowing decrements below zero
OVERFLOWED = (1 << 64) - 2


def build_into(b: IRBuilder, fixed: bool = False) -> dict:
    """With ``fixed=True`` the check-and-decrement runs under a mutex — the
    upstream fix shape (apr_atomic usage): the counter cannot underflow."""
    module = b.module
    busy_lock = b.global_var("balancer_lock", I64, 0)
    worker_struct = b.struct("proxy_worker", [
        ("busy", U64),
        ("id", I64),
    ])
    workers = b.global_var("proxy_workers",
                           ArrayType(worker_struct, WORKER_COUNT))
    assigned = b.global_var("requests_assigned", ArrayType(I64, WORKER_COUNT))

    # ------------------------------------------------------------------
    # proxy_balancer_post_request (Figure 8, lines 588-617)

    b.set_location("proxy_util.c", 588)
    b.begin_function("proxy_balancer_post_request", I32,
                     [("worker", ptr(worker_struct))],
                     source_file="proxy_util.c")
    if fixed:
        b.call("mutex_lock", [b.cast("bitcast", busy_lock, ptr(I8), line=615)],
               line=615)
    busy_slot = b.field(b.arg("worker"), "busy", line=616)
    busy = b.load(busy_slot, line=616)
    nonzero = b.icmp("ne", busy, 0, line=616)
    b.cond_br(nonzero, "decrement", "out", line=616)
    b.at("decrement")
    window = b.call("input_int", [b.i64(CH_BAL_WINDOW)], line=616)
    b.call("io_delay", [window], line=616)
    current = b.load(busy_slot, line=617)
    b.store(b.sub(current, 1, line=617), busy_slot, line=617)
    b.br("out", line=617)
    b.at("out")
    if fixed:
        b.call("mutex_unlock",
               [b.cast("bitcast", busy_lock, ptr(I8), line=618)], line=618)
    b.ret(b.i32(0), line=618)
    b.end_function()

    # ------------------------------------------------------------------
    # find_best_bybusyness (Figure 8, lines 1138-1195)

    b.begin_function("find_best_bybusyness", ptr(worker_struct), [],
                     source_file="proxy_util.c")
    candidate = b.local(ptr(worker_struct), "mycandidate",
                        b.null(worker_struct), line=1144)
    index = b.local(I64, "i", 0, line=1150)
    if fixed:
        # the upstream fix serializes the busyness scan against updates
        b.call("mutex_lock", [b.cast("bitcast", busy_lock, ptr(I8), line=1150)],
               line=1150)
    b.br("loop", line=1150)
    b.at("loop")
    i = b.load(index, line=1150)
    more = b.icmp("slt", i, WORKER_COUNT, line=1150)
    b.cond_br(more, "body", "done", line=1150)
    b.at("body")
    worker = b.index(
        b.cast("bitcast", workers, ptr(worker_struct), line=1190), i, line=1190,
    )
    current = b.load(candidate, line=1192)
    current_int = b.cast("ptrtoint", current, I64, line=1192)
    no_candidate = b.icmp("eq", current_int, 0, line=1192)
    b.cond_br(no_candidate, "take", "compare", line=1192)
    b.at("compare")
    worker_busy = b.load(b.field(worker, "busy", line=1193), line=1193)
    candidate_busy = b.load(b.field(current, "busy", line=1193), line=1193)
    less = b.icmp("ult", worker_busy, candidate_busy, line=1193)
    b.cond_br(less, "take", "next", line=1193)
    b.at("take")
    b.store(worker, candidate, line=1195)       # <- vulnerable site
    b.br("next", line=1195)
    b.at("next")
    b.store(b.add(i, 1, line=1196), index, line=1196)
    b.br("loop", line=1196)
    b.at("done")
    if fixed:
        b.call("mutex_unlock",
               [b.cast("bitcast", busy_lock, ptr(I8), line=1197)], line=1197)
    best = b.load(candidate, line=1197)
    b.ret(best, line=1197)
    b.end_function()

    # ------------------------------------------------------------------
    # dispatcher: route requests to the least busy worker

    b.begin_function("dispatcher", I32, [("arg", ptr(I8))],
                     source_file="proxy_util.c")
    total = b.call("input_int", [b.i64(CH_BAL_REQUESTS)], line=1200)
    served = b.local(I64, "served", 0, line=1200)
    b.br("dispatch", line=1201)
    b.at("dispatch")
    count = b.load(served, line=1201)
    more = b.icmp("slt", count, total, line=1201)
    b.cond_br(more, "route", "finished", line=1201)
    b.at("route")
    best = b.call("find_best_bybusyness", [], line=1202)
    best_id = b.load(b.field(best, "id", line=1203), line=1203)
    slot = b.index(b.cast("bitcast", assigned, ptr(I64), line=1204), best_id,
                   line=1204)
    tally = b.load(slot, line=1204)
    b.store(b.add(tally, 1, line=1204), slot, line=1204)
    b.store(b.add(count, 1, line=1205), served, line=1205)
    b.br("dispatch", line=1205)
    b.at("finished")
    b.ret(b.i32(0), line=1206)
    b.end_function()

    # completion thread: reports worker 0's request as done
    b.begin_function("completion", I32, [("arg", ptr(I8))],
                     source_file="proxy_util.c")
    w0 = b.index(b.cast("bitcast", workers, ptr(worker_struct), line=1210), 0,
                 line=1210)
    b.call("proxy_balancer_post_request", [w0], line=1211)
    b.ret(b.i32(0), line=1212)
    b.end_function()

    return {"worker_struct": worker_struct, "workers": workers,
            "assigned": assigned}


def setup_main_body(b: IRBuilder, handles: dict, line: int = 1300) -> int:
    """Initialize the worker table: worker 0 has one in-flight request."""
    worker_struct = handles["worker_struct"]
    workers = handles["workers"]
    base = b.cast("bitcast", workers, ptr(worker_struct), line=line)
    w0 = b.index(base, 0, line=line)
    b.store(1, b.field(w0, "busy", line=line), line=line)
    b.store(0, b.field(w0, "id", line=line), line=line)
    w1 = b.index(base, 1, line=line + 1)
    b.store(0, b.field(w1, "busy", line=line + 1), line=line + 1)
    b.store(1, b.field(w1, "id", line=line + 1), line=line + 1)
    return line + 2


def build_module(fixed: bool = False) -> Module:
    module = Module("apache_balancer" if not fixed else "apache_balancer_fixed")
    b = IRBuilder(module)
    handles = build_into(b, fixed=fixed)
    b.begin_function("main", I32, [], source_file="main.c")
    line = setup_main_body(b, handles, line=1300)
    completion = module.get_function("completion")
    dispatcher = module.get_function("dispatcher")
    threads = []
    for _ in range(3):
        threads.append(b.call("thread_create", [completion, b.null()], line=line))
        line += 1
    threads.append(b.call("thread_create", [dispatcher, b.null()], line=line))
    line += 1
    for handle in threads:
        b.call("thread_join", [handle], line=line)
        line += 1
    b.ret(b.i32(0), line=line)
    b.end_function()
    verify_module(module)
    return module


# ---------------------------------------------------------------------------
# inputs and predicates


def workload_inputs() -> dict:
    return {CH_BAL_WINDOW: [6], CH_BAL_REQUESTS: [6]}


def exploit_inputs() -> dict:
    """Stretch the check-to-decrement window so underflows stack up."""
    return {CH_BAL_WINDOW: [120], CH_BAL_REQUESTS: [8]}


def naive_inputs() -> dict:
    return {CH_BAL_WINDOW: [0], CH_BAL_REQUESTS: [2]}


def read_worker_busy(vm: VM, worker_index: int) -> int:
    base = vm.global_address("proxy_workers")
    return vm.memory.read_int(base + worker_index * 16, 8, signed=False)


def read_assigned(vm: VM, worker_index: int) -> int:
    base = vm.global_address("requests_assigned")
    return vm.memory.read_int(base + worker_index * 8, 8, signed=True)


def attack_realized(vm: VM) -> bool:
    """Worker 0's counter underflowed and the balancer starves it."""
    busy = read_worker_busy(vm, 0)
    if busy < (1 << 63):
        return False
    # DoS predicate: every dispatched request avoided the "busiest" worker.
    return read_assigned(vm, 0) == 0 and read_assigned(vm, 1) > 0


# ---------------------------------------------------------------------------
# the spec


def apache_balancer_attack() -> AttackGroundTruth:
    return AttackGroundTruth(
        attack_id="apache-46215",
        name="Apache load-balancer integer-overflow DoS",
        vuln_type=VulnSiteType.NULL_PTR_DEREF,
        site_location=("proxy_util.c", 1195),
        racy_variable="proxy_workers[0].busy",
        subtle_inputs=exploit_inputs(),
        naive_inputs=naive_inputs(),
        racing_order="write-first",
        predicate=attack_realized,
        description=(
            "Racy busy-- underflows the unsigned busyness counter to "
            "18,446,744,073,709,551,614; find_best_bybusyness permanently "
            "skips the 'busiest' worker, starving it of requests."
        ),
        reference="Apache bug 46215, paper Figure 8 / section 8.4",
        subtle_input_summary="Concurrent request completions on one worker",
    )


def build_fixed_module() -> Module:
    return build_module(fixed=True)


def apache_balancer_fixed_spec() -> ProgramSpec:
    """Ground-truth fixed variant: check-and-decrement under a mutex."""
    return ProgramSpec(
        name="apache_balancer_fixed",
        module_factory=build_fixed_module,
        detector="tsan",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(12),
        verify_seeds=range(10),
        max_steps=80_000,
        attacks=[],
        paper_loc="290K",
    )


def apache_balancer_spec() -> ProgramSpec:
    return ProgramSpec(
        name="apache_balancer",
        module_factory=build_module,
        detector="tsan",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(12),
        verify_seeds=range(10),
        max_steps=80_000,
        attacks=[apache_balancer_attack()],
        paper_loc="290K",
    )
