"""Model of the Chrome-6.0.472.58 use-after-free (paper Table 4).

Triggered from JavaScript by ``console.profile()``: the V8 profiler object
is shared between the renderer thread (which starts/stops profiling and
frees the profiler) and the sampling thread (which dereferences it on every
tick) without synchronization.  A stop request can free the profiler while
the sampler is between its NULL check and its use — a use-after-free whose
freed memory is attacker-groomable from script.
"""

from __future__ import annotations

from repro.apps.support import add_adhoc_sync_workers, add_benign_counters, add_publish_races
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import FunctionType, I32, I64, I8, U64, ptr
from repro.ir.verifier import verify_module
from repro.owl.vuln_sites import VulnSiteType
from repro.runtime.errors import FaultKind
from repro.runtime.interpreter import VM
from repro.spec import AttackGroundTruth, ProgramSpec

#: input channels (driven from JS: console.profile / console.profileEnd)
CH_SAMPLE_WINDOW = 61   # sampler delay between its check and its use
CH_STOP_DELAY = 62      # when the renderer stops profiling and frees

SAMPLE_ROUNDS = 5


def build_into(b: IRBuilder) -> dict:
    module = b.module
    profiler_struct = b.struct("v8_profiler", [
        ("tick_fn", U64),
        ("samples", I64),
    ])
    profiler_ptr = b.global_var("active_profiler", U64, 0)

    b.set_location("profiler.cc", 100)
    b.begin_function("record_tick", I32, [("p", ptr(I8))],
                     source_file="profiler.cc")
    profiler = b.cast("bitcast", b.arg("p"), ptr(profiler_struct), line=101)
    samples = b.field(profiler, "samples", line=102)
    count = b.load(samples, line=102)
    b.store(b.add(count, 1, line=102), samples, line=102)
    b.ret(b.i32(0), line=103)
    b.end_function()

    # ------------------------------------------------------------------
    # sampler thread: dereferences the shared profiler on every tick

    b.begin_function("sampler_thread", I32, [("arg", ptr(I8))],
                     source_file="sampler.cc")
    round_slot = b.local(I64, "round", 0, line=200)
    b.br("tick", line=200)
    b.at("tick")
    done = b.load(round_slot, line=201)
    more = b.icmp("slt", done, SAMPLE_ROUNDS, line=201)
    b.cond_br(more, "sample", "out", line=201)
    b.at("sample")
    active = b.load(profiler_ptr, line=205)          # the racy read
    running = b.icmp("ne", active, 0, line=205)
    b.cond_br(running, "use", "skip", line=205)
    b.at("use")
    window = b.call("input_int", [b.i64(CH_SAMPLE_WINDOW)], line=206)
    b.call("io_delay", [window], line=206)           # stack walk in between
    profiler = b.cast("inttoptr", active, ptr(profiler_struct), line=207)
    tick_addr = b.load(b.field(profiler, "tick_fn", line=207),
                       line=207)                     # use-after-free read
    tick = b.cast("inttoptr", tick_addr,
                  ptr(FunctionType(I32, [ptr(I8)])), line=208)
    b.call(tick, [b.cast("bitcast", profiler, ptr(I8), line=208)],
           line=208)                                  # <- vulnerable site
    b.br("skip", line=208)
    b.at("skip")
    b.store(b.add(done, 1, line=209), round_slot, line=209)
    b.br("tick", line=209)
    b.at("out")
    b.ret(b.i32(0), line=210)
    b.end_function()

    # ------------------------------------------------------------------
    # renderer thread: console.profileEnd -> stop and free the profiler

    b.begin_function("renderer_stop_profile", I32, [("arg", ptr(I8))],
                     source_file="renderer.cc")
    delay = b.call("input_int", [b.i64(CH_STOP_DELAY)], line=300)
    b.call("io_delay", [delay], line=300)
    active = b.load(profiler_ptr, line=301)
    b.store(0, profiler_ptr, line=302)               # the racy write
    b.call("free", [b.cast("inttoptr", active, ptr(I8), line=303)], line=303)
    b.ret(b.i32(0), line=304)
    b.end_function()

    return {"profiler_struct": profiler_struct, "profiler_ptr": profiler_ptr}


def build_module(noise: bool = True) -> Module:
    module = Module("chrome")
    b = IRBuilder(module)
    handles = build_into(b)
    extra = []
    if noise:
        setter, waiter = add_adhoc_sync_workers(b, 1, "message_loop.cc",
                                                first_line=8000)
        producer, consumer = add_publish_races(b, 16, "ipc_channel.cc",
                                               first_line=7000)
        counters = add_benign_counters(b, 5, "histograms.cc", first_line=9000)
        extra = [setter, waiter, producer, consumer, counters, counters]
    b.begin_function("main", I32, [], source_file="browser_main.cc")
    line = 400
    # console.profile(): allocate and publish the profiler
    profiler = b.call("malloc", [16], line=line)
    typed = b.cast("bitcast", profiler, ptr(handles["profiler_struct"]),
                   line=line)
    tick_addr = b.cast("ptrtoint", module.get_function("record_tick"), I64,
                       line=line + 1)
    b.store(tick_addr, b.field(typed, "tick_fn", line=line + 1), line=line + 1)
    b.store(0, b.field(typed, "samples", line=line + 1), line=line + 1)
    b.store(b.cast("ptrtoint", profiler, I64, line=line + 2),
            handles["profiler_ptr"], line=line + 2)
    names = ["sampler_thread", "renderer_stop_profile"] + extra
    threads = []
    for name in names:
        target = module.get_function(name)
        threads.append(b.call("thread_create", [target, b.null()], line=line + 3))
        line += 1
    for handle in threads:
        b.call("thread_join", [handle], line=line + 3)
        line += 1
    b.ret(b.i32(0), line=line + 3)
    b.end_function()
    verify_module(module)
    return module


# ---------------------------------------------------------------------------
# inputs and predicates


def workload_inputs() -> dict:
    """Typical page: profiling stops long after sampling finished."""
    return {CH_SAMPLE_WINDOW: [2], CH_STOP_DELAY: [2000]}


def exploit_inputs() -> dict:
    """JS console.profile with a heavy page: the stack walk stretches the
    sampler's check-to-use window and profileEnd lands inside it."""
    return {CH_SAMPLE_WINDOW: [120], CH_STOP_DELAY: [80]}


def naive_inputs() -> dict:
    return {CH_SAMPLE_WINDOW: [1], CH_STOP_DELAY: [8000]}


def attack_realized(vm: VM) -> bool:
    return any(
        fault.kind in (FaultKind.USE_AFTER_FREE, FaultKind.NULL_DEREF)
        for fault in vm.faults
    )


# ---------------------------------------------------------------------------
# the spec


def chrome_attack() -> AttackGroundTruth:
    return AttackGroundTruth(
        attack_id="chrome-6.0.472.58",
        name="Chrome profiler use-after-free",
        vuln_type=VulnSiteType.NULL_PTR_DEREF,
        site_location=("sampler.cc", 208),
        racy_variable="active_profiler",
        subtle_inputs=exploit_inputs(),
        naive_inputs=naive_inputs(),
        racing_order="read-first",
        predicate=attack_realized,
        description=(
            "console.profileEnd frees the profiler while the sampler is "
            "between its NULL check and its tick dispatch; the sampler "
            "calls through freed memory."
        ),
        reference="paper Table 4 row Chrome-6.0.472.58",
        subtle_input_summary="Js console.profile",
    )


def chrome_spec(noise: bool = True) -> ProgramSpec:
    return ProgramSpec(
        name="chrome",
        module_factory=lambda: build_module(noise=noise),
        detector="tsan",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(12),
        verify_seeds=range(8),
        max_steps=120_000,
        attacks=[chrome_attack()],
        paper_loc="3.4M",
        paper_raw_reports=1715,
        paper_remaining_reports=126,
        paper_adhoc_syncs=1,
    )
