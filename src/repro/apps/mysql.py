"""Model of the two MySQL concurrency attacks (paper Table 4).

**MySQL-5.0.27, bug 24988 — "FLUSH PRIVILEGES" privilege escalation.**
``acl_reload`` rebuilds the in-memory ACL entries while connection threads
keep checking permissions against them, without synchronization.  The
rebuild writes each entry field by field (user id first, privilege mask
second); during the window a low-privilege user's id sits next to the
*previous* occupant's privilege mask — the superuser's.  A concurrent
``check_access`` then grants the attacker full privileges.  The paper
triggered this corruption "with only 18 repeated executions" of the
``flush privileges;`` query.

**MySQL-5.1.35 — "SET PASSWORD" double free.**
Two concurrent ``SET PASSWORD`` statements race on the global password
buffer pointer: both load the same old buffer, both swap in their new one,
and both free the old — a double free.
"""

from __future__ import annotations

from repro.apps.support import add_adhoc_sync_workers, add_benign_counters, add_publish_races
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import ArrayType, I32, I64, I8, U64, ptr
from repro.ir.verifier import verify_module
from repro.owl.vuln_sites import VulnSiteType
from repro.runtime.errors import FaultKind
from repro.runtime.interpreter import VM
from repro.spec import AttackGroundTruth, ProgramSpec

#: input channels
CH_FLUSH_WINDOW = 41    # IO delay between the two entry-field stores
CH_CHECK_USER = 42      # which user id the connection authenticates as
CH_SETPW_WINDOW = 43    # IO delay between password-pointer load and free
CH_SETPW_STAGGER = 44   # per-handler start offset (decorrelates the handlers)

SUPERUSER_ID = 1
ATTACKER_ID = 2
PRIV_ALL = 1
PRIV_NONE = 0


def build_into(b: IRBuilder) -> dict:
    module = b.module
    entry_struct = b.struct("acl_entry", [
        ("user_id", I64),
        ("priv", I64),
    ])
    acl = b.global_var("acl_entries", ArrayType(entry_struct, 2),
                       [[SUPERUSER_ID, PRIV_ALL], [ATTACKER_ID, PRIV_NONE]])
    password_ptr = b.global_var("password_buf", U64, 0)

    # ------------------------------------------------------------------
    # acl_reload: FLUSH PRIVILEGES re-sorts the ACL (sql_acl.cc)

    b.set_location("sql_acl.cc", 1200)
    b.begin_function("acl_reload", I32, [("arg", ptr(I8))],
                     source_file="sql_acl.cc")
    base = b.cast("bitcast", acl, ptr(entry_struct), line=1203)
    # The reload re-sorts entries: the attacker moves into slot 0 (where the
    # superuser's privilege mask still sits) and the superuser into slot 1.
    slot0 = b.index(base, 0, line=1204)
    b.store(ATTACKER_ID, b.field(slot0, "user_id", line=1204), line=1204)
    window = b.call("input_int", [b.i64(CH_FLUSH_WINDOW)], line=1205)
    b.call("io_delay", [window], line=1205)          # table scan I/O
    b.store(PRIV_NONE, b.field(slot0, "priv", line=1206), line=1206)
    slot1 = b.index(base, 1, line=1207)
    b.store(SUPERUSER_ID, b.field(slot1, "user_id", line=1207), line=1207)
    b.store(PRIV_ALL, b.field(slot1, "priv", line=1208), line=1208)
    b.ret(b.i32(0), line=1210)
    b.end_function()

    # ------------------------------------------------------------------
    # check_access: connection-thread permission lookup (sql_parse.cc)

    b.set_location("sql_parse.cc", 970)
    b.begin_function("check_access", I64, [("user", I64)],
                     source_file="sql_parse.cc")
    base = b.cast("bitcast", acl, ptr(entry_struct), line=975)
    index = b.local(I64, "i", 0, line=976)
    b.br("scan", line=976)
    b.at("scan")
    i = b.load(index, line=976)
    more = b.icmp("slt", i, 2, line=976)
    b.cond_br(more, "probe", "miss", line=976)
    b.at("probe")
    entry = b.index(base, i, line=978)
    uid = b.load(b.field(entry, "user_id", line=978), line=978)
    match = b.icmp("eq", uid, b.arg("user"), line=978)
    b.cond_br(match, "hit", "advance", line=978)
    b.at("hit")
    priv = b.load(b.field(entry, "priv", line=980), line=980)   # racy read
    b.ret(priv, line=980)
    b.at("advance")
    b.store(b.add(i, 1, line=981), index, line=981)
    b.br("scan", line=981)
    b.at("miss")
    b.ret(b.i64(PRIV_NONE), line=982)
    b.end_function()

    # connection handler: authenticate, then act with granted privileges
    b.begin_function("connection_handler", I32, [("arg", ptr(I8))],
                     source_file="sql_parse.cc")
    user = b.call("input_int", [b.i64(CH_CHECK_USER)], line=990)
    granted = b.call("check_access", [user], line=991)
    is_all = b.icmp("eq", granted, PRIV_ALL, line=992)
    b.cond_br(is_all, "admin", "plain", line=992)
    b.at("admin")
    b.call("setuid", [b.i32(0)], line=993)            # <- vulnerable site
    grant_stmt = b.global_string(
        "grant_stmt", "UPDATE mysql.user SET Super_priv='Y'",
    )
    b.call("eval", [b.cast("bitcast", grant_stmt, ptr(I8), line=994)], line=994)
    b.br("plain", line=994)
    b.at("plain")
    b.ret(b.i32(0), line=995)
    b.end_function()

    # ------------------------------------------------------------------
    # SET PASSWORD handler (sql_acl.cc change_password path)

    b.begin_function("set_password_handler", I32, [("arg", ptr(I8))],
                     source_file="sql_acl.cc")
    stagger = b.call("input_int", [b.i64(CH_SETPW_STAGGER)], line=1449)
    b.call("io_delay", [stagger], line=1449)
    new_buf = b.call("malloc", [32], line=1450)
    old = b.load(password_ptr, line=1451)              # racy read
    window = b.call("input_int", [b.i64(CH_SETPW_WINDOW)], line=1452)
    b.call("io_delay", [window], line=1452)
    b.store(b.cast("ptrtoint", new_buf, I64, line=1453), password_ptr,
            line=1453)                                 # racy write
    was_set = b.icmp("ne", old, 0, line=1454)
    b.cond_br(was_set, "release", "out", line=1454)
    b.at("release")
    b.call("free", [b.cast("inttoptr", old, ptr(I8), line=1455)],
           line=1455)                                  # <- vulnerable site
    b.br("out", line=1455)
    b.at("out")
    b.ret(b.i32(0), line=1456)
    b.end_function()

    return {"acl": acl, "entry_struct": entry_struct,
            "password_ptr": password_ptr}


def setup_main_body(b: IRBuilder, handles: dict, line: int = 60) -> int:
    password_ptr = handles["password_ptr"]
    initial = b.call("malloc", [32], line=line)
    b.store(b.cast("ptrtoint", initial, I64, line=line), password_ptr, line=line)
    return line + 1


def build_module(noise: bool = True) -> Module:
    module = Module("mysql")
    b = IRBuilder(module)
    handles = build_into(b)
    extra_threads = []
    if noise:
        # MySQL's Table 3 row: 6 adhoc synchronizations; plus publish-pattern
        # hand-offs (eliminated by the race verifier) and benign counters.
        setter, waiter = add_adhoc_sync_workers(b, 6, "mysys.c", first_line=8000)
        producer, consumer = add_publish_races(b, 14, "sql_cache.cc",
                                               first_line=7000)
        counters = add_benign_counters(b, 3, "sql_stat.cc", first_line=9000)
        extra_threads = [setter, waiter, producer, consumer, counters, counters]
    b.begin_function("main", I32, [], source_file="mysqld.cc")
    line = setup_main_body(b, handles, line=60)
    names = [
        "acl_reload", "connection_handler", "connection_handler",
        "set_password_handler", "set_password_handler",
    ] + extra_threads
    handles_list = []
    for name in names:
        target = module.get_function(name)
        handles_list.append(b.call("thread_create", [target, b.null()], line=line))
        line += 1
    for handle in handles_list:
        b.call("thread_join", [handle], line=line)
        line += 1
    b.ret(b.i32(0), line=line)
    b.end_function()
    verify_module(module)
    return module


# ---------------------------------------------------------------------------
# inputs and predicates


def workload_inputs() -> dict:
    """Benchmark traffic: ordinary users, small windows."""
    return {
        CH_FLUSH_WINDOW: [8],
        CH_CHECK_USER: [ATTACKER_ID, ATTACKER_ID],
        CH_SETPW_WINDOW: [4],
        CH_SETPW_STAGGER: [1, 500],
    }


def flush_exploit_inputs() -> dict:
    """FLUSH PRIVILEGES with the connection authenticating mid-reload."""
    return {
        CH_FLUSH_WINDOW: [200],
        CH_CHECK_USER: [ATTACKER_ID, ATTACKER_ID],
        CH_SETPW_WINDOW: [1],
        CH_SETPW_STAGGER: [1, 500],
    }


def setpw_exploit_inputs() -> dict:
    """Two concurrent SET PASSWORD statements with stretched windows."""
    return {
        CH_FLUSH_WINDOW: [1],
        CH_CHECK_USER: [ATTACKER_ID, ATTACKER_ID],
        CH_SETPW_WINDOW: [200],
        CH_SETPW_STAGGER: [1, 1],
    }


def naive_inputs() -> dict:
    return {
        CH_FLUSH_WINDOW: [1],
        CH_CHECK_USER: [ATTACKER_ID, ATTACKER_ID],
        CH_SETPW_WINDOW: [1],
        CH_SETPW_STAGGER: [1, 500],
    }


def flush_attack_realized(vm: VM) -> bool:
    """The non-admin connection got superuser: session uid became root and
    the privileged statement executed."""
    return vm.world.euid == 0 and vm.world.executed("Super_priv")


def setpw_attack_realized(vm: VM) -> bool:
    return any(fault.kind is FaultKind.DOUBLE_FREE for fault in vm.faults)


# ---------------------------------------------------------------------------
# the specs


def mysql_flush_attack() -> AttackGroundTruth:
    return AttackGroundTruth(
        attack_id="mysql-24988",
        name="MySQL FLUSH PRIVILEGES access-permission corruption",
        vuln_type=VulnSiteType.PRIVILEGE_OP,
        site_location=("sql_parse.cc", 993),
        racy_variable="acl_entries",
        subtle_inputs=flush_exploit_inputs(),
        naive_inputs=naive_inputs(),
        racing_order="write-first",
        predicate=flush_attack_realized,
        description=(
            "acl_reload rebuilds ACL entries field by field; a concurrent "
            "check_access reads the attacker's id next to the superuser's "
            "leftover privilege mask and grants full access."
        ),
        reference="MySQL bug 24988, paper Table 4 row MySQL-5.0.27",
        subtle_input_summary="FLUSH PRIVILEGES",
    )


def mysql_setpw_attack() -> AttackGroundTruth:
    return AttackGroundTruth(
        attack_id="mysql-setpassword",
        name="MySQL SET PASSWORD double free",
        vuln_type=VulnSiteType.MEMORY_OP,
        site_location=("sql_acl.cc", 1455),
        racy_variable="password_buf",
        subtle_inputs=setpw_exploit_inputs(),
        naive_inputs=naive_inputs(),
        racing_order="read-first",
        predicate=setpw_attack_realized,
        description=(
            "Two SET PASSWORD handlers load the same old password buffer "
            "and both free it after swapping in their own."
        ),
        reference="paper Table 4 row MySQL-5.1.35",
        subtle_input_summary="SET PASSWORD",
    )


def mysql_spec(noise: bool = True) -> ProgramSpec:
    return ProgramSpec(
        name="mysql",
        module_factory=lambda: build_module(noise=noise),
        detector="tsan",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(12),
        verify_seeds=range(8),
        max_steps=150_000,
        attacks=[mysql_flush_attack(), mysql_setpw_attack()],
        paper_loc="1.5M",
        paper_raw_reports=1123,
        paper_remaining_reports=18,
        paper_adhoc_syncs=6,
    )
