"""Model target programs.

Each module builds an IR program reproducing one studied target's concurrency
bug(s) — code shape, line numbers, call-stack structure and bug-to-attack
propagation distance all mirror the paper's figures — plus parameterized
benign shared state (stats counters, adhoc synchronizations) so that raw
detectors bury the vulnerable races in benign reports at ratios comparable to
the paper's Table 1.

The inventory (paper section 8): Apache (bugs 25520 and 46215), Chrome,
Libsafe, Linux (uselib/msync and a proc-race privilege escalation), Memcached
(benign-only), MySQL (bugs 24988 and 44060-style), and SSDB
(CVE-2016-1000324).

Imports are lazy (PEP 562) so that a single app can be loaded in isolation.
"""

_EXPORTS = {
    "libsafe_spec": ("repro.apps.libsafe", "libsafe_spec"),
    "ssdb_spec": ("repro.apps.ssdb", "ssdb_spec"),
    "apache_log_spec": ("repro.apps.apache_log", "apache_log_spec"),
    "apache_balancer_spec": ("repro.apps.apache_balancer", "apache_balancer_spec"),
    "mysql_spec": ("repro.apps.mysql", "mysql_spec"),
    "linux_uselib_spec": ("repro.apps.linux_uselib", "linux_uselib_spec"),
    "linux_proc_spec": ("repro.apps.linux_proc", "linux_proc_spec"),
    "chrome_spec": ("repro.apps.chrome", "chrome_spec"),
    "memcached_spec": ("repro.apps.memcached", "memcached_spec"),
    "all_specs": ("repro.apps.registry", "all_specs"),
    "apache_spec": ("repro.apps.registry", "apache_spec"),
    "linux_spec": ("repro.apps.registry", "linux_spec"),
    "spec_by_name": ("repro.apps.registry", "spec_by_name"),
}

__all__ = list(_EXPORTS)


def __getattr__(name):
    try:
        module_name, attribute = _EXPORTS[name]
    except KeyError:
        raise AttributeError("module %r has no attribute %r" % (__name__, name))
    import importlib

    module = importlib.import_module(module_name)
    return getattr(module, attribute)
