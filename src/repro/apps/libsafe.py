"""Model of the Libsafe concurrency attack (paper Figure 1, section 4.3).

Libsafe intercepts libc memory functions to detect buffer overflows.  When a
thread detects an overflow it calls ``libsafe_die()``, which sets the global
flag ``dying`` and kills the process "shortly".  Access to ``dying`` is not
protected by a mutex: between the store at util.c:1640 and the kill, another
thread calling ``libsafe_strcpy`` reads ``dying`` at util.c:145, *bypasses*
the stack-overflow check (``return 0`` at util.c:146), and runs an unchecked
``strcpy`` at intercept.c:165 — a stack overflow that overwrites the
adjacent handler slot and injects attacker code.

The model mirrors the figure's line numbers so OWL's reports can be compared
with paper Figures 4 and 5 verbatim.  Alongside the vulnerable race the
program carries two benign races (a request counter and a length statistic),
matching the paper's three total race reports for Libsafe (Table 1/3).
"""

from __future__ import annotations

from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import ArrayType, FunctionType, I32, I64, I8, U64, VOID, ptr
from repro.ir.verifier import verify_module
from repro.owl.vuln_sites import VulnSiteType
from repro.runtime.interpreter import VM
from repro.spec import AttackGroundTruth, ProgramSpec

#: input channels
CH_WORKER1 = 1      # first worker's request payload
CH_WORKER2 = 2      # second worker's request payload
CH_KILL_DELAY = 9   # io delay between dying=1 and the process kill

FRAME_BUF_SIZE = 16


def build_module(fixed: bool = False) -> Module:
    """Build the Libsafe model.

    With ``fixed=True`` the ``dying`` flag is accessed atomically
    (release/acquire), the upstream fix shape: the happens-before detector
    goes quiet on ``dying`` and the check-bypass window closes.
    """
    module = Module("libsafe" if not fixed else "libsafe_fixed")
    b = IRBuilder(module)

    frame_struct = b.struct("vuln_frame", [
        ("buf", ArrayType(I8, FRAME_BUF_SIZE)),
        ("handler", U64),
        ("pad", ArrayType(I8, 16)),
    ])
    dying = b.global_var("dying", I32, 0)
    req_count = b.global_var("req_count", I64, 0)
    last_len = b.global_var("last_len", I64, 0)
    log_buf = b.global_var("log_buf", ArrayType(I8, 128))
    msg_buf = b.global_var("msg_buf", ArrayType(I8, 128), b"request completed")

    # ------------------------------------------------------------------
    # util.c — stack_check and libsafe_die (Figure 1 left/right columns)

    b.set_location("util.c", 1636)
    b.begin_function("libsafe_die", VOID, [], source_file="util.c")
    b.store(1, dying, line=1640, atomic=fixed)
    delay = b.call("input_int", [b.i64(CH_KILL_DELAY)], line=1641)
    b.call("io_delay", [delay], line=1641)
    b.call("kill_process", [], line=1642)
    b.ret_void(line=1642)
    b.end_function()

    b.set_location("util.c", 117)
    b.begin_function("stack_check", I32,
                     [("dst", ptr(I8)), ("src", ptr(I8))], source_file="util.c")
    d = b.load(dying, line=145, atomic=fixed)
    bypass = b.icmp("ne", d, 0, line=145)
    b.cond_br(bypass, "ret0", "check", line=145)
    b.at("ret0")
    b.ret(b.i32(0), line=146)            # Bypass check.
    b.at("check")
    length = b.call("strlen", [b.arg("src")], line=147)
    overflow = b.icmp("ugt", length, FRAME_BUF_SIZE - 1, line=148)
    b.cond_br(overflow, "die", "ok", line=148)
    b.at("die")
    b.call("libsafe_die", [], line=149)
    b.ret(b.i32(1), line=149)
    b.at("ok")
    b.ret(b.i32(0), line=150)
    b.end_function()

    # ------------------------------------------------------------------
    # intercept.c — libsafe_strcpy (Figure 1 bottom)

    b.set_location("intercept.c", 151)
    b.begin_function("libsafe_strcpy", ptr(I8),
                     [("dst", ptr(I8)), ("src", ptr(I8))],
                     source_file="intercept.c")
    check = b.call("stack_check", [b.arg("dst"), b.arg("src")], line=163)
    passed = b.icmp("eq", check, 0, line=164)
    b.cond_br(passed, "copy", "blocked", line=164)
    b.at("copy")
    copied = b.call("strcpy", [b.arg("dst"), b.arg("src")], line=165)
    b.ret(copied, line=165)
    b.at("blocked")
    b.ret(b.null(I8), line=166)
    b.end_function()

    # ------------------------------------------------------------------
    # exploit.c — the victim application linked against Libsafe

    b.set_location("exploit.c", 200)
    b.begin_function("benign_handler", VOID, [], source_file="exploit.c")
    b.ret_void(line=201)
    b.end_function()

    b.begin_function("evil", VOID, [], source_file="exploit.c")
    shell = b.global_string("shell_cmd", "/bin/sh")
    b.call("system", [b.cast("bitcast", shell, ptr(I8), line=211)], line=211)
    b.ret_void(line=212)
    b.end_function()

    b.begin_function("worker", I32, [("arg", ptr(I8))], source_file="exploit.c")
    channel = b.cast("ptrtoint", b.arg("arg"), I64, line=220)
    src = b.call("input_str", [channel], line=221)
    frame_raw = b.call("malloc", [frame_struct.size()], line=222)
    frame = b.cast("bitcast", frame_raw, ptr(frame_struct), name="frame", line=222)
    handler_slot = b.field(frame, "handler", line=223)
    benign = module.get_function("benign_handler")
    benign_addr = b.cast("ptrtoint", benign, I64, line=223)
    b.store(benign_addr, b.cast("bitcast", handler_slot, ptr(I64), line=223), line=223)
    buf_field = b.field(frame, "buf", line=224)
    dst = b.cast("bitcast", buf_field, ptr(I8), line=224)
    b.call("libsafe_strcpy", [dst, src], line=225)
    count = b.load(req_count, line=226)
    b.store(b.add(count, 1, line=226), req_count, line=226)
    length = b.call("strlen", [src], line=227)
    b.store(length, last_len, line=227)
    handler = b.load(b.cast("bitcast", handler_slot, ptr(U64), line=228), line=228)
    handler_ptr = b.cast("inttoptr", handler, ptr(FunctionType(VOID, [])), line=229)
    b.call(handler_ptr, [], line=229)
    b.ret(b.i32(0), line=230)
    b.end_function()

    b.begin_function("logger", I32, [("arg", ptr(I8))], source_file="exploit.c")
    length = b.load(last_len, line=300)
    dst = b.index(b.cast("bitcast", log_buf, ptr(I8), line=301), 0, line=301)
    src = b.cast("bitcast", msg_buf, ptr(I8), line=301)
    b.call("memcpy", [dst, src, length], line=301)
    count = b.load(req_count, line=302)
    fmt = b.global_string("log_fmt", "served %d requests")
    b.call("sprintf", [dst, b.cast("bitcast", fmt, ptr(I8), line=303), count],
           line=303)
    b.ret(b.i32(0), line=304)
    b.end_function()

    b.begin_function("main", I32, [], source_file="exploit.c")
    worker = module.get_function("worker")
    logger = module.get_function("logger")
    one = b.cast("inttoptr", b.i64(CH_WORKER1), ptr(I8), line=400)
    two = b.cast("inttoptr", b.i64(CH_WORKER2), ptr(I8), line=400)
    t1 = b.call("thread_create", [worker, one], line=401)
    t2 = b.call("thread_create", [worker, two], line=402)
    t3 = b.call("thread_create", [logger, b.null()], line=403)
    b.call("thread_join", [t1], line=404)
    b.call("thread_join", [t2], line=405)
    b.call("thread_join", [t3], line=406)
    b.ret(b.i32(0), line=407)
    b.end_function()

    verify_module(module)
    return module


# ---------------------------------------------------------------------------
# inputs


def exploit_inputs(evil_address: int) -> dict:
    """The subtle inputs of Table 4: "Loops with strcpy()".

    Worker 1 receives an over-long string that trips the overflow check and
    sends the process into ``libsafe_die`` (opening the vulnerable window);
    worker 2 receives the injection payload: 16 filler bytes followed by the
    address of ``evil`` overwriting the frame's handler slot.
    """
    payload = b"A" * FRAME_BUF_SIZE + evil_address.to_bytes(8, "little")
    return {
        CH_WORKER1: [b"B" * (FRAME_BUF_SIZE + 4)],
        CH_WORKER2: [payload],
        CH_KILL_DELAY: [400],
    }


def workload_inputs() -> dict:
    """The testing workload: ordinary requests plus one oversized one."""
    return {
        CH_WORKER1: [b"C" * (FRAME_BUF_SIZE + 4)],
        CH_WORKER2: [b"hello"],
        CH_KILL_DELAY: [400],
    }


def naive_inputs() -> dict:
    """Inputs that never open the window (both requests are short)."""
    return {
        CH_WORKER1: [b"hi"],
        CH_WORKER2: [b"there"],
        CH_KILL_DELAY: [1],
    }


def attack_realized(vm: VM) -> bool:
    """Code injection succeeded: the attacker's shell command ran."""
    return vm.world.executed("/bin/sh")


# ---------------------------------------------------------------------------
# the spec


def build_fixed_module() -> Module:
    return build_module(fixed=True)


def libsafe_fixed_spec() -> ProgramSpec:
    """Ground-truth fixed variant: the ``dying`` flag is atomic."""
    return ProgramSpec(
        name="libsafe_fixed",
        module_factory=build_fixed_module,
        detector="tsan",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(12),
        verify_seeds=range(10),
        max_steps=60_000,
        attacks=[],
        paper_loc="3.4K",
    )


def libsafe_spec() -> ProgramSpec:
    module = build_module()
    probe = VM(module)
    evil_address = probe.function_address("evil")
    attack = AttackGroundTruth(
        attack_id="libsafe-2.0-16",
        name="Libsafe stack-overflow-check bypass",
        vuln_type=VulnSiteType.MEMORY_OP,
        site_location=("intercept.c", 165),
        racy_variable="dying",
        subtle_inputs=exploit_inputs(evil_address),
        naive_inputs=naive_inputs(),
        racing_order="write-first",
        predicate=attack_realized,
        description=(
            "Race on the 'dying' flag bypasses stack_check(); an unchecked "
            "strcpy() overwrites the handler slot and injects code."
        ),
        reference="paper Figure 1 / Table 4 row Libsafe-2.0-16",
        subtle_input_summary="Loops with strcpy()",
    )
    return ProgramSpec(
        name="libsafe",
        module_factory=build_module,
        detector="tsan",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(12),
        verify_seeds=range(10),
        max_steps=60_000,
        attacks=[attack],
        paper_loc="3.4K",
        paper_raw_reports=3,
        paper_remaining_reports=3,
        paper_adhoc_syncs=0,
    )
