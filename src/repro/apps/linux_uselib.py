"""Model of the Linux uselib()/msync() NULL-function-pointer attack
(paper Figure 2, Table 4 row Linux-2.6.10).

``msync_interval`` checks ``file->f_op && file->f_op->fsync`` and then makes
the indirect call ``file->f_op->fsync(...)``; a concurrent ``do_munmap``
(reached from the ``uselib()`` system call) sets ``file->f_op = NULL``.
Because a disk-IO operation sits between the check and the call, attackers
can craft syscall parameters that stretch the window, land the NULL store
inside it, and steer the kernel into dereferencing (and calling through)
a NULL function pointer — the springboard for arbitrary code execution from
user space (attackers map the zero page and the kernel jumps into it).

This is a *kernel* target: the spec uses the SKI-style schedule explorer,
with each in-flight system call modeled as one kernel thread.
"""

from __future__ import annotations

from repro.apps.support import add_adhoc_sync_workers, add_benign_counters, add_publish_races
from repro.ir.builder import IRBuilder
from repro.ir.module import Module
from repro.ir.types import FunctionType, I32, I64, I8, U64, ptr
from repro.ir.verifier import verify_module
from repro.owl.vuln_sites import VulnSiteType
from repro.runtime.errors import FaultKind
from repro.runtime.interpreter import VM
from repro.spec import AttackGroundTruth, ProgramSpec

#: input channels (the "syscall parameters" of Table 4)
CH_MSYNC_WINDOW = 51   # IO length between the f_op check and the fsync call
CH_MUNMAP_DELAY = 52   # when the uselib()-driven do_munmap fires


def build_into(b: IRBuilder) -> dict:
    module = b.module
    fop_struct = b.struct("file_operations", [
        ("fsync", U64),
    ])
    file_struct = b.struct("file", [
        ("f_op", U64),
    ])
    vma_struct = b.struct("vm_area_struct", [
        ("vm_file", U64),
    ])
    the_file = b.global_var("shared_file", file_struct)
    the_vma = b.global_var("shared_vma", vma_struct)
    the_fops = b.global_var("generic_fops", fop_struct)

    # the real fsync implementation generic_fops.fsync points at
    b.set_location("fs/buffer.c", 300)
    b.begin_function("file_fsync", I32, [("file", ptr(I8))],
                     source_file="fs/buffer.c")
    b.ret(b.i32(0), line=301)
    b.end_function()

    # ------------------------------------------------------------------
    # msync_interval (Figure 2 left column)

    b.set_location("mm/msync.c", 610)
    b.begin_function("msync_interval", I32, [("vma", ptr(vma_struct))],
                     source_file="mm/msync.c")
    file_addr = b.load(b.field(b.arg("vma"), "vm_file", line=620), line=620)
    file = b.cast("inttoptr", file_addr, ptr(file_struct), line=620)
    fop_slot = b.field(file, "f_op", line=621)
    fop_checked = b.load(fop_slot, line=621)               # the racy read
    has_fop = b.icmp("ne", fop_checked, 0, line=621)
    b.cond_br(has_fop, "do_sync", "out", line=621)
    b.at("do_sync")
    window = b.call("input_int", [b.i64(CH_MSYNC_WINDOW)], line=622)
    b.call("io_delay", [window], line=622)                 # disk IO in between
    fop_used = b.load(fop_slot, line=624)                  # re-read (the &&)
    fop = b.cast("inttoptr", fop_used, ptr(fop_struct), line=624)
    fsync_addr = b.load(b.field(fop, "fsync", line=624), line=624)
    fsync = b.cast("inttoptr", fsync_addr,
                   ptr(FunctionType(I32, [ptr(I8)])), line=624)
    err = b.call(fsync, [b.cast("bitcast", file, ptr(I8), line=624)],
                 line=624)                                  # <- vulnerable site
    b.ret(err, line=625)
    b.at("out")
    b.ret(b.i32(0), line=626)
    b.end_function()

    # sys_msync: the syscall entry driving msync_interval
    b.begin_function("sys_msync", I32, [("arg", ptr(I8))],
                     source_file="mm/msync.c")
    b.call("msync_interval", [the_vma], line=700)
    b.ret(b.i32(0), line=701)
    b.end_function()

    # ------------------------------------------------------------------
    # do_munmap (Figure 2 right column), reached from sys_uselib

    b.set_location("mm/mmap.c", 730)
    b.begin_function("do_munmap", I32, [("file", ptr(file_struct))],
                     source_file="mm/mmap.c")
    b.store(0, b.field(b.arg("file"), "f_op", line=735), line=735)  # f_op=NULL
    b.ret(b.i32(0), line=736)
    b.end_function()

    b.begin_function("sys_uselib", I32, [("arg", ptr(I8))],
                     source_file="fs/exec.c")
    delay = b.call("input_int", [b.i64(CH_MUNMAP_DELAY)], line=740)
    b.call("io_delay", [delay], line=740)          # swap IO shaped by attacker
    b.call("do_munmap", [the_file], line=741)
    b.ret(b.i32(0), line=742)
    b.end_function()

    return {"file": the_file, "vma": the_vma, "fops": the_fops,
            "file_struct": file_struct, "fop_struct": fop_struct}


def setup_main_body(b: IRBuilder, handles: dict, line: int = 900) -> int:
    module = b.module
    fops = handles["fops"]
    the_file = handles["file"]
    the_vma = handles["vma"]
    fsync_addr = b.cast("ptrtoint", module.get_function("file_fsync"), I64,
                        line=line)
    b.store(fsync_addr, b.field(fops, "fsync", line=line), line=line)
    fops_addr = b.cast("ptrtoint", fops, I64, line=line + 1)
    b.store(fops_addr, b.field(the_file, "f_op", line=line + 1), line=line + 1)
    file_addr = b.cast("ptrtoint", the_file, I64, line=line + 2)
    b.store(file_addr, b.field(the_vma, "vm_file", line=line + 2), line=line + 2)
    return line + 3


def build_module(noise: bool = True) -> Module:
    module = Module("linux_uselib")
    b = IRBuilder(module)
    handles = build_into(b)
    extra = []
    if noise:
        setter, waiter = add_adhoc_sync_workers(b, 4, "kernel_sched.c",
                                                first_line=8000)
        producer, consumer = add_publish_races(b, 12, "kernel_rcu.c",
                                               first_line=7000)
        counters = add_benign_counters(b, 4, "kernel_stat.c", first_line=9000)
        extra = [setter, waiter, producer, consumer, counters, counters]
    b.begin_function("main", I32, [], source_file="init.c")
    line = setup_main_body(b, handles, line=900)
    names = ["sys_msync", "sys_uselib"] + extra
    threads = []
    for name in names:
        target = module.get_function(name)
        threads.append(b.call("thread_create", [target, b.null()], line=line))
        line += 1
    for handle in threads:
        b.call("thread_join", [handle], line=line)
        line += 1
    b.ret(b.i32(0), line=line)
    b.end_function()
    verify_module(module)
    return module


# ---------------------------------------------------------------------------
# inputs and predicates


def workload_inputs() -> dict:
    """Ordinary msync/uselib traffic: the munmap lands after the sync."""
    return {CH_MSYNC_WINDOW: [4], CH_MUNMAP_DELAY: [600]}


def exploit_inputs() -> dict:
    """Syscall parameters stretching the check-to-use IO window (section
    3.1: "attackers could craft inputs with subtle timings for this IO
    operation and thus enlarged the time window")."""
    return {CH_MSYNC_WINDOW: [250], CH_MUNMAP_DELAY: [60]}


def naive_inputs() -> dict:
    return {CH_MSYNC_WINDOW: [1], CH_MUNMAP_DELAY: [5000]}


def attack_realized(vm: VM) -> bool:
    """The kernel dereferenced/called through the NULLed f_op."""
    return any(fault.kind is FaultKind.NULL_DEREF for fault in vm.faults)


# ---------------------------------------------------------------------------
# the spec


def linux_uselib_attack() -> AttackGroundTruth:
    return AttackGroundTruth(
        attack_id="linux-2.6.10-uselib",
        name="Linux uselib()/msync() NULL function pointer dereference",
        vuln_type=VulnSiteType.NULL_PTR_DEREF,
        site_location=("mm/msync.c", 624),
        racy_variable="shared_file.f_op",
        subtle_inputs=exploit_inputs(),
        naive_inputs=naive_inputs(),
        racing_order="read-first",
        predicate=attack_realized,
        description=(
            "do_munmap NULLs file->f_op between msync_interval's check and "
            "its fsync indirect call; the kernel jumps through NULL, "
            "enabling arbitrary code execution from user space."
        ),
        reference="OSVDB 12791, paper Figure 2 / Table 4 row Linux-2.6.10",
        subtle_input_summary="Syscall parameters",
    )


def linux_uselib_spec(noise: bool = True) -> ProgramSpec:
    return ProgramSpec(
        name="linux_uselib",
        module_factory=lambda: build_module(noise=noise),
        detector="ski",
        entry="main",
        workload_inputs=workload_inputs(),
        detect_seeds=range(16),
        verify_seeds=range(8),
        max_steps=120_000,
        attacks=[linux_uselib_attack()],
        paper_loc="2.8M",
    )
