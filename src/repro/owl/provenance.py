"""Per-report decision provenance: why did OWL keep or prune each report?

OWL's headline claim is report *reduction* (Table 3: tens of thousands of
raw race reports pruned down to a handful of concurrency attacks), but the
pipeline counters only say *how many* reports each stage removed, not *why
this one*.  The provenance log closes that gap: as :class:`OwlPipeline`
runs, every race report accumulates a :class:`Decision` per stage with the
stage's actual evidence —

- **schedule reduction** (§5.1): the matched adhoc-sync chain (spin-read,
  breaking branch, constant write) that pruned the report;
- **race verification** (§5.2): whether the verifier caught the race in the
  racing moment, with its security hints (values about to be read/written,
  NULL-write flag) or the failed-attempt budget;
- **vulnerability analysis** (§6.1): each vulnerable site Algorithm 1
  reached, with its dependence kind and corrupted-branch propagation chain;
- **vulnerability verification** (§6.2): whether a re-run realized the
  attack, with the observed faults and the matched ground truth.

Each report ends in exactly one terminal disposition — ``pruned-adhoc``,
``unverified``, ``predicted``, ``verified-benign``, ``attack`` or
``repaired`` (an ``owl fix`` run emitted a patch that passed all three
repair gates) — and ``owl explain <program> <report-uid>`` renders the
whole record as a narrative.

**Determinism and parity invariants** (what makes provenance comparable
across runs, and what the cache/journal layer relies on):

1. *Stable keys* — reports are keyed by
   :attr:`repro.detectors.report.RaceReport.uid`, derived from the static
   instruction pair (``"r<a>-<b>"``), so the same logical report has the
   same uid across re-runs, job counts, and process boundaries.
2. *Order independence* — decisions are recorded in stage order and, within
   a stage, in report (not completion) order, so ``as_dict()`` of a
   ``jobs=8`` run equals that of a serial run on the same seeds.
3. *Cache transparency* — a cached stage result replays the same evidence
   the live stage recorded (see :mod:`repro.owl.cache`), so a warm-cache
   run's provenance log is bit-identical to the cold run's; the tests in
   ``tests/owl/test_cache.py`` compare the full ``as_dict()``.
4. *Evidence is data, not prose* — decision evidence holds plain values
   (uids, counts, describe() strings of deterministic objects), never
   wall-clock readings or memory addresses, which is what makes invariant
   3 possible.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, List, Optional

from repro.detectors.report import RaceReport

#: The terminal dispositions a report can end in.
DISPOSITION_PRUNED_ADHOC = "pruned-adhoc"
DISPOSITION_UNVERIFIED = "unverified"
DISPOSITION_VERIFIED_BENIGN = "verified-benign"
DISPOSITION_ATTACK = "attack"
#: A race the predictive detector inferred from one recorded trace and
#: that no later stage upgraded: witnessed (or honestly unwitnessed —
#: ARCHITECTURE invariant 8) evidence, but never caught in a live sweep.
DISPOSITION_PREDICTED = "predicted"
#: A race for which ``owl fix`` emitted a patch that passed all three
#: repair gates — diff oracle, detector re-run, scheduler sweep
#: (ARCHITECTURE invariant 10).  Trumps every other disposition: a
#: repaired report's history still shows how it was found and verified.
DISPOSITION_REPAIRED = "repaired"

SCHEMA_VERSION = 1


class Decision:
    """One stage's verdict on one report, with the evidence behind it."""

    __slots__ = ("stage", "verdict", "evidence")

    def __init__(self, stage: str, verdict: str,
                 evidence: Optional[Dict] = None):
        self.stage = stage
        self.verdict = verdict
        self.evidence = evidence if evidence is not None else {}

    def as_dict(self) -> Dict:
        return {"stage": self.stage, "verdict": self.verdict,
                "evidence": self.evidence}

    def __repr__(self) -> str:
        return "<Decision %s: %s>" % (self.stage, self.verdict)


class ReportProvenance:
    """The decision record for one race report."""

    def __init__(self, report: RaceReport):
        self.uid = report.uid
        self.variable = report.variable
        self.detector = report.detector
        self.first = "%s by t%d at %s" % (
            "write" if report.first.is_write else "read",
            report.first.thread_id, report.first.location,
        )
        self.second = "%s by t%d at %s" % (
            "write" if report.second.is_write else "read",
            report.second.thread_id, report.second.location,
        )
        self.decisions: List[Decision] = []

    # ------------------------------------------------------------------

    def record(self, stage: str, verdict: str, **evidence) -> Decision:
        decision = Decision(stage, verdict, evidence)
        self.decisions.append(decision)
        return decision

    def verdicts(self) -> List[str]:
        return [decision.verdict for decision in self.decisions]

    @property
    def disposition(self) -> str:
        """The terminal disposition, resolved from the recorded verdicts.

        Precedence mirrors the pipeline: a gated repair trumps everything
        (the report's history still shows how it was found); a realized
        attack trumps the rest; an adhoc prune means the verifier never saw
        the report; an unverified race was eliminated (R.V.E.); everything
        else that was caught in the racing moment is verified-benign.
        """
        verdicts = set(self.verdicts())
        if "repaired" in verdicts:
            return DISPOSITION_REPAIRED
        if "attack-realized" in verdicts:
            return DISPOSITION_ATTACK
        if "pruned-adhoc" in verdicts or "eliminated-by-annotation" in verdicts:
            return DISPOSITION_PRUNED_ADHOC
        if "verified" in verdicts:
            return DISPOSITION_VERIFIED_BENIGN
        if "predicted" in verdicts:
            return DISPOSITION_PREDICTED
        return DISPOSITION_UNVERIFIED

    # ------------------------------------------------------------------

    def as_dict(self) -> Dict:
        return {
            "uid": self.uid,
            "variable": self.variable,
            "detector": self.detector,
            "first": self.first,
            "second": self.second,
            "decisions": [decision.as_dict() for decision in self.decisions],
            "disposition": self.disposition,
        }

    def narrative(self) -> str:
        """The human-readable story ``owl explain`` prints."""
        lines = [
            "report %s: data race on %s [%s]" % (
                self.uid, self.variable or "?", self.detector,
            ),
            "  first:  %s" % self.first,
            "  second: %s" % self.second,
            "",
        ]
        for decision in self.decisions:
            lines.append("  [%s] %s" % (decision.stage, decision.verdict))
            for key in sorted(decision.evidence):
                value = decision.evidence[key]
                if isinstance(value, (list, tuple)):
                    value = ", ".join(str(item) for item in value) or "none"
                lines.append("      %s: %s" % (key, value))
        lines.append("")
        lines.append("  disposition: %s" % self.disposition)
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "<ReportProvenance %s %s (%d decisions)>" % (
            self.uid, self.disposition, len(self.decisions),
        )


class ProvenanceLog:
    """All per-report provenance of one pipeline run, in detection order."""

    def __init__(self, program: str):
        self.program = program
        self._records: Dict[str, ReportProvenance] = {}

    # ------------------------------------------------------------------
    # accumulation (called by OwlPipeline as the stages run)

    def observe(self, report: RaceReport) -> ReportProvenance:
        """The record for ``report``, created on first sight."""
        record = self._records.get(report.uid)
        if record is None:
            record = ReportProvenance(report)
            self._records[report.uid] = record
        return record

    def record(self, report: RaceReport, stage: str, verdict: str,
               **evidence) -> Decision:
        return self.observe(report).record(stage, verdict, **evidence)

    # ------------------------------------------------------------------
    # queries

    def get(self, uid: str) -> Optional[ReportProvenance]:
        return self._records.get(uid)

    def uids(self) -> List[str]:
        return list(self._records)

    def by_disposition(self, disposition: str) -> List[ReportProvenance]:
        return [record for record in self
                if record.disposition == disposition]

    def __iter__(self) -> Iterator[ReportProvenance]:
        return iter(self._records.values())

    def __len__(self) -> int:
        return len(self._records)

    def summary(self) -> str:
        """One line per report: the ``owl explain <program>`` listing."""
        lines = ["%-12s %-16s %s" % ("uid", "disposition", "race")]
        for record in self:
            lines.append("%-12s %-16s %s" % (
                record.uid, record.disposition, record.variable or "?",
            ))
        return "\n".join(lines)

    # ------------------------------------------------------------------
    # export

    def as_dict(self) -> Dict:
        counts: Dict[str, int] = {}
        for record in self:
            disposition = record.disposition
            counts[disposition] = counts.get(disposition, 0) + 1
        return {
            "schema": SCHEMA_VERSION,
            "program": self.program,
            "dispositions": counts,
            "reports": [record.as_dict() for record in self],
        }

    def save(self, path: str) -> str:
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w") as handle:
            json.dump(self.as_dict(), handle, indent=2, default=str)
            handle.write("\n")
        return path

    def __repr__(self) -> str:
        return "<ProvenanceLog %s reports=%d>" % (
            self.program, len(self),
        )


def provenance_path(out_dir: str, program: str) -> str:
    """Canonical location of a program's provenance file under ``out_dir``."""
    return os.path.join(out_dir, "provenance_%s.json" % program)
