"""Live run streaming: a JSON-lines progress feed for ``owl watch``.

The span tree and the journal answer "what did the run do" *after* the
fact; this module answers "what is it doing *right now*".  The pipeline
(and the batch/explore drivers under it) emit structured progress events
— run begin/end, stage begin/end with counter deltas, one ``seed_done``
per detector seed (with its cache disposition), one ``wave_done`` per
exploration wave, one ``item_done`` per verified report/vulnerability —
into an append-only JSON-lines feed next to the run's other artifacts.

The feed follows the :class:`repro.owl.journal.BatchJournal` discipline:
every event is one line, flushed on write, so a reader polling the file
(``owl watch``, or a dashboard tailing it) sees events as they happen and
an interrupted run leaves a readable prefix (at worst one torn final
line, which readers skip).  Event payloads carry only deterministic
fields plus a wall-clock timestamp; consumers that diff feeds across runs
drop ``wall`` and ``pid``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Dict, Iterator, List, Optional

__all__ = [
    "FEED_SCHEMA",
    "EventFeed",
    "read_feed",
    "follow_feed",
    "render_event",
    "feed_path",
]

#: Version stamped into every feed's ``run_begin`` event.
FEED_SCHEMA = 1


def feed_path(directory: str, program: str) -> str:
    """Canonical feed location for one program's run artifacts."""
    return os.path.join(directory, "feed_%s.jsonl" % program)


class EventFeed:
    """Append-only JSON-lines event writer (line-flushed).

    One feed serves one run; opening truncates any stale feed so a
    follower never replays a previous run's tail.  All ``emit`` helpers
    are cheap (one ``json.dumps`` + write + flush) and never raise into
    the pipeline: a full disk degrades streaming, not detection.
    """

    def __init__(self, path: str):
        self.path = path
        self.seq = 0
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._handle = open(path, "w")

    def emit(self, event: str, **fields) -> None:
        if self._handle is None:
            return
        record = {"event": event, "seq": self.seq, "wall": time.time()}
        record.update(fields)
        self.seq += 1
        try:
            self._handle.write(json.dumps(record, default=repr) + "\n")
            self._handle.flush()
        except OSError:
            self.close()  # streaming is best-effort; the run continues

    # ------------------------------------------------------------------
    # event vocabulary (the names ``owl watch`` renders)

    def run_begin(self, program: str, jobs: int, **fields) -> None:
        self.emit("run_begin", schema=FEED_SCHEMA, program=program,
                  jobs=jobs, pid=os.getpid(), **fields)

    def run_end(self, **fields) -> None:
        self.emit("run_end", **fields)
        self.close()

    def stage_begin(self, stage: str, **fields) -> None:
        self.emit("stage_begin", stage=stage, **fields)

    def stage_end(self, stage: str, **fields) -> None:
        self.emit("stage_end", stage=stage, **fields)

    def seed_done(self, **fields) -> None:
        self.emit("seed_done", **fields)

    def wave_done(self, **fields) -> None:
        self.emit("wave_done", **fields)

    def item_done(self, **fields) -> None:
        self.emit("item_done", **fields)

    def close(self) -> None:
        if self._handle is not None:
            try:
                self._handle.close()
            except OSError:
                pass
            self._handle = None


def read_feed(path: str) -> List[Dict]:
    """All complete events in a feed file; torn final lines are skipped."""
    events: List[Dict] = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn line (writer died mid-record)
    except FileNotFoundError:
        pass
    return events


def follow_feed(path: str, poll: float = 0.2,
                timeout: Optional[float] = None) -> Iterator[Dict]:
    """Yield feed events as they appear, like ``tail -f``.

    Ends after a ``run_end`` event, or after ``timeout`` seconds without
    a complete new event (None = wait forever).  The file may not exist
    yet when following starts — a watcher can attach before the run.
    """
    position = 0
    buffered = ""
    deadline = time.monotonic() + timeout if timeout is not None else None
    while True:
        progressed = False
        try:
            with open(path) as handle:
                handle.seek(position)
                chunk = handle.read()
                position = handle.tell()
        except FileNotFoundError:
            chunk = ""
        buffered += chunk
        while "\n" in buffered:
            line, buffered = buffered.split("\n", 1)
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            progressed = True
            if deadline is not None:
                deadline = time.monotonic() + timeout
            yield event
            if event.get("event") == "run_end":
                return
        if progressed:
            continue
        if deadline is not None and time.monotonic() >= deadline:
            return
        time.sleep(poll)


def render_event(event: Dict) -> Optional[str]:
    """One human-readable ``owl watch`` line (None: not worth a line)."""
    kind = event.get("event")
    if kind == "run_begin":
        extras = []
        if event.get("explore"):
            extras.append("explore")
        if event.get("cache"):
            extras.append("cache")
        return "run %s (jobs=%s%s)" % (
            event.get("program"), event.get("jobs"),
            "".join(", " + extra for extra in extras))
    if kind == "stage_begin":
        return "stage %s ..." % event.get("stage")
    if kind == "stage_end":
        parts = ["stage %s done" % event.get("stage")]
        if event.get("items") is not None:
            parts.append("%s items" % event["items"])
        if event.get("cache_hits") or event.get("cache_misses"):
            parts.append("cache %s hit/%s miss" % (
                event.get("cache_hits", 0), event.get("cache_misses", 0)))
        return "  ".join(parts)
    if kind == "seed_done":
        return "  seed %-4s %-5s steps=%-7s reports=%s%s" % (
            event.get("seed"), event.get("detector", ""),
            event.get("steps"), event.get("reports"),
            "  [cached]" if event.get("cached") else "")
    if kind == "wave_done":
        return "  wave %s: seeds %s  %s/d%s  +%s pairs (%s total)%s%s" % (
            event.get("index"), event.get("seeds"),
            event.get("scheduler"), event.get("depth"),
            event.get("new_pairs"), event.get("total_pairs"),
            "  [dry]" if event.get("dry") else "",
            "  [saturated]" if event.get("saturated") else "")
    if kind == "item_done":
        verdict = ""
        if "verified" in event:
            verdict = "verified" if event["verified"] else "unverified"
        elif "realized" in event:
            verdict = "attack" if event["realized"] else "benign"
        return "  %s[%s] %s  %s%s" % (
            event.get("stage"), event.get("index"), event.get("item"),
            verdict, "  [cached]" if event.get("cached") else "")
    if kind == "run_end":
        return "run complete: %s raw reports -> %s remaining, %s attacks" % (
            event.get("raw_reports"), event.get("remaining"),
            event.get("attacks"))
    return None
