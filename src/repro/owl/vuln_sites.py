"""The five vulnerable site types (paper section 3.2).

"Although the consequences of concurrency attacks are miscellaneous, these
consequences are triggered by five explicit types of vulnerable sites,
including memory operations (e.g., strcpy()), NULL pointer dereferences,
privilege operations (e.g., setuid()), file operations (e.g., access()), and
process-forking operations (e.g., eval() in shell scripts).  [...] more
types can be easily added."

The registry maps external function names to site types and classifies
arbitrary instructions; it is deliberately extensible (``add_type`` /
``add_function``) to honour the quoted extensibility claim.
"""

from __future__ import annotations

import enum
from typing import Dict, Iterable, Optional, Set

from repro.ir.function import ExternalFunction, Function
from repro.ir.instructions import Call, Instruction, Load, Store


class VulnSiteType(enum.Enum):
    """The vulnerability site taxonomy of paper section 3.2."""

    MEMORY_OP = "memory-operation"
    NULL_PTR_DEREF = "null-pointer-dereference"
    PRIVILEGE_OP = "privilege-operation"
    FILE_OP = "file-operation"
    FORK_OP = "process-forking-operation"


MEMORY_OP_FUNCTIONS = {
    "strcpy", "strncpy", "strcat", "memcpy", "memset", "sprintf", "write",
    "free",
}
PRIVILEGE_OP_FUNCTIONS = {
    "setuid", "seteuid", "setgid", "setgroups", "commit_creds",
}
FILE_OP_FUNCTIONS = {"access", "open", "chmod", "unlink"}
FORK_OP_FUNCTIONS = {"execve", "system", "eval", "fork"}


class VulnSiteRegistry:
    """Classifies instructions into vulnerable site types."""

    def __init__(self):
        self._by_function: Dict[str, VulnSiteType] = {}
        for name in MEMORY_OP_FUNCTIONS:
            self._by_function[name] = VulnSiteType.MEMORY_OP
        for name in PRIVILEGE_OP_FUNCTIONS:
            self._by_function[name] = VulnSiteType.PRIVILEGE_OP
        for name in FILE_OP_FUNCTIONS:
            self._by_function[name] = VulnSiteType.FILE_OP
        for name in FORK_OP_FUNCTIONS:
            self._by_function[name] = VulnSiteType.FORK_OP

    # ------------------------------------------------------------------
    # extensibility

    def add_function(self, name: str, site_type: VulnSiteType) -> None:
        """Register one more sensitive external ("more types can be added")."""
        self._by_function[name] = site_type

    def add_functions(self, names: Iterable[str], site_type: VulnSiteType) -> None:
        for name in names:
            self.add_function(name, site_type)

    def functions_of(self, site_type: VulnSiteType) -> Set[str]:
        return {
            name for name, stype in self._by_function.items() if stype is site_type
        }

    # ------------------------------------------------------------------
    # classification

    def call_site_type(self, instruction: Call) -> Optional[VulnSiteType]:
        """Site type of a direct/external call, by callee name."""
        callee = instruction.callee
        if isinstance(callee, (Function, ExternalFunction)):
            return self._by_function.get(callee.name)
        return None

    def site_type(
        self, instruction: Instruction, pointer_corrupted: bool = False,
    ) -> Optional[VulnSiteType]:
        """Algorithm 1's ``i.type() ∈ vuls`` test.

        ``pointer_corrupted`` says whether the instruction's pointer operand
        (load/store address, or indirect-call target) is in the corrupted
        set — which is what turns an ordinary dereference into a potential
        NULL pointer dereference site (the Linux uselib/SSDB pattern).
        """
        if isinstance(instruction, Call):
            named = self.call_site_type(instruction)
            if named is not None:
                return named
            if instruction.is_indirect and pointer_corrupted:
                return VulnSiteType.NULL_PTR_DEREF
            return None
        if isinstance(instruction, (Load, Store)) and pointer_corrupted:
            return VulnSiteType.NULL_PTR_DEREF
        return None

    def pointer_operand(self, instruction: Instruction):
        """The operand whose corruption makes this instruction a deref site."""
        if isinstance(instruction, Load):
            return instruction.pointer
        if isinstance(instruction, Store):
            return instruction.pointer
        if isinstance(instruction, Call) and instruction.is_indirect:
            return instruction.callee
        return None


#: The registry used across OWL unless a caller supplies its own.
DEFAULT_REGISTRY = VulnSiteRegistry()
