"""Report formatting: call stacks (Figure 4) and input hints (Figure 5).

The paper shows OWL's Libsafe output as::

    libsafe_strcpy (intercept.c:151)
    stack_check (util.c:164)

    ---- Ctrl Dependent Vulnerability----
    [ 632 ]
    %632: br %631 if.end13 if.then11 (intercept.c:164)
    Vulnerable Site Location: (intercept.c:165)

These formatters reproduce that layout from our report objects.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.ir.printer import format_instruction
from repro.owl.vuln_analysis import DependenceKind, VulnerabilityReport


def format_call_stack(call_stack: Iterable) -> str:
    """Figure-4-style call stack: innermost frame first."""
    lines: List[str] = []
    for function, filename, line in reversed(list(call_stack)):
        lines.append("%s (%s:%d)" % (function, filename, line))
    return "\n".join(lines)


def format_vulnerability_report(report: VulnerabilityReport) -> str:
    """Figure-5-style vulnerable input hint."""
    if report.kind is DependenceKind.CTRL_DEP:
        header = "---- Ctrl Dependent Vulnerability----"
    else:
        header = "---- Data Dependent Vulnerability----"
    lines = [header]
    uids = " ".join(str(branch.uid or 0) for branch in report.branches)
    lines.append("[ %s ]" % uids)
    for branch in report.branches:
        lines.append(format_instruction(branch))
    lines.append("Vulnerable Site Location: (%s)" % report.site.location)
    lines.append("Vulnerable Site Type: %s" % report.site_type.value)
    return "\n".join(lines)


def format_full_report(report: VulnerabilityReport) -> str:
    """Call stack plus input hint, the complete developer-facing report."""
    sections = []
    if report.call_stack:
        sections.append(format_call_stack(report.call_stack))
    sections.append(format_vulnerability_report(report))
    return "\n\n".join(sections)
