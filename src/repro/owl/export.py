"""JSON export of pipeline results (for CI dashboards and diffing runs).

``result_to_dict`` flattens a :class:`repro.owl.pipeline.PipelineResult`
into plain data: stage counters, per-report summaries with call stacks,
Figure-5-style hints, and attack verification outcomes.  ``save_result``
writes it to disk.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.owl.hints import format_vulnerability_report
from repro.owl.pipeline import PipelineResult


def _location(loc) -> str:
    return "%s:%d" % (loc.filename, loc.line)


def _call_stack(stack) -> List[Dict]:
    return [
        {"function": function, "file": filename, "line": line}
        for function, filename, line in stack
    ]


def _race_report(report) -> Dict:
    return {
        "uid": report.uid,
        "variable": report.variable,
        "detector": report.detector,
        "first": {
            "kind": "write" if report.first.is_write else "read",
            "location": _location(report.first.location),
            "call_stack": _call_stack(report.first.call_stack),
        },
        "second": {
            "kind": "write" if report.second.is_write else "read",
            "location": _location(report.second.location),
            "call_stack": _call_stack(report.second.call_stack),
        },
        "tags": sorted(report.tags),
    }


def _vulnerability(vulnerability) -> Dict:
    return {
        "site": _location(vulnerability.site.location),
        "site_type": vulnerability.site_type.value,
        "dependence": vulnerability.kind.value,
        "branches": [_location(branch.location)
                     for branch in vulnerability.branches],
        "call_stack": _call_stack(vulnerability.call_stack),
        "hint_text": format_vulnerability_report(vulnerability),
    }


def result_to_dict(result: PipelineResult) -> Dict:
    """Flatten one pipeline run to JSON-ready data."""
    return {
        "program": result.spec.name,
        "counters": result.counters.as_dict(),
        "adhoc_syncs": [
            annotation.describe() for annotation in (result.annotations or [])
        ],
        "remaining_reports": [
            _race_report(report) for report in result.remaining_reports
        ],
        "vulnerabilities": [
            _vulnerability(v) for v in result.vulnerabilities
        ],
        "attacks": [
            {
                "ground_truth": (
                    attack.ground_truth.attack_id
                    if attack.ground_truth else None
                ),
                "realized": attack.realized,
                "outcome": attack.verification.describe(),
                "site": _location(attack.vulnerability.site.location),
            }
            for attack in result.attacks
        ],
        "provenance": (
            result.provenance.as_dict() if result.provenance else None
        ),
        "cache": (
            result.metrics.cache
            if result.metrics is not None else None
        ),
    }


def save_result(result: PipelineResult, path: str) -> None:
    """Write the flattened result to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(result_to_dict(result), handle, indent=2)
