"""Parallel batch execution for the OWL pipeline.

The paper's deployment story (Table 1: 28,209 reports; Table 3: 31,870 raw
detector reports) makes detector throughput the limiting factor, and every
stage of Figure 3 is embarrassingly parallel at some granularity:

- **detection** — each ``(program × seed)`` detector run is an independent
  VM execution,
- **race verification** — each report is re-executed on its own,
- **vulnerability verification** — each vulnerable-input hint likewise.

This module fans those units out over a ``concurrent.futures`` process pool
and merges results *deterministically*, so pipeline counters are
bit-identical to the serial run: per-seed report sets are merged in seed
order (static dedup keeps the first occurrence and appends later watch data,
exactly like a shared report set would), and per-item verification outcomes
are reassembled by index.

Worker processes cannot receive VMs, modules or IR instructions (they are
not picklable, and identity matters to the debugger's breakpoints), so the
boundary works in *payloads*: plain tuples/dicts keyed by instruction uid.
Module builds are deterministic — the same factory assigns the same uids —
so a worker rebuilds the module from the spec registry (or a module-level
factory function) and rehydrates reports against its own copy; the parent
rehydrates results against the original module.  Each worker process caches
the built spec/module, amortizing the rebuild across all its tasks.

Parallel execution therefore requires the :class:`ProgramSpec` to be
resolvable by name through :mod:`repro.apps.registry` (or an explicit
picklable ``module_source``); anything else silently falls back to the
serial path with identical results.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.detectors.annotations import AdhocSyncAnnotation, AnnotationSet
from repro.detectors.report import AccessRecord, RaceReport, ReportSet
from repro.ir.module import Module
from repro.owl.race_verifier import (
    DynamicRaceVerifier,
    RaceVerification,
    SecurityHints,
)
from repro.owl.vuln_verifier import DynamicVulnerabilityVerifier, VulnVerification
from repro.runtime.errors import FaultKind
from repro.runtime.metrics import RunStats
from repro.runtime.spans import SpanTracer
from repro.spec import AttackGroundTruth, ProgramSpec

# ---------------------------------------------------------------------------
# payload (de)hydration — instruction identity travels as the module uid


def access_to_payload(record: AccessRecord) -> Tuple:
    return (
        record.instruction.uid or 0, record.thread_id, record.is_write,
        record.value, tuple(record.call_stack), record.address, record.step,
        record.size,
    )


def access_from_payload(module: Module, payload: Tuple) -> AccessRecord:
    uid, thread_id, is_write, value, call_stack, address, step, size = payload
    return AccessRecord(
        module.instruction_by_uid(uid), thread_id, is_write, value,
        tuple(call_stack), address, step=step, size=size,
    )


def report_to_payload(report: RaceReport) -> Dict:
    return {
        "first": access_to_payload(report.first),
        "second": access_to_payload(report.second),
        "variable": report.variable,
        "detector": report.detector,
        "subsequent": [access_to_payload(a) for a in report.subsequent_reads],
    }


def report_from_payload(module: Module, payload: Dict) -> RaceReport:
    report = RaceReport(
        access_from_payload(module, payload["first"]),
        access_from_payload(module, payload["second"]),
        variable=payload["variable"],
        detector=payload["detector"],
    )
    report.subsequent_reads.extend(
        access_from_payload(module, a) for a in payload["subsequent"]
    )
    return report


def reports_to_payloads(reports: Iterable[RaceReport]) -> List[Dict]:
    return [report_to_payload(report) for report in reports]


def reports_from_payloads(module: Module, payloads: List[Dict]) -> ReportSet:
    reports = ReportSet()
    for payload in payloads:
        reports.add(report_from_payload(module, payload))
    return reports


def annotations_to_payload(annotations: Optional[AnnotationSet]) -> Optional[List]:
    if annotations is None:
        return None
    return [
        (a.read_instruction.uid or 0, a.write_instruction.uid or 0, a.variable)
        for a in annotations
    ]


def annotations_from_payload(module: Module,
                             payload: Optional[List]) -> Optional[AnnotationSet]:
    if payload is None:
        return None
    return AnnotationSet(
        AdhocSyncAnnotation(
            module.instruction_by_uid(read_uid),
            module.instruction_by_uid(write_uid),
            variable,
        )
        for read_uid, write_uid, variable in payload
    )


def vuln_to_payload(vulnerability) -> Dict:
    return {
        "site": vulnerability.site.uid or 0,
        "site_type": vulnerability.site_type.value,
        "kind": vulnerability.kind.value,
        "branches": [branch.uid or 0 for branch in vulnerability.branches],
        "start": vulnerability.start.uid or 0,
        "call_stack": tuple(vulnerability.call_stack),
        "source": (
            report_to_payload(vulnerability.source)
            if vulnerability.source is not None else None
        ),
    }


def vuln_from_payload(module: Module, payload: Dict):
    from repro.owl.vuln_analysis import DependenceKind, VulnerabilityReport
    from repro.owl.vuln_sites import VulnSiteType

    return VulnerabilityReport(
        site=module.instruction_by_uid(payload["site"]),
        site_type=VulnSiteType(payload["site_type"]),
        kind=DependenceKind(payload["kind"]),
        branches=[module.instruction_by_uid(uid) for uid in payload["branches"]],
        start=module.instruction_by_uid(payload["start"]),
        call_stack=tuple(payload["call_stack"]),
        source=(
            report_from_payload(module, payload["source"])
            if payload["source"] is not None else None
        ),
    )


# ---------------------------------------------------------------------------
# per-worker caches: specs and modules rebuilt once per process, not per task

_SPEC_CACHE: Dict[str, ProgramSpec] = {}
_MODULE_CACHE: Dict[object, Module] = {}


def _cached_spec(name: str) -> ProgramSpec:
    spec = _SPEC_CACHE.get(name)
    if spec is None:
        from repro.apps.registry import spec_by_name

        spec = spec_by_name(name)
        _SPEC_CACHE[name] = spec
    return spec


def _resolve_module(source) -> Module:
    """A module from a registry spec name or a picklable factory function."""
    module = _MODULE_CACHE.get(source)
    if module is None:
        if isinstance(source, str):
            module = _cached_spec(source).build()
        else:
            module = source()
        _MODULE_CACHE[source] = module
    return module


def can_parallelize(spec: ProgramSpec) -> bool:
    """Whether worker processes can rebuild this spec from its name."""
    from repro.apps.registry import has_spec

    return has_spec(spec.name)


@contextmanager
def _pool(jobs: int, executor: Optional[ProcessPoolExecutor]):
    """Use the caller's executor, or run a private one for this call."""
    if executor is not None:
        yield executor
        return
    own = ProcessPoolExecutor(max_workers=max(1, jobs))
    try:
        yield own
    finally:
        own.shutdown()


def make_executor(jobs: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=max(1, jobs))


# ---------------------------------------------------------------------------
# stage 1/2: detector fan-out across seeds (and programs)


def _detect_worker(payload: Dict) -> Dict:
    """Run one detector seed; return reports, stats and spans as payloads."""
    from repro.detectors.ski import run_ski_seed
    from repro.detectors.tsan import run_tsan_seed

    module = _resolve_module(payload["source"])
    annotations = annotations_from_payload(module, payload["annotations"])
    tracer = SpanTracer()
    started = time.perf_counter()
    if payload["kind"] == "ski":
        reports, result, detector = run_ski_seed(
            module, payload["seed"], entry=payload["entry"],
            inputs=payload["inputs"], annotations=annotations,
            max_steps=payload["max_steps"], depth=payload["depth"],
            tracer=tracer,
        )
    else:
        reports, result, detector = run_tsan_seed(
            module, payload["seed"], entry=payload["entry"],
            inputs=payload["inputs"], annotations=annotations,
            max_steps=payload["max_steps"], entry_args=payload["entry_args"],
            tracer=tracer,
        )
    return {
        "seed": payload["seed"],
        "reports": reports_to_payloads(reports),
        "stats": (payload["seed"], result.reason, result.steps,
                  detector.access_count, len(reports),
                  time.perf_counter() - started),
        "spans": tracer.export_payload(),
    }


def _detect_payload(kind: str, source, seed: int, entry: str, inputs,
                    annotations_payload, max_steps: int, depth: int,
                    entry_args: Sequence[int]) -> Dict:
    return {
        "kind": kind,
        "source": source,
        "seed": seed,
        "entry": entry,
        "inputs": inputs,
        "annotations": annotations_payload,
        "max_steps": max_steps,
        "depth": depth,
        "entry_args": tuple(entry_args),
    }


def run_seeds_parallel(
    kind: str,
    module: Module,
    module_source,
    entry: str = "main",
    inputs: Optional[Dict] = None,
    seeds: Sequence[int] = range(10),
    annotations: Optional[AnnotationSet] = None,
    max_steps: int = 200_000,
    entry_args: Sequence[int] = (),
    depth: int = 3,
    jobs: int = 2,
    stats_out: Optional[List] = None,
    executor: Optional[ProcessPoolExecutor] = None,
    tracer: Optional[SpanTracer] = None,
) -> Tuple[ReportSet, List[RunStats]]:
    """Fan one program's seeds out over worker processes.

    ``module_source`` is either a registry spec name (str) or a picklable
    zero-argument module factory; ``module`` is the parent's copy, against
    which the merged reports are rehydrated.  The merge happens in seed
    order regardless of completion order, so the returned
    :class:`ReportSet` is identical to the serial run's — and so is the
    span tree adopted into ``tracer``.
    """
    seeds = list(seeds)
    annotations_payload = annotations_to_payload(annotations)
    outputs: Dict[int, Dict] = {}
    with _pool(jobs, executor) as pool:
        futures = [
            pool.submit(_detect_worker, _detect_payload(
                kind, module_source, seed, entry, inputs,
                annotations_payload, max_steps, depth, entry_args,
            ))
            for seed in seeds
        ]
        for future in as_completed(futures):
            output = future.result()
            outputs[output["seed"]] = output
    merged = ReportSet()
    stats: List[RunStats] = []
    for seed in seeds:  # deterministic, completion-order independent
        output = outputs[seed]
        merged.merge(reports_from_payloads(module, output["reports"]))
        stats.append(RunStats(*output["stats"]))
        if tracer is not None:
            tracer.adopt(output["spans"])
    if stats_out is not None:
        stats_out.extend(stats)
    return merged, stats


def run_detector_batch(
    spec: ProgramSpec,
    annotations: Optional[AnnotationSet] = None,
    jobs: int = 1,
    executor: Optional[ProcessPoolExecutor] = None,
    stats_out: Optional[List] = None,
    tracer: Optional[SpanTracer] = None,
) -> Tuple[ReportSet, List[RunStats]]:
    """The spec's front-end detector over its seeds, parallel when possible."""
    if (jobs <= 1 and executor is None) or not can_parallelize(spec):
        from repro.owl.integration import run_detector

        stats: List[RunStats] = []
        reports, _ = run_detector(spec, annotations=annotations,
                                  stats_out=stats, tracer=tracer)
        if stats_out is not None:
            stats_out.extend(stats)
        return reports, stats
    return run_seeds_parallel(
        spec.detector, spec.build(), spec.name, entry=spec.entry,
        inputs=spec.workload_inputs, seeds=spec.detect_seeds,
        annotations=annotations, max_steps=spec.max_steps, jobs=jobs,
        stats_out=stats_out, executor=executor, tracer=tracer,
    )


def run_detectors_batch(
    specs: Sequence[ProgramSpec],
    jobs: int = 2,
    executor: Optional[ProcessPoolExecutor] = None,
) -> Dict[str, Tuple[ReportSet, List[RunStats]]]:
    """Fan *all* ``(program × seed)`` detector runs out over one pool.

    Seeds of every program interleave freely across workers; each program's
    reports are still merged in its own seed order.  Programs that cannot be
    rebuilt in a worker run serially, after the parallel ones complete.
    """
    parallel = [spec for spec in specs if can_parallelize(spec)]
    serial = [spec for spec in specs if not can_parallelize(spec)]
    outputs: Dict[str, Dict[int, Dict]] = {spec.name: {} for spec in parallel}
    with _pool(jobs, executor) as pool:
        futures = {}
        for spec in parallel:
            for seed in spec.detect_seeds:
                future = pool.submit(_detect_worker, _detect_payload(
                    spec.detector, spec.name, seed, spec.entry,
                    spec.workload_inputs, None, spec.max_steps, 3, (),
                ))
                futures[future] = spec.name
        for future in as_completed(futures):
            output = future.result()
            outputs[futures[future]][output["seed"]] = output
    results: Dict[str, Tuple[ReportSet, List[RunStats]]] = {}
    for spec in parallel:
        merged = ReportSet()
        stats: List[RunStats] = []
        for seed in spec.detect_seeds:
            output = outputs[spec.name][seed]
            merged.merge(reports_from_payloads(spec.build(), output["reports"]))
            stats.append(RunStats(*output["stats"]))
        results[spec.name] = (merged, stats)
    for spec in serial:
        results[spec.name] = run_detector_batch(spec, jobs=1)
    return results


# ---------------------------------------------------------------------------
# stage 3: per-report race verification


def _race_verify_worker(payload: Dict) -> Dict:
    spec = _cached_spec(payload["spec"])
    module = spec.build()
    report = report_from_payload(module, payload["report"])
    inputs = payload["inputs"]
    max_steps = payload["max_steps"]
    tracer = SpanTracer()
    verifier = DynamicRaceVerifier(
        module, entry=payload["entry"], inputs=inputs,
        seeds=payload["seeds"], max_steps=max_steps,
        vm_factory=lambda seed: spec.make_vm(
            seed, inputs=inputs, max_steps=max_steps,
        ),
        tracer=tracer,
    )
    verification = verifier.verify(report)
    hints = verification.hints
    return {
        "index": payload["index"],
        "verified": verification.verified,
        "runs_used": verification.runs_used,
        "livelocks_resolved": verification.livelocks_resolved,
        "spans": tracer.export_payload(),
        "hints": None if hints is None else {
            "variable": hints.variable,
            "value_type": hints.value_type,
            "read_value": hints.read_value,
            "write_value": hints.write_value,
            "null_write": hints.null_write,
            "address": hints.address,
        },
    }


def verify_races_batch(
    spec: ProgramSpec,
    reports: Sequence[RaceReport],
    jobs: int = 1,
    executor: Optional[ProcessPoolExecutor] = None,
    tracer: Optional[SpanTracer] = None,
) -> List[RaceVerification]:
    """Verify each report in its own worker; results keep report order."""
    reports = list(reports)
    if not reports:
        return []
    if (jobs <= 1 and executor is None) or not can_parallelize(spec):
        verifier = DynamicRaceVerifier(
            spec.build(), entry=spec.entry, inputs=spec.workload_inputs,
            seeds=spec.verify_seeds, max_steps=spec.max_steps,
            vm_factory=lambda seed: spec.make_vm(seed),
            tracer=tracer,
        )
        return verifier.verify_all(reports)
    payloads = [
        {
            "spec": spec.name,
            "entry": spec.entry,
            "inputs": spec.workload_inputs,
            "seeds": list(spec.verify_seeds),
            "max_steps": spec.max_steps,
            "index": index,
            "report": report_to_payload(report),
        }
        for index, report in enumerate(reports)
    ]
    outcomes: List[Optional[RaceVerification]] = [None] * len(reports)
    spans: List[Optional[List]] = [None] * len(reports)
    with _pool(jobs, executor) as pool:
        futures = [pool.submit(_race_verify_worker, p) for p in payloads]
        for future in as_completed(futures):
            output = future.result()
            report = reports[output["index"]]
            hints = (
                SecurityHints(**output["hints"])
                if output["hints"] is not None else None
            )
            if output["verified"]:
                report.tags[DynamicRaceVerifier.TAG] = hints
            outcomes[output["index"]] = RaceVerification(
                report, output["verified"], hints, output["runs_used"],
                output["livelocks_resolved"],
            )
            spans[output["index"]] = output["spans"]
    if tracer is not None:
        for payload in spans:  # report order, not completion order
            if payload:
                tracer.adopt(payload)
    return [outcome for outcome in outcomes if outcome is not None]


# ---------------------------------------------------------------------------
# stage 5: per-vulnerability verification


def _vuln_verify_worker(payload: Dict) -> Dict:
    spec = _cached_spec(payload["spec"])
    module = spec.build()
    vulnerability = vuln_from_payload(module, payload["vuln"])
    ground_truth = spec.attack_for_site(vulnerability.site.location)
    inputs = (
        ground_truth.subtle_inputs if ground_truth is not None
        else payload["inputs"]
    )
    tracer = SpanTracer()
    verifier = DynamicVulnerabilityVerifier(
        module, entry=payload["entry"], inputs=inputs,
        seeds=payload["seeds"], max_steps=payload["max_steps"],
        vm_factory=lambda seed, _inputs=inputs: spec.make_vm(
            seed, inputs=_inputs,
        ),
        attack_predicate=(
            ground_truth.predicate if ground_truth is not None else None
        ),
        racing_order=(
            (ground_truth.racing_order, "") if ground_truth is not None
            else None
        ),
        tracer=tracer,
    )
    verification = verifier.verify(vulnerability)
    return {
        "index": payload["index"],
        "site_reached": verification.site_reached,
        "attack_realized": verification.attack_realized,
        "diverged": [branch.uid or 0 for branch in verification.diverged_branches],
        "faults": [kind.value for kind in verification.fault_kinds],
        "runs_used": verification.runs_used,
        "spans": tracer.export_payload(),
    }


def verify_vulns_batch(
    spec: ProgramSpec,
    vulnerabilities: Sequence,
    jobs: int = 1,
    executor: Optional[ProcessPoolExecutor] = None,
    tracer: Optional[SpanTracer] = None,
) -> List[Tuple[VulnVerification, Optional[AttackGroundTruth]]]:
    """Verify each vulnerability in its own worker; results keep input order.

    Ground truth is matched *inside* the worker (by site location against
    the registry spec's attacks — deterministic), so subtle inputs, racing
    order and attack predicates never cross the process boundary; the
    parent re-matches against its own spec for the returned pairing.
    """
    vulnerabilities = list(vulnerabilities)
    if not vulnerabilities:
        return []
    if (jobs <= 1 and executor is None) or not can_parallelize(spec):
        return [
            _verify_vuln_serial(spec, vulnerability, tracer=tracer)
            for vulnerability in vulnerabilities
        ]
    module = spec.build()
    payloads = [
        {
            "spec": spec.name,
            "entry": spec.entry,
            "inputs": spec.workload_inputs,
            "seeds": list(spec.verify_seeds),
            "max_steps": spec.max_steps,
            "index": index,
            "vuln": vuln_to_payload(vulnerability),
        }
        for index, vulnerability in enumerate(vulnerabilities)
    ]
    outcomes: List[Optional[Tuple[VulnVerification, Optional[AttackGroundTruth]]]]
    outcomes = [None] * len(vulnerabilities)
    spans: List[Optional[List]] = [None] * len(vulnerabilities)
    with _pool(jobs, executor) as pool:
        futures = [pool.submit(_vuln_verify_worker, p) for p in payloads]
        for future in as_completed(futures):
            output = future.result()
            vulnerability = vulnerabilities[output["index"]]
            ground_truth = spec.attack_for_site(vulnerability.site.location)
            verification = VulnVerification(
                vulnerability,
                output["site_reached"],
                output["attack_realized"],
                [module.instruction_by_uid(uid) for uid in output["diverged"]],
                [FaultKind(value) for value in output["faults"]],
                output["runs_used"],
            )
            outcomes[output["index"]] = (verification, ground_truth)
            spans[output["index"]] = output["spans"]
    if tracer is not None:
        for payload in spans:  # vulnerability order, not completion order
            if payload:
                tracer.adopt(payload)
    return [outcome for outcome in outcomes if outcome is not None]


def _verify_vuln_serial(
    spec: ProgramSpec, vulnerability, tracer: Optional[SpanTracer] = None,
) -> Tuple[VulnVerification, Optional[AttackGroundTruth]]:
    """One vulnerability through the serial path (mirrors the worker)."""
    ground_truth = spec.attack_for_site(vulnerability.site.location)
    inputs = (
        ground_truth.subtle_inputs if ground_truth is not None
        else spec.workload_inputs
    )
    verifier = DynamicVulnerabilityVerifier(
        spec.build(), entry=spec.entry, inputs=inputs,
        seeds=spec.verify_seeds, max_steps=spec.max_steps,
        vm_factory=lambda seed, _inputs=inputs: spec.make_vm(
            seed, inputs=_inputs,
        ),
        attack_predicate=(
            ground_truth.predicate if ground_truth is not None else None
        ),
        racing_order=(
            (ground_truth.racing_order, "") if ground_truth is not None
            else None
        ),
        tracer=tracer,
    )
    return verifier.verify(vulnerability), ground_truth
