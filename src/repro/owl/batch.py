"""Parallel batch execution for the OWL pipeline.

The paper's deployment story (Table 1: 28,209 reports; Table 3: 31,870 raw
detector reports) makes detector throughput the limiting factor, and every
stage of Figure 3 is embarrassingly parallel at some granularity:

- **detection** — each ``(program × seed)`` detector run is an independent
  VM execution,
- **race verification** — each report is re-executed on its own,
- **vulnerability verification** — each vulnerable-input hint likewise.

This module fans those units out over a ``concurrent.futures`` process pool
and merges results *deterministically*, so pipeline counters are
bit-identical to the serial run: per-seed report sets are merged in seed
order (static dedup keeps the first occurrence and appends later watch data,
exactly like a shared report set would), and per-item verification outcomes
are reassembled by index.

Worker processes cannot receive VMs, modules or IR instructions (they are
not picklable, and identity matters to the debugger's breakpoints), so the
boundary works in *payloads*: plain tuples/dicts keyed by instruction uid.
Module builds are deterministic — the same factory assigns the same uids —
so a worker rebuilds the module from the spec registry (or a module-level
factory function) and rehydrates reports against its own copy; the parent
rehydrates results against the original module.  Each worker process caches
the built spec/module, amortizing the rebuild across all its tasks.

Parallel execution therefore requires the :class:`ProgramSpec` to be
resolvable by name through :mod:`repro.apps.registry` (or an explicit
picklable ``module_source``); anything else silently falls back to the
serial path with identical results.

**Determinism and parity invariants** (the contract every function here
keeps, and the tests in ``tests/owl/test_batch.py`` enforce):

1. *Order independence* — results are reassembled by seed / report /
   vulnerability index, never by completion order, so
   :meth:`StageCounters.parity_dict` is bit-identical at any job count.
2. *Identity through payloads* — instruction identity crosses the process
   boundary as the module uid; rehydrating against the parent's module
   restores object identity, so breakpoints and tag lookups behave as in
   a serial run.
3. *Worker equivalence* — running a worker function in-process (the serial
   fallback, or a cache miss at ``jobs=1``) produces the same payload the
   pooled worker would, so fault-tolerant degradation never changes
   results, only wall-clock.
4. *Cache transparency* — a cache hit returns the exact payload the worker
   originally produced (minus spans), so cached and uncached runs emit
   bit-identical counters and provenance dispositions (see
   :mod:`repro.owl.cache`).

**Fault tolerance** (:class:`BatchPolicy`, :func:`run_tasks`): each item
gets a per-item result-wait budget; transient failures — a crashed worker
process, a broken pool, a timeout — are retried with exponential backoff,
and items still failing after the retry budget are re-run serially
in-process, so one bad worker degrades throughput rather than failing the
batch.  Workers always terminate on their own eventually (every VM runs
under a ``max_steps`` budget), so "hung" here means slow, and pool
shutdown is bounded.
"""

from __future__ import annotations

import time
from concurrent.futures import (
    BrokenExecutor,
    ProcessPoolExecutor,
    as_completed,
)
from concurrent.futures import TimeoutError as FuturesTimeoutError
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.detectors.annotations import AdhocSyncAnnotation, AnnotationSet
from repro.detectors.report import AccessRecord, RaceReport, ReportSet
from repro.ir.module import Module
from repro.owl.race_verifier import (
    DynamicRaceVerifier,
    RaceVerification,
    SecurityHints,
)
from repro.owl.vuln_verifier import DynamicVulnerabilityVerifier, VulnVerification
from repro.runtime.errors import FaultKind
from repro.runtime.metrics import RunStats
from repro.runtime.spans import SpanTracer
from repro.spec import AttackGroundTruth, ProgramSpec

# ---------------------------------------------------------------------------
# payload (de)hydration — instruction identity travels as the module uid


def access_to_payload(record: AccessRecord) -> Tuple:
    return (
        record.instruction.uid or 0, record.thread_id, record.is_write,
        record.value, tuple(record.call_stack), record.address, record.step,
        record.size,
    )


def access_from_payload(module: Module, payload: Tuple) -> AccessRecord:
    uid, thread_id, is_write, value, call_stack, address, step, size = payload
    # Frames arrive as tuples from pickled payloads but as lists from
    # JSON-round-tripped cache entries; normalize so both rehydrate to the
    # same CallStack shape.
    return AccessRecord(
        module.instruction_by_uid(uid), thread_id, is_write, value,
        tuple(tuple(frame) for frame in call_stack), address,
        step=step, size=size,
    )


def report_to_payload(report: RaceReport) -> Dict:
    return {
        "first": access_to_payload(report.first),
        "second": access_to_payload(report.second),
        "variable": report.variable,
        "detector": report.detector,
        "subsequent": [access_to_payload(a) for a in report.subsequent_reads],
    }


def report_from_payload(module: Module, payload: Dict) -> RaceReport:
    report = RaceReport(
        access_from_payload(module, payload["first"]),
        access_from_payload(module, payload["second"]),
        variable=payload["variable"],
        detector=payload["detector"],
    )
    report.subsequent_reads.extend(
        access_from_payload(module, a) for a in payload["subsequent"]
    )
    return report


def reports_to_payloads(reports: Iterable[RaceReport]) -> List[Dict]:
    return [report_to_payload(report) for report in reports]


def reports_from_payloads(module: Module, payloads: List[Dict]) -> ReportSet:
    reports = ReportSet()
    for payload in payloads:
        reports.add(report_from_payload(module, payload))
    return reports


def annotations_to_payload(annotations: Optional[AnnotationSet]) -> Optional[List]:
    if annotations is None:
        return None
    return [
        (a.read_instruction.uid or 0, a.write_instruction.uid or 0, a.variable)
        for a in annotations
    ]


def annotations_from_payload(module: Module,
                             payload: Optional[List]) -> Optional[AnnotationSet]:
    if payload is None:
        return None
    return AnnotationSet(
        AdhocSyncAnnotation(
            module.instruction_by_uid(read_uid),
            module.instruction_by_uid(write_uid),
            variable,
        )
        for read_uid, write_uid, variable in payload
    )


def vuln_to_payload(vulnerability) -> Dict:
    return {
        "site": vulnerability.site.uid or 0,
        "site_type": vulnerability.site_type.value,
        "kind": vulnerability.kind.value,
        "branches": [branch.uid or 0 for branch in vulnerability.branches],
        "start": vulnerability.start.uid or 0,
        "call_stack": tuple(vulnerability.call_stack),
        "source": (
            report_to_payload(vulnerability.source)
            if vulnerability.source is not None else None
        ),
    }


def vuln_from_payload(module: Module, payload: Dict):
    from repro.owl.vuln_analysis import DependenceKind, VulnerabilityReport
    from repro.owl.vuln_sites import VulnSiteType

    return VulnerabilityReport(
        site=module.instruction_by_uid(payload["site"]),
        site_type=VulnSiteType(payload["site_type"]),
        kind=DependenceKind(payload["kind"]),
        branches=[module.instruction_by_uid(uid) for uid in payload["branches"]],
        start=module.instruction_by_uid(payload["start"]),
        call_stack=tuple(payload["call_stack"]),
        source=(
            report_from_payload(module, payload["source"])
            if payload["source"] is not None else None
        ),
    )


# ---------------------------------------------------------------------------
# per-worker caches: specs and modules rebuilt once per process, not per task

_SPEC_CACHE: Dict[str, ProgramSpec] = {}
_MODULE_CACHE: Dict[object, Module] = {}


def _cached_spec(name: str) -> ProgramSpec:
    spec = _SPEC_CACHE.get(name)
    if spec is None:
        from repro.apps.registry import spec_by_name

        spec = spec_by_name(name)
        _SPEC_CACHE[name] = spec
    return spec


def _resolve_module(source) -> Module:
    """A module from a registry spec name or a picklable factory function."""
    module = _MODULE_CACHE.get(source)
    if module is None:
        if isinstance(source, str):
            module = _cached_spec(source).build()
        else:
            module = source()
        _MODULE_CACHE[source] = module
    return module


def can_parallelize(spec: ProgramSpec) -> bool:
    """Whether worker processes can rebuild this spec from its name."""
    from repro.apps.registry import has_spec

    return has_spec(spec.name)


@contextmanager
def _pool(jobs: int, executor: Optional[ProcessPoolExecutor]):
    """Use the caller's executor, or run a private one for this call."""
    if executor is not None:
        yield executor
        return
    own = ProcessPoolExecutor(max_workers=max(1, jobs))
    try:
        yield own
    finally:
        own.shutdown()


def make_executor(jobs: int) -> ProcessPoolExecutor:
    return ProcessPoolExecutor(max_workers=max(1, jobs))


# ---------------------------------------------------------------------------
# fault-tolerant task execution

#: Sentinel distinguishing "no result yet" from any legitimate worker output.
_UNSET = object()


class BatchPolicy:
    """Fault-tolerance budgets for batched worker tasks.

    - ``timeout`` — per-item result-wait budget in seconds (None = wait
      forever; workers always terminate on their own because every VM runs
      under ``max_steps``).
    - ``retries`` — how many extra parallel waves a failed item gets.
    - ``backoff`` — sleep before the first retry wave, doubling each wave
      (exponential backoff for transient failures).
    - ``serial_fallback`` — whether items that exhaust the retry budget are
      re-run in-process; when False they raise instead.

    The instance also *accumulates* counters across every batch it
    supervises (one policy serves a whole pipeline run); they live in a
    :class:`repro.runtime.telemetry.MetricsRegistry` (``batch.*`` names,
    an injected pipeline-wide registry or a private one) and surface in
    the metrics JSON as the ``"batch"`` block (schema 2).
    """

    def __init__(self, timeout: Optional[float] = None, retries: int = 2,
                 backoff: float = 0.1, serial_fallback: bool = True,
                 registry=None):
        from repro.runtime.telemetry import MetricsRegistry

        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = max(0.0, float(backoff))
        self.serial_fallback = serial_fallback
        self.registry = registry if registry is not None else MetricsRegistry()
        self._timeouts = self.registry.counter("batch.timeouts")
        self._retried = self.registry.counter("batch.retries")
        self._worker_failures = self.registry.counter("batch.worker_failures")
        self._serial_fallbacks = self.registry.counter(
            "batch.serial_fallbacks")

    @property
    def timeouts(self) -> int:
        return self._timeouts.value

    @property
    def retried(self) -> int:
        return self._retried.value

    @property
    def worker_failures(self) -> int:
        return self._worker_failures.value

    @property
    def serial_fallbacks(self) -> int:
        return self._serial_fallbacks.value

    def counters(self) -> Dict:
        """The metrics-JSON ``"batch"`` block (schema 2)."""
        return {
            "timeout_seconds": self.timeout,
            "retry_budget": self.retries,
            "backoff_seconds": self.backoff,
            "timeouts": self.timeouts,
            "retries": self.retried,
            "worker_failures": self.worker_failures,
            "serial_fallbacks": self.serial_fallbacks,
        }

    def __repr__(self) -> str:
        return ("<BatchPolicy timeout=%s retries=%d timeouts=%d "
                "failures=%d fallbacks=%d>") % (
            self.timeout, self.retries, self.timeouts,
            self.worker_failures, self.serial_fallbacks,
        )


def run_tasks(worker: Callable[[Dict], Dict], payloads: Sequence[Dict],
              pool: Optional[ProcessPoolExecutor],
              policy: Optional[BatchPolicy] = None) -> List[Dict]:
    """Run ``worker`` over ``payloads`` on ``pool``; results in payload order.

    Transient failures — a worker process dying (``BrokenExecutor``), an
    exception escaping the worker, or an item exceeding the policy's
    per-item timeout — are retried in waves with exponential backoff.
    Items that exhaust the retry budget (or face a broken/absent pool) are
    re-run serially in-process, so a flaky pool degrades to serial
    execution with identical results instead of failing the batch.
    Deterministic worker errors therefore surface exactly once, from the
    in-process run, with a real traceback.
    """
    policy = policy if policy is not None else BatchPolicy()
    results: List = [_UNSET] * len(payloads)
    pending = list(range(len(payloads)))
    broken = pool is None
    wave = 0
    while pending and not broken and wave <= policy.retries:
        if wave:
            policy._retried.inc(len(pending))
            time.sleep(policy.backoff * (2 ** (wave - 1)))
        futures = {}
        try:
            for index in pending:
                futures[pool.submit(worker, payloads[index])] = index
        except Exception:
            broken = True  # pool refused work (shut down or broken)
        for future, index in futures.items():
            try:
                results[index] = future.result(timeout=policy.timeout)
            except FuturesTimeoutError:
                policy._timeouts.inc()
                future.cancel()
            except BrokenExecutor:
                policy._worker_failures.inc()
                broken = True
            except Exception:
                policy._worker_failures.inc()
        pending = [index for index in pending if results[index] is _UNSET]
        wave += 1
    if pending:
        if not policy.serial_fallback:
            raise RuntimeError(
                "%d/%d batch items failed after %d retries"
                % (len(pending), len(payloads), policy.retries))
        for index in pending:
            policy._serial_fallbacks.inc()
            results[index] = worker(payloads[index])
    return results


def _cacheable(output: Dict) -> Dict:
    """What of a worker output goes into the result cache.

    Spans are observations of one particular execution (timings, worker
    ids), not results — replaying them from a warm cache would be lying
    about where time went, so they are stripped; cache hits get a single
    ``cached=True`` marker span instead.  Schedule logs are stripped too:
    they live in their own ``record`` stage (far smaller entries), so a
    detect entry produced by a recording run stays byte-identical to one
    produced by a normal run.
    """
    return {key: value for key, value in output.items()
            if key not in ("spans", "log")}


def run_cached_tasks(
    worker: Callable[[Dict], Dict],
    payloads: Sequence[Dict],
    cache=None,
    stage: str = "",
    keys: Optional[Sequence[str]] = None,
    jobs: int = 1,
    executor: Optional[ProcessPoolExecutor] = None,
    policy: Optional[BatchPolicy] = None,
) -> List[Dict]:
    """Cache-aware, fault-tolerant fan-out of one stage's items.

    Items whose key is already in ``cache`` are answered from disk (their
    output gains ``"cached": True`` and carries no spans); the rest run
    via :func:`run_tasks` on a pool when ``jobs > 1`` or an ``executor``
    is supplied, in-process otherwise, and their stripped outputs are
    stored.  Outputs always come back in payload order, so the merge the
    caller performs is identical no matter which items were cached, pooled
    or re-run serially.
    """
    results: List[Optional[Dict]] = [None] * len(payloads)
    missing: List[int] = []
    if cache is not None and keys is not None:
        for index in range(len(payloads)):
            value = cache.get(stage, keys[index])
            if value is not None:
                output = dict(value)
                output["cached"] = True
                results[index] = output
            else:
                missing.append(index)
    else:
        missing = list(range(len(payloads)))
    if missing:
        miss_payloads = [payloads[index] for index in missing]
        if jobs > 1 or executor is not None:
            with _pool(jobs, executor) as pool:
                outputs = run_tasks(worker, miss_payloads, pool,
                                    policy=policy)
        else:
            outputs = [worker(payload) for payload in miss_payloads]
        for index, output in zip(missing, outputs):
            results[index] = output
            if cache is not None and keys is not None:
                cache.put(stage, keys[index], _cacheable(output))
    return results


# ---------------------------------------------------------------------------
# stage 1/2: detector fan-out across seeds (and programs)


def _detect_worker(payload: Dict) -> Dict:
    """Run one detector seed; return reports, stats and spans as payloads.

    Every run also reports its interleaving coverage
    (:class:`repro.runtime.coverage.SeedCoverage` payload) — the signal
    the exploration driver budgets on; collecting it never perturbs the
    schedule.  ``payload["scheduler"]`` optionally overrides the TSan
    schedule family (``"pct"`` swaps the uniform random scheduler for a
    PCT one at ``payload["depth"]`` — the explore driver's escalation).
    """
    from repro.detectors.ski import run_ski_seed
    from repro.detectors.tsan import run_tsan_seed

    module = _resolve_module(payload["source"])
    annotations = annotations_from_payload(module, payload["annotations"])
    tracer = SpanTracer()
    coverage: List = []
    logs: Optional[List] = [] if payload.get("record") else None
    profiles: Optional[List] = [] if payload.get("profile") else None
    profile_interval = payload.get("profile")
    started = time.perf_counter()
    fuse = bool(payload.get("fuse"))
    if payload["kind"] == "ski":
        reports, result, detector = run_ski_seed(
            module, payload["seed"], entry=payload["entry"],
            inputs=payload["inputs"], annotations=annotations,
            max_steps=payload["max_steps"], depth=payload["depth"],
            tracer=tracer, coverage_out=coverage, record_out=logs,
            profile_out=profiles, profile_interval=profile_interval,
            fuse=fuse,
        )
    else:
        scheduler_factory = None
        if payload.get("scheduler") == "pct":
            from repro.runtime.scheduler import PCTScheduler

            depth = payload["depth"]
            scheduler_factory = (
                lambda seed: PCTScheduler(seed=seed, depth=depth))
        reports, result, detector = run_tsan_seed(
            module, payload["seed"], entry=payload["entry"],
            inputs=payload["inputs"], annotations=annotations,
            max_steps=payload["max_steps"], entry_args=payload["entry_args"],
            scheduler_factory=scheduler_factory, tracer=tracer,
            coverage_out=coverage, record_out=logs,
            profile_out=profiles, profile_interval=profile_interval,
            fuse=fuse,
        )
    output = {
        "seed": payload["seed"],
        "reports": reports_to_payloads(reports),
        "stats": (payload["seed"], result.reason, result.steps,
                  detector.access_count, len(reports),
                  time.perf_counter() - started),
        "coverage": coverage[0].to_payload(),
        "spans": tracer.export_payload(),
    }
    if logs:
        output["log"] = logs[0].to_payload()
    if profiles:
        output["profile"] = profiles[0].to_payload()
    return output


def _detect_payload(kind: str, source, seed: int, entry: str, inputs,
                    annotations_payload, max_steps: int, depth: int,
                    entry_args: Sequence[int],
                    scheduler: Optional[str] = None,
                    record: bool = False,
                    profile: Optional[int] = None,
                    fuse: bool = False) -> Dict:
    payload = {
        "kind": kind,
        "source": source,
        "seed": seed,
        "entry": entry,
        "inputs": inputs,
        "annotations": annotations_payload,
        "max_steps": max_steps,
        "depth": depth,
        "entry_args": tuple(entry_args),
        "scheduler": scheduler,
    }
    if record:
        payload["record"] = True
    if profile:
        # Part of the cache key on purpose: a profiled run's output
        # carries the sample aggregate, so it must not be answered from
        # (or overwrite) an unprofiled seed's entry.
        payload["profile"] = int(profile)
    if fuse:
        # Also part of the cache key on purpose: fused results are
        # bit-identical by construction (the diff oracle enforces it),
        # but keeping the entries separate means a divergence hunt can
        # compare cold fused vs cold stepwise runs instead of silently
        # reading one mode's cache from the other's sweep.
        payload["fuse"] = True
    return payload


#: payload keys excluded from cache keys: the module source (the module
#: digest already keys the build) and the record flag (recording never
#: changes the detector's results, so recorded and plain runs share the
#: same detect entries; logs key the separate ``record`` stage).
_NON_KEY_FIELDS = ("source", "record")


def _detect_item_key(cache, module: Module, payload: Dict) -> str:
    """Cache key of one detector seed: everything but the module source."""
    parts = {key: value for key, value in payload.items()
             if key not in _NON_KEY_FIELDS}
    return cache.key("detect", module=module, **parts)


def _record_item_key(cache, module: Module, payload: Dict) -> str:
    """Cache key of one seed's schedule log (same parts, own stage)."""
    parts = {key: value for key, value in payload.items()
             if key not in _NON_KEY_FIELDS}
    return cache.key("record", module=module, **parts)


def run_seeds_parallel(
    kind: str,
    module: Module,
    module_source,
    entry: str = "main",
    inputs: Optional[Dict] = None,
    seeds: Sequence[int] = range(10),
    annotations: Optional[AnnotationSet] = None,
    max_steps: int = 200_000,
    entry_args: Sequence[int] = (),
    depth: int = 3,
    jobs: int = 2,
    stats_out: Optional[List] = None,
    executor: Optional[ProcessPoolExecutor] = None,
    tracer: Optional[SpanTracer] = None,
    cache=None,
    policy: Optional[BatchPolicy] = None,
    scheduler: Optional[str] = None,
    coverage_out: Optional[List] = None,
    record: bool = False,
    logs_out: Optional[List] = None,
    profile_out: Optional[List] = None,
    profile_interval: Optional[int] = None,
    feed=None,
    fuse: bool = False,
) -> Tuple[ReportSet, List[RunStats]]:
    """Fan one program's seeds out over worker processes.

    ``module_source`` is either a registry spec name (str) or a picklable
    zero-argument module factory; ``module`` is the parent's copy, against
    which the merged reports are rehydrated.  The merge happens in seed
    order regardless of completion order, so the returned
    :class:`ReportSet` is identical to the serial run's — and so is the
    span tree adopted into ``tracer``.

    With a ``cache`` (:class:`repro.owl.cache.ResultCache`), seeds whose
    results are already on disk are not re-executed — including at
    ``jobs=1``, where misses run in-process; ``policy`` adds per-item
    timeout/retry fault tolerance to the pooled path.

    ``scheduler`` overrides the TSan schedule family per seed (``"pct"``;
    part of every cache key, so escalated re-runs of a seed never collide
    with its base-family entry).  ``coverage_out``, when given a list,
    receives one :class:`repro.runtime.coverage.SeedCoverage` per seed
    **in seed order** — the deterministic merge input the exploration
    driver's budgeting (and its jobs=1 vs jobs=2 parity) relies on.

    ``record=True`` additionally records every execution as a
    :class:`repro.runtime.record.ScheduleLog` (delivered in seed order via
    ``logs_out``).  Logs land in the cache under their own ``record``
    stage — far smaller entries than the detect payloads — keyed by the
    same parts as the detect entry, which itself stays byte-identical to a
    plain run's.  A seed is only answered from the cache when *both*
    stages hit; a seed whose log is missing re-executes (re-warming both),
    so record mode always returns a complete log set.

    ``profile_out``, when given a list, receives one
    :class:`repro.runtime.profiler.SeedProfile` per seed in seed order
    (sampled every ``profile_interval`` decisions); profiles are part of
    the worker output and the cache entry, so warm profiled runs return
    the same samples the cold run took.  ``feed``, when given an
    :class:`repro.owl.stream.EventFeed`, receives one ``seed_done`` event
    per seed at merge time — in seed order, with the cache disposition.
    """
    seeds = list(seeds)
    annotations_payload = annotations_to_payload(annotations)
    profile = None
    if profile_out is not None:
        from repro.runtime.profiler import DEFAULT_SAMPLE_INTERVAL

        profile = int(profile_interval or DEFAULT_SAMPLE_INTERVAL)
    payloads = [
        _detect_payload(kind, module_source, seed, entry, inputs,
                        annotations_payload, max_steps, depth, entry_args,
                        scheduler=scheduler, record=record, profile=profile,
                        fuse=fuse)
        for seed in seeds
    ]
    keys = (
        [_detect_item_key(cache, module, payload) for payload in payloads]
        if cache is not None else None
    )
    if record and cache is not None:
        record_keys = [_record_item_key(cache, module, payload)
                       for payload in payloads]
        cached_logs = [cache.get("record", key) for key in record_keys]
        hit_indices = [i for i, log in enumerate(cached_logs)
                       if log is not None]
        live_indices = [i for i, log in enumerate(cached_logs) if log is None]
        outputs: List[Optional[Dict]] = [None] * len(payloads)
        if hit_indices:
            # The log is on disk; the detect entry may be answered from the
            # cache as usual (and is re-stored on a miss).
            hit_outputs = run_cached_tasks(
                _detect_worker, [payloads[i] for i in hit_indices],
                cache=cache, stage="detect",
                keys=[keys[i] for i in hit_indices],
                jobs=jobs, executor=executor, policy=policy,
            )
            for index, output in zip(hit_indices, hit_outputs):
                if "log" not in output:
                    output["log"] = cached_logs[index]
                outputs[index] = output
        if live_indices:
            # No log on disk: force a live run even if the detect entry is
            # warm, then store both stages.
            live_outputs = run_cached_tasks(
                _detect_worker, [payloads[i] for i in live_indices],
                cache=None, jobs=jobs, executor=executor, policy=policy,
            )
            for index, output in zip(live_indices, live_outputs):
                outputs[index] = output
                cache.put("detect", keys[index], _cacheable(output))
                cache.put("record", record_keys[index], output["log"])
    else:
        outputs = run_cached_tasks(
            _detect_worker, payloads, cache=cache, stage="detect", keys=keys,
            jobs=jobs, executor=executor, policy=policy,
        )
    merged = ReportSet()
    stats: List[RunStats] = []
    for seed, output in zip(seeds, outputs):  # seed order, always
        merged.merge(reports_from_payloads(module, output["reports"]))
        stats.append(RunStats(*output["stats"]))
        if coverage_out is not None and output.get("coverage") is not None:
            from repro.runtime.coverage import SeedCoverage

            coverage_out.append(SeedCoverage.from_payload(output["coverage"]))
        if logs_out is not None and output.get("log") is not None:
            from repro.runtime.record import ScheduleLog

            logs_out.append(ScheduleLog.from_payload(output["log"]))
        if profile_out is not None and output.get("profile") is not None:
            from repro.runtime.profiler import SeedProfile

            profile_out.append(SeedProfile.from_payload(output["profile"]))
        if feed is not None:
            feed.seed_done(stage="detect", seed=seed, detector=kind,
                           steps=output["stats"][2],
                           reports=output["stats"][4],
                           cached=bool(output.get("cached")))
        if tracer is not None:
            if output.get("cached"):
                with tracer.span("detect_seed", seed=seed, detector=kind,
                                 cached=True, reports=output["stats"][4]):
                    pass
            else:
                tracer.adopt(output["spans"])
    if stats_out is not None:
        stats_out.extend(stats)
    return merged, stats


def run_detector_batch(
    spec: ProgramSpec,
    annotations: Optional[AnnotationSet] = None,
    jobs: int = 1,
    executor: Optional[ProcessPoolExecutor] = None,
    stats_out: Optional[List] = None,
    tracer: Optional[SpanTracer] = None,
    cache=None,
    policy: Optional[BatchPolicy] = None,
    profile_out: Optional[List] = None,
    profile_interval: Optional[int] = None,
    feed=None,
    fuse: bool = False,
) -> Tuple[ReportSet, List[RunStats]]:
    """The spec's front-end detector over its seeds, parallel when possible.

    Caching, like parallelism, requires the spec to be resolvable by name
    through the registry; for anything else ``cache`` is ignored and the
    serial path runs as before.
    """
    if not can_parallelize(spec):
        cache = None  # keys need the registry-rebuilt module
    if ((jobs <= 1 and executor is None) and cache is None) \
            or not can_parallelize(spec):
        from repro.owl.integration import run_detector

        stats: List[RunStats] = []
        reports, _ = run_detector(spec, annotations=annotations,
                                  stats_out=stats, tracer=tracer,
                                  profile_out=profile_out,
                                  profile_interval=profile_interval,
                                  feed=feed, fuse=fuse)
        if stats_out is not None:
            stats_out.extend(stats)
        return reports, stats
    return run_seeds_parallel(
        spec.detector, spec.build(), spec.name, entry=spec.entry,
        inputs=spec.workload_inputs, seeds=spec.detect_seeds,
        annotations=annotations, max_steps=spec.max_steps, jobs=jobs,
        stats_out=stats_out, executor=executor, tracer=tracer,
        cache=cache, policy=policy, profile_out=profile_out,
        profile_interval=profile_interval, feed=feed, fuse=fuse,
    )


def run_detectors_batch(
    specs: Sequence[ProgramSpec],
    jobs: int = 2,
    executor: Optional[ProcessPoolExecutor] = None,
    cache=None,
    policy: Optional[BatchPolicy] = None,
) -> Dict[str, Tuple[ReportSet, List[RunStats]]]:
    """Fan *all* ``(program × seed)`` detector runs out over one pool.

    Seeds of every program interleave freely across workers; each program's
    reports are still merged in its own seed order.  Programs that cannot be
    rebuilt in a worker run serially, after the parallel ones complete.
    """
    parallel = [spec for spec in specs if can_parallelize(spec)]
    serial = [spec for spec in specs if not can_parallelize(spec)]
    payloads: List[Dict] = []
    owners: List[ProgramSpec] = []
    for spec in parallel:
        for seed in spec.detect_seeds:
            payloads.append(_detect_payload(
                spec.detector, spec.name, seed, spec.entry,
                spec.workload_inputs, None, spec.max_steps, 3, (),
            ))
            owners.append(spec)
    keys = (
        [_detect_item_key(cache, spec.build(), payload)
         for spec, payload in zip(owners, payloads)]
        if cache is not None else None
    )
    outputs = run_cached_tasks(
        _detect_worker, payloads, cache=cache, stage="detect", keys=keys,
        jobs=jobs, executor=executor, policy=policy,
    )
    grouped: Dict[str, Dict[int, Dict]] = {spec.name: {} for spec in parallel}
    for spec, output in zip(owners, outputs):
        grouped[spec.name][output["seed"]] = output
    results: Dict[str, Tuple[ReportSet, List[RunStats]]] = {}
    for spec in parallel:
        merged = ReportSet()
        stats: List[RunStats] = []
        for seed in spec.detect_seeds:
            output = grouped[spec.name][seed]
            merged.merge(reports_from_payloads(spec.build(), output["reports"]))
            stats.append(RunStats(*output["stats"]))
        results[spec.name] = (merged, stats)
    for spec in serial:
        results[spec.name] = run_detector_batch(spec, jobs=1)
    return results


# ---------------------------------------------------------------------------
# stage 3: per-report race verification


def _race_verify_worker(payload: Dict) -> Dict:
    spec = _cached_spec(payload["spec"])
    module = spec.build()
    report = report_from_payload(module, payload["report"])
    inputs = payload["inputs"]
    max_steps = payload["max_steps"]
    tracer = SpanTracer()
    verifier = DynamicRaceVerifier(
        module, entry=payload["entry"], inputs=inputs,
        seeds=payload["seeds"], max_steps=max_steps,
        vm_factory=lambda seed: spec.make_vm(
            seed, inputs=inputs, max_steps=max_steps,
        ),
        tracer=tracer,
    )
    verification = verifier.verify(report)
    hints = verification.hints
    return {
        "index": payload["index"],
        "verified": verification.verified,
        "runs_used": verification.runs_used,
        "livelocks_resolved": verification.livelocks_resolved,
        "spans": tracer.export_payload(),
        "hints": None if hints is None else {
            "variable": hints.variable,
            "value_type": hints.value_type,
            "read_value": hints.read_value,
            "write_value": hints.write_value,
            "null_write": hints.null_write,
            "address": hints.address,
        },
    }


def verify_races_batch(
    spec: ProgramSpec,
    reports: Sequence[RaceReport],
    jobs: int = 1,
    executor: Optional[ProcessPoolExecutor] = None,
    tracer: Optional[SpanTracer] = None,
    cache=None,
    policy: Optional[BatchPolicy] = None,
    feed=None,
) -> List[RaceVerification]:
    """Verify each report in its own worker; results keep report order.

    ``feed``, when given an :class:`repro.owl.stream.EventFeed`, receives
    one ``item_done`` event per report in report order (batch path only).
    """
    reports = list(reports)
    if not reports:
        return []
    if not can_parallelize(spec):
        cache = None
    if ((jobs <= 1 and executor is None) and cache is None) \
            or not can_parallelize(spec):
        verifier = DynamicRaceVerifier(
            spec.build(), entry=spec.entry, inputs=spec.workload_inputs,
            seeds=spec.verify_seeds, max_steps=spec.max_steps,
            vm_factory=lambda seed: spec.make_vm(seed),
            tracer=tracer,
        )
        return verifier.verify_all(reports)
    payloads = [
        {
            "spec": spec.name,
            "entry": spec.entry,
            "inputs": spec.workload_inputs,
            "seeds": list(spec.verify_seeds),
            "max_steps": spec.max_steps,
            "index": index,
            "report": report_to_payload(report),
        }
        for index, report in enumerate(reports)
    ]
    keys = None
    if cache is not None:
        module = spec.build()
        keys = [
            cache.key("race_verify", module=module, **{
                key: value for key, value in payload.items()
                if key != "index"
            })
            for payload in payloads
        ]
    outputs = run_cached_tasks(
        _race_verify_worker, payloads, cache=cache, stage="race_verify",
        keys=keys, jobs=jobs, executor=executor, policy=policy,
    )
    outcomes: List[RaceVerification] = []
    for index, output in enumerate(outputs):  # report order, always
        report = reports[index]
        hints = (
            SecurityHints(**output["hints"])
            if output["hints"] is not None else None
        )
        if output["verified"]:
            report.tags[DynamicRaceVerifier.TAG] = hints
        outcomes.append(RaceVerification(
            report, output["verified"], hints, output["runs_used"],
            output["livelocks_resolved"],
        ))
        if feed is not None:
            feed.item_done(stage="race_verification", index=index,
                           item=report.uid, verified=output["verified"],
                           cached=bool(output.get("cached")))
        if tracer is not None:
            if output.get("cached"):
                with tracer.span("verify_report", report=report.uid,
                                 cached=True, verified=output["verified"]):
                    pass
            elif output["spans"]:
                tracer.adopt(output["spans"])
    return outcomes


# ---------------------------------------------------------------------------
# stage 5: per-vulnerability verification


def _vuln_verify_worker(payload: Dict) -> Dict:
    spec = _cached_spec(payload["spec"])
    module = spec.build()
    vulnerability = vuln_from_payload(module, payload["vuln"])
    ground_truth = spec.attack_for_site(vulnerability.site.location)
    inputs = (
        ground_truth.subtle_inputs if ground_truth is not None
        else payload["inputs"]
    )
    tracer = SpanTracer()
    verifier = DynamicVulnerabilityVerifier(
        module, entry=payload["entry"], inputs=inputs,
        seeds=payload["seeds"], max_steps=payload["max_steps"],
        vm_factory=lambda seed, _inputs=inputs: spec.make_vm(
            seed, inputs=_inputs,
        ),
        attack_predicate=(
            ground_truth.predicate if ground_truth is not None else None
        ),
        racing_order=(
            (ground_truth.racing_order, "") if ground_truth is not None
            else None
        ),
        tracer=tracer,
    )
    verification = verifier.verify(vulnerability)
    return {
        "index": payload["index"],
        "site_reached": verification.site_reached,
        "attack_realized": verification.attack_realized,
        "diverged": [branch.uid or 0 for branch in verification.diverged_branches],
        "faults": [kind.value for kind in verification.fault_kinds],
        "runs_used": verification.runs_used,
        "spans": tracer.export_payload(),
    }


def verify_vulns_batch(
    spec: ProgramSpec,
    vulnerabilities: Sequence,
    jobs: int = 1,
    executor: Optional[ProcessPoolExecutor] = None,
    tracer: Optional[SpanTracer] = None,
    cache=None,
    policy: Optional[BatchPolicy] = None,
    feed=None,
) -> List[Tuple[VulnVerification, Optional[AttackGroundTruth]]]:
    """Verify each vulnerability in its own worker; results keep input order.

    Ground truth is matched *inside* the worker (by site location against
    the registry spec's attacks — deterministic), so subtle inputs, racing
    order and attack predicates never cross the process boundary; the
    parent re-matches against its own spec for the returned pairing.
    """
    vulnerabilities = list(vulnerabilities)
    if not vulnerabilities:
        return []
    if not can_parallelize(spec):
        cache = None
    if ((jobs <= 1 and executor is None) and cache is None) \
            or not can_parallelize(spec):
        return [
            _verify_vuln_serial(spec, vulnerability, tracer=tracer)
            for vulnerability in vulnerabilities
        ]
    module = spec.build()
    payloads = [
        {
            "spec": spec.name,
            "entry": spec.entry,
            "inputs": spec.workload_inputs,
            "seeds": list(spec.verify_seeds),
            "max_steps": spec.max_steps,
            "index": index,
            "vuln": vuln_to_payload(vulnerability),
        }
        for index, vulnerability in enumerate(vulnerabilities)
    ]
    keys = None
    if cache is not None:
        keys = [
            cache.key("vuln_verify", module=module, **{
                key: value for key, value in payload.items()
                if key != "index"
            })
            for payload in payloads
        ]
    outputs = run_cached_tasks(
        _vuln_verify_worker, payloads, cache=cache, stage="vuln_verify",
        keys=keys, jobs=jobs, executor=executor, policy=policy,
    )
    outcomes: List[Tuple[VulnVerification, Optional[AttackGroundTruth]]] = []
    for index, output in enumerate(outputs):  # vulnerability order, always
        vulnerability = vulnerabilities[index]
        ground_truth = spec.attack_for_site(vulnerability.site.location)
        verification = VulnVerification(
            vulnerability,
            output["site_reached"],
            output["attack_realized"],
            [module.instruction_by_uid(uid) for uid in output["diverged"]],
            [FaultKind(value) for value in output["faults"]],
            output["runs_used"],
        )
        outcomes.append((verification, ground_truth))
        if feed is not None:
            feed.item_done(stage="vulnerability_verification", index=index,
                           item=str(vulnerability.site.location),
                           realized=output["attack_realized"],
                           cached=bool(output.get("cached")))
        if tracer is not None:
            if output.get("cached"):
                with tracer.span(
                    "verify_vulnerability",
                    site=str(vulnerability.site.location),
                    cached=True, realized=output["attack_realized"],
                ):
                    pass
            elif output["spans"]:
                tracer.adopt(output["spans"])
    return outcomes


def _verify_vuln_serial(
    spec: ProgramSpec, vulnerability, tracer: Optional[SpanTracer] = None,
) -> Tuple[VulnVerification, Optional[AttackGroundTruth]]:
    """One vulnerability through the serial path (mirrors the worker)."""
    ground_truth = spec.attack_for_site(vulnerability.site.location)
    inputs = (
        ground_truth.subtle_inputs if ground_truth is not None
        else spec.workload_inputs
    )
    verifier = DynamicVulnerabilityVerifier(
        spec.build(), entry=spec.entry, inputs=inputs,
        seeds=spec.verify_seeds, max_steps=spec.max_steps,
        vm_factory=lambda seed, _inputs=inputs: spec.make_vm(
            seed, inputs=_inputs,
        ),
        attack_predicate=(
            ground_truth.predicate if ground_truth is not None else None
        ),
        racing_order=(
            (ground_truth.racing_order, "") if ground_truth is not None
            else None
        ),
        tracer=tracer,
    )
    return verifier.verify(vulnerability), ground_truth
