"""Content-addressed, on-disk result cache for the OWL pipeline.

The pipeline is deliberately re-entrant — adhoc-sync annotation re-runs the
detector (§5.1), and the verifiers re-execute schedules (§5.2, §6.2) — so
most of a repeated ``owl`` invocation repeats byte-identical
sub-computations.  This module makes each of those sub-computations a cache
entry:

- one **detector seed** (``detect``): the per-seed report payloads and
  :class:`repro.runtime.metrics.RunStats` tuple,
- the **adhoc-sync classification** of a report set (``adhoc``): the
  annotation payload plus which report uids were tagged,
- one **race verification** (``race_verify``): verified flag, security
  hints, runs used,
- one **Algorithm-1 propagation** (``vuln_analysis``): the vulnerable-site
  payloads found from one report,
- one **vulnerability verification** (``vuln_verify``): site-reached /
  attack-realized outcome.

Keys are a SHA-256 over a canonical JSON rendering of *everything the
result depends on*: the program's printed IR (:func:`module_digest`), the
stage name and its configuration (seed, inputs, annotations, step budgets,
analysis options), and a **code version** — a digest over the source text
of the whole ``repro`` package (:func:`code_version`), so any code change
invalidates every entry rather than risking stale results.  Values are the
same plain payloads :mod:`repro.owl.batch` ships across process
boundaries, so a cache hit rehydrates through exactly the code path a
worker result does — which is what makes cached and uncached runs produce
bit-identical :meth:`StageCounters.parity_dict` and provenance
dispositions.

Entries live under ``<root>/<stage>/<key[:2]>/<key>.json`` (default root
``benchmarks/out/cache``) wrapped in an envelope carrying the schema
version, stage and key.  :meth:`ResultCache.get` rejects — and deletes —
entries that fail to parse, declare a different schema, or do not match
the stage/key they are filed under; corruption therefore degrades to a
cache miss, never to a wrong result.  Writes go through a same-directory
temporary file and ``os.replace`` so a crash mid-write cannot leave a
half-written entry behind.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from typing import Dict, Optional

#: Envelope version of on-disk entries; bump on incompatible layout changes.
CACHE_SCHEMA = 1

#: Default cache root, next to the benchmark outputs.
DEFAULT_CACHE_DIR = os.path.join("benchmarks", "out", "cache")

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Digest of the ``repro`` package's source text, computed once.

    Part of every cache key: any change to the detectors, the runtime, the
    verifiers — or anything else under ``repro`` — invalidates the whole
    cache.  That is deliberately coarse; correctness beats reuse.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        digest = hashlib.sha256()
        root = os.path.dirname(os.path.abspath(repro.__file__))
        for directory, _dirs, files in sorted(os.walk(root)):
            for name in sorted(files):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(directory, name)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as handle:
                    digest.update(handle.read())
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def _canonical(value):
    """A JSON-safe, order-stable rendering of arbitrary config values.

    Tuples and lists collapse to the same form, dict entries are sorted
    (keys of any hashable type), bytes become hex, and anything else falls
    back to ``repr`` — so the same value always hashes the same way
    regardless of which process computed it.
    """
    if isinstance(value, dict):
        entries = [[_canonical(key), _canonical(item)]
                   for key, item in value.items()]
        entries.sort(key=repr)
        return ["dict", entries]
    if isinstance(value, (list, tuple)):
        return ["list", [_canonical(item) for item in value]]
    if isinstance(value, bytes):
        return ["bytes", value.hex()]
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (str, int, float)):
        return value
    return ["repr", repr(value)]


def stable_hash(value) -> str:
    """SHA-256 over the canonical JSON rendering of ``value``."""
    rendered = json.dumps(_canonical(value), sort_keys=True,
                          separators=(",", ":"))
    return hashlib.sha256(rendered.encode()).hexdigest()


def module_digest(module) -> str:
    """Digest of a module's printed IR (uids, locations and all)."""
    from repro.ir.printer import print_module

    return hashlib.sha256(print_module(module).encode()).hexdigest()[:16]


class ResultCache:
    """Content-addressed stage-result store with hit/miss accounting.

    One instance serves a whole pipeline run (or many); per-stage hit,
    miss and store counters accumulate for the metrics JSON
    (``"cache"`` block, schema 2).  An optional
    :class:`repro.owl.journal.BatchJournal` attached via
    :attr:`journal` receives one completion record per item that lands in
    the cache (fresh store or warm hit) — the breadcrumbs ``owl resume``
    follows.
    """

    def __init__(self, root: str = DEFAULT_CACHE_DIR,
                 version: Optional[str] = None, registry=None):
        from repro.runtime.telemetry import MetricsRegistry

        self.root = root
        self.version = version if version is not None else code_version()
        self.journal = None
        #: Hit/miss/store counters live in a telemetry registry
        #: (``cache.<stage>.<what>`` names) — an injected pipeline-wide
        #: one, or a private one — so snapshots carry them for free.
        self.registry = registry if registry is not None else MetricsRegistry()
        self._stages: set = set()
        self._module_digests: Dict[int, str] = {}

    # ------------------------------------------------------------------
    # keys

    def module_key(self, module) -> str:
        """Memoized :func:`module_digest` (printing a module is not free)."""
        digest = self._module_digests.get(id(module))
        if digest is None:
            digest = module_digest(module)
            self._module_digests[id(module)] = digest
        return digest

    def key(self, stage: str, module=None, **parts) -> str:
        """The content address of one unit of stage work."""
        payload = {
            "stage": stage,
            "code": self.version,
            "parts": parts,
        }
        if module is not None:
            payload["module"] = self.module_key(module)
        return stable_hash(payload)

    # ------------------------------------------------------------------
    # storage

    def _path(self, stage: str, key: str) -> str:
        return os.path.join(self.root, stage, key[:2], key + ".json")

    def get(self, stage: str, key: str):
        """The stored value, or None (counted as a miss).

        Unreadable, truncated, schema-mismatched or mis-filed entries are
        deleted and treated as misses — a corrupted cache can cost time,
        never correctness.
        """
        path = self._path(stage, key)
        try:
            with open(path) as handle:
                envelope = json.load(handle)
        except FileNotFoundError:
            self._count(stage, "misses")
            return None
        except (json.JSONDecodeError, OSError, UnicodeDecodeError):
            self._discard(path)
            self._count(stage, "misses")
            return None
        if (
            not isinstance(envelope, dict)
            or envelope.get("schema") != CACHE_SCHEMA
            or envelope.get("stage") != stage
            or envelope.get("key") != key
            or "value" not in envelope
        ):
            self._discard(path)
            self._count(stage, "misses")
            return None
        self._count(stage, "hits")
        if self.journal is not None:
            self.journal.record(stage, key, "hit")
        return envelope["value"]

    def put(self, stage: str, key: str, value) -> Optional[str]:
        """Persist one result atomically; returns the path written.

        A cache is an accelerator, never a correctness dependency: an
        ordinary store failure (disk full, permissions yanked mid-run)
        discards the partial temp file, counts a ``store_errors``, and
        returns ``None`` — the caller keeps its in-memory result and the
        run proceeds as if caching were off.  ``KeyboardInterrupt`` and
        ``SystemExit`` are re-raised after the temp file is discarded:
        Ctrl-C mid-store must stop the run, not vanish into a silently
        degraded miss.
        """
        path = self._path(stage, key)
        directory = os.path.dirname(path)
        envelope = {
            "schema": CACHE_SCHEMA,
            "stage": stage,
            "key": key,
            "code": self.version,
            "value": value,
        }
        try:
            os.makedirs(directory, exist_ok=True)
            fd, temp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception:
            self._count(stage, "store_errors")
            return None
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle, default=repr)
            os.replace(temp_path, path)
        except (KeyboardInterrupt, SystemExit):
            self._discard(temp_path)
            raise
        except Exception:
            self._discard(temp_path)
            self._count(stage, "store_errors")
            return None
        self._count(stage, "stores")
        if self.journal is not None:
            self.journal.record(stage, key, "done")
        return path

    @staticmethod
    def _discard(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # accounting

    def _count(self, stage: str, what: str) -> None:
        self._stages.add(stage)
        self.registry.counter("cache.%s.%s" % (stage, what)).inc()

    def _stage_value(self, stage: str, what: str) -> int:
        return self.registry.counter("cache.%s.%s" % (stage, what)).value

    @property
    def hits(self) -> int:
        return sum(self._stage_value(stage, "hits")
                   for stage in self._stages)

    @property
    def misses(self) -> int:
        return sum(self._stage_value(stage, "misses")
                   for stage in self._stages)

    @property
    def stores(self) -> int:
        return sum(self._stage_value(stage, "stores")
                   for stage in self._stages)

    @property
    def store_errors(self) -> int:
        return sum(self._stage_value(stage, "store_errors")
                   for stage in self._stages)

    def stage_counters(self, stage: str) -> Dict[str, int]:
        """A copy of one stage's counters (zeros if the stage never ran)."""
        return {what: self._stage_value(stage, what)
                for what in ("hits", "misses", "stores", "store_errors")}

    def counters(self) -> Dict:
        """The metrics-JSON ``"cache"`` block (schema 2)."""
        return {
            "root": self.root,
            "code_version": self.version,
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "store_errors": self.store_errors,
            "stages": {
                stage: self.stage_counters(stage)
                for stage in sorted(self._stages)
            },
        }

    def describe(self) -> str:
        return "cache: %d hits, %d misses, %d stored (%s)" % (
            self.hits, self.misses, self.stores, self.root,
        )

    def __repr__(self) -> str:
        return "<ResultCache %s hits=%d misses=%d>" % (
            self.root, self.hits, self.misses,
        )
