"""The dynamic race verifier (paper section 5.2).

For each (reduced) race report, the verifier re-runs the program under the
debugger with *thread-specific breakpoints* on the two racing instructions.
A race is verified when two different threads are simultaneously halted at
the racing instructions with the same pending address — caught "in the
racing moment".  On verification it emits *security hints*: the racing
instructions, the values they are about to read/write, and the type of the
variable — enough to show "whether a NULL pointer difference can be
triggered or an uninitialized data can be read because of the race".

Livelock (all remaining progress requires a halted thread) is resolved by
temporarily releasing one of the triggered breakpoints, exactly as the paper
describes.  Races that never co-halt across the retry budget are eliminated
(the R.V.E. column of Table 3); as the paper notes, this can miss races that
"can't be reliably reproduced with 100% success rate".
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.detectors.report import RaceReport
from repro.ir.module import Module
from repro.runtime.debugger import Debugger, PendingAccess
from repro.runtime.interpreter import VM, ExecutionResult
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.spans import SpanTracer, maybe_span


class SecurityHints:
    """The dynamic information printed for a verified race."""

    def __init__(
        self,
        variable: Optional[str],
        value_type: str,
        read_value: Optional[int],
        write_value: Optional[int],
        null_write: bool,
        address: int,
    ):
        self.variable = variable
        self.value_type = value_type
        self.read_value = read_value
        self.write_value = write_value
        #: the write is about to store NULL/0 — a NULL-deref setup (Figure 2/6)
        self.null_write = null_write
        self.address = address

    def describe(self) -> str:
        parts = [
            "racing on %s (%s)" % (self.variable or hex(self.address), self.value_type),
        ]
        if self.read_value is not None:
            parts.append("value about to be read: %d" % self.read_value)
        if self.write_value is not None:
            parts.append("value about to be written: %d" % self.write_value)
        if self.null_write:
            parts.append("NULL/0 write: a NULL dereference may follow")
        return "; ".join(parts)

    def __repr__(self) -> str:
        return "<SecurityHints %s>" % self.describe()


class RaceVerification:
    """Outcome of verifying one race report."""

    def __init__(self, report: RaceReport, verified: bool,
                 hints: Optional[SecurityHints] = None, runs_used: int = 0,
                 livelocks_resolved: int = 0):
        self.report = report
        self.verified = verified
        self.hints = hints
        self.runs_used = runs_used
        self.livelocks_resolved = livelocks_resolved

    def __repr__(self) -> str:
        return "<RaceVerification %s runs=%d>" % (
            "VERIFIED" if self.verified else "eliminated", self.runs_used,
        )


class DynamicRaceVerifier:
    """Verifies race reports by catching them in the racing moment."""

    TAG = "verified"

    def __init__(
        self,
        module: Module,
        entry: str = "main",
        inputs: Optional[Dict] = None,
        seeds: Sequence[int] = range(6),
        max_steps: int = 200_000,
        vm_factory: Optional[Callable[[int], VM]] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        self.module = module
        self.entry = entry
        self.inputs = inputs
        self.seeds = list(seeds)
        self.max_steps = max_steps
        self.vm_factory = vm_factory
        self.tracer = tracer

    # ------------------------------------------------------------------

    def verify(self, report: RaceReport) -> RaceVerification:
        """One race per run, possibly several runs (seeds)."""
        with maybe_span(self.tracer, "verify_report",
                        report=report.uid, variable=report.variable) as span:
            verification = self._verify(report)
            if span is not None:
                span.attrs.update(
                    verified=verification.verified,
                    runs_used=verification.runs_used,
                    livelocks_resolved=verification.livelocks_resolved,
                )
        return verification

    def _verify(self, report: RaceReport) -> RaceVerification:
        livelocks = 0
        for attempt, seed in enumerate(self.seeds, start=1):
            vm = self._make_vm(seed)
            debugger = Debugger(vm)
            first = debugger.add_breakpoint(report.first.instruction)
            second = debugger.add_breakpoint(report.second.instruction)
            with maybe_span(self.tracer, "verify_attempt",
                            seed=seed, attempt=attempt) as span:
                vm.start(self.entry)
                hints = self._drive(vm, debugger, report)
                if span is not None:
                    span.attrs["caught"] = isinstance(hints, SecurityHints)
            if isinstance(hints, SecurityHints):
                report.tags[self.TAG] = hints
                return RaceVerification(report, True, hints, attempt, livelocks)
            livelocks += hints  # int: livelocks resolved this run
        return RaceVerification(report, False, None, len(self.seeds), livelocks)

    def verify_all(self, reports) -> List[RaceVerification]:
        return [self.verify(report) for report in reports]

    # ------------------------------------------------------------------

    def _make_vm(self, seed: int) -> VM:
        if self.vm_factory is not None:
            return self.vm_factory(seed)
        return VM(self.module, scheduler=RandomScheduler(seed), inputs=self.inputs,
                  max_steps=self.max_steps, seed=seed)

    def _drive(self, vm: VM, debugger: Debugger, report: RaceReport):
        """Run one execution; SecurityHints when caught, else livelock count."""
        livelocks_resolved = 0
        race_instructions = {report.first.instruction, report.second.instruction}
        while True:
            result = vm.run()
            if result.reason != ExecutionResult.BREAKPOINT:
                return livelocks_resolved
            halted = debugger.halted_threads()
            caught = self._racing_moment(vm, debugger, halted, race_instructions)
            if caught is not None:
                self._resume_all(debugger, halted)
                return caught
            if not vm.runnable_threads():
                released = debugger.release_one()
                if released is None:
                    return livelocks_resolved
                livelocks_resolved += 1
                if self.tracer is not None:
                    self.tracer.instant("livelock_release",
                                        release=livelocks_resolved)

    def _racing_moment(self, vm: VM, debugger: Debugger, halted,
                       race_instructions) -> Optional[SecurityHints]:
        """Two distinct threads at the racing instructions, same address?"""
        threads = [
            thread for thread in halted
            if thread.current_instruction() in race_instructions
        ]
        if len(threads) < 2:
            return None
        accesses: List[Tuple[object, PendingAccess]] = []
        for thread in threads:
            pending = debugger.pending_access(thread)
            if pending is not None and pending.address is not None:
                accesses.append((thread, pending))
        for i in range(len(accesses)):
            for j in range(i + 1, len(accesses)):
                thread_a, access_a = accesses[i]
                thread_b, access_b = accesses[j]
                if thread_a is thread_b:
                    continue
                if access_a.address != access_b.address:
                    continue
                if not (access_a.is_write or access_b.is_write):
                    continue
                return self._build_hints(vm, access_a, access_b)
        return None

    def _build_hints(self, vm: VM, access_a: PendingAccess,
                     access_b: PendingAccess) -> SecurityHints:
        write = access_a if access_a.is_write else access_b
        read = access_b if write is access_a else access_a
        return SecurityHints(
            variable=vm.memory.describe(write.address),
            value_type=write.value_type,
            read_value=(
                None if read.is_write
                else vm.debugger.peek_memory(read.address, 8)
            ),
            write_value=write.value,
            null_write=bool(write.is_write and write.value == 0),
            address=write.address,
        )

    @staticmethod
    def _resume_all(debugger: Debugger, halted) -> None:
        for thread in halted:
            debugger.resume(thread, step_past=True)
