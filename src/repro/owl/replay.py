"""First-class replay through the OWL pipeline.

Gluing :mod:`repro.runtime.record` to the pipeline stages: record a spec's
detect-seed sweep once (bare VMs, near reference speed — no detector
attached), then re-derive detector evidence offline by *replaying* the
logs with any detector attached, as many times as needed.  The pipeline's
two detector stages (raw detect, annotated re-run after schedule
reduction) both work this way under ``OwlPipeline(replay=...)``: the
annotated re-run replays the *same* logs with an annotation-aware
detector, because adhoc-sync annotations only change what the observer
reports, never the schedule.

Logs live one JSON-lines file per seed under a record directory
(``benchmarks/out/records/<program>/`` by default), written by
:func:`record_program` / ``owl record`` and consumed by
:func:`load_recorded_logs` / ``owl replay`` / ``owl explain --replay``.
Replay bookkeeping (how many replays ran, how many decisions they
consumed, every divergence counter) is exposed by
:meth:`ReplaySource.metrics_block` as the metrics JSON's ``replay`` block
(schema 5).
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detectors.report import ReportSet
from repro.runtime.metrics import RunStats
from repro.runtime.record import (
    ScheduleLog,
    record_seed,
    replay_log,
)
from repro.runtime.scheduler import PCTScheduler, RandomScheduler
from repro.spec import ProgramSpec

DEFAULT_RECORD_DIR = os.path.join("benchmarks", "out", "records")


def default_record_dir(program: str,
                       root: str = DEFAULT_RECORD_DIR) -> str:
    return os.path.join(root, program)


def log_path(record_dir: str, program: str, seed: int) -> str:
    return os.path.join(record_dir, "%s_seed%04d.jsonl" % (program, seed))


def discover_seeds(record_dir: str, program: str) -> List[int]:
    """Seeds with a recorded log under ``record_dir``, in seed order."""
    prefix = "%s_seed" % program
    seeds: List[int] = []
    if not os.path.isdir(record_dir):
        return seeds
    for name in os.listdir(record_dir):
        if name.startswith(prefix) and name.endswith(".jsonl"):
            digits = name[len(prefix):-len(".jsonl")]
            if digits.isdigit():
                seeds.append(int(digits))
    return sorted(seeds)


def _spec_scheduler(spec: ProgramSpec, seed: int, depth: int = 3):
    """The scheduler a live detector run of this spec would use."""
    if spec.detector == "ski":
        return PCTScheduler(seed=seed, depth=depth), "PCTScheduler"
    return RandomScheduler(seed), "RandomScheduler"


def _spec_world(spec: ProgramSpec):
    return spec.initial_world() if spec.initial_world is not None else None


def record_program(
    spec: ProgramSpec,
    seeds: Optional[Sequence[int]] = None,
    out_dir: Optional[str] = None,
    fingerprint: bool = False,
) -> "ReplaySource":
    """Record a spec's seed sweep as bare (detector-free) executions.

    Each seed runs once under the schedule family the spec's live
    detector would use (RandomScheduler for TSan specs, PCT for SKI
    specs), so a later replay with the detector attached observes exactly
    the event stream the live detect stage would have.  With ``out_dir``
    every log is saved as one JSON-lines file.  ``fingerprint=True``
    additionally captures per-seed ``"recorded"``-mode fingerprints for
    the diffcheck oracle (``ReplaySource.fingerprints``).
    """
    seeds = list(seeds if seeds is not None else spec.detect_seeds)
    module = spec.build()
    logs: List[ScheduleLog] = []
    fingerprints: List = []
    record_stats: List[RunStats] = []
    for seed in seeds:
        scheduler, label = _spec_scheduler(spec, seed)
        started = time.perf_counter()
        log, result, recorded = record_seed(
            module, seed, entry=spec.entry, inputs=spec.workload_inputs,
            max_steps=spec.max_steps, scheduler=scheduler,
            scheduler_label=label, world=_spec_world(spec),
            program=spec.name, fingerprint=fingerprint,
        )
        logs.append(log)
        record_stats.append(RunStats(
            seed=seed, reason=result.reason, steps=result.steps,
            accesses=0, reports=0,
            wall_seconds=time.perf_counter() - started,
        ))
        if fingerprint:
            fingerprints.append(recorded)
        if out_dir is not None:
            log.save(log_path(out_dir, spec.name, seed))
    source = ReplaySource(spec, logs, record_dir=out_dir)
    source.fingerprints = fingerprints
    source.record_stats = record_stats
    return source


def load_recorded_logs(
    spec: ProgramSpec,
    record_dir: Optional[str] = None,
    seeds: Optional[Sequence[int]] = None,
) -> "ReplaySource":
    """Load a previously recorded sweep from its JSON-lines files."""
    record_dir = record_dir or default_record_dir(spec.name)
    seeds = list(seeds if seeds is not None else spec.detect_seeds)
    logs: List[ScheduleLog] = []
    for seed in seeds:
        path = log_path(record_dir, spec.name, seed)
        if not os.path.exists(path):
            raise FileNotFoundError(
                "no recorded log for %s seed %d at %s (run `owl record %s` "
                "first)" % (spec.name, seed, path, spec.name))
        logs.append(ScheduleLog.load(path))
    return ReplaySource(spec, logs, record_dir=record_dir)


class ReplaySource:
    """A recorded sweep, replayable through the pipeline's detector stages.

    Accumulates replay bookkeeping across every :meth:`run_detector` call
    (the pipeline replays the sweep twice: raw detect plus the annotated
    re-run), surfaced as the schema-5 metrics ``replay`` block.
    """

    def __init__(self, spec: ProgramSpec, logs: Sequence[ScheduleLog],
                 record_dir: Optional[str] = None):
        self.spec = spec
        self.logs: List[ScheduleLog] = list(logs)
        self.record_dir = record_dir
        #: per-seed ``"recorded"``-mode fingerprints (record_program only)
        self.fingerprints: List = []
        #: per-seed recording stats (record_program only)
        self.record_stats: List[RunStats] = []
        self.replays = 0
        self.schedule_divergences = 0
        self.sync_divergences = 0
        self.thread_divergences = 0
        self.unfaithful_replays = 0

    def run_detector(
        self,
        annotations=None,
        stats_out: Optional[List] = None,
        tracer=None,
    ) -> Tuple[ReportSet, List[RunStats]]:
        """Replay every log with the spec's detector attached.

        Reports are merged in seed order — the same contract as
        :func:`repro.owl.integration.run_detector`, which this substitutes
        for under ``OwlPipeline(replay=...)``.  Any divergence is counted
        (never silently absorbed); a log recorded against a different IR
        digest raises :class:`repro.runtime.record.ReplayMismatch`.
        """
        from repro.runtime.spans import maybe_span

        if self.spec.detector == "ski":
            from repro.detectors.ski import SkiDetector as detector_cls
        else:
            from repro.detectors.tsan import TSanDetector as detector_cls
        module = self.spec.build()
        merged = ReportSet()
        stats: List[RunStats] = []
        for log in self.logs:
            detector = detector_cls(annotations=annotations,
                                    reports=ReportSet())
            with maybe_span(tracer, "replay_seed", seed=log.seed,
                            detector=detector_cls.name) as span:
                outcome = replay_log(
                    module, log, observers=[detector],
                    inputs=self.spec.workload_inputs,
                    world=_spec_world(self.spec),
                )
                if span is not None:
                    span.attrs.update(
                        steps=outcome.result.steps,
                        reports=len(detector.reports),
                        faithful=outcome.faithful,
                    )
            self.replays += 1
            self.schedule_divergences += outcome.schedule_divergences
            self.sync_divergences += outcome.sync_divergences
            self.thread_divergences += outcome.thread_divergences
            if not outcome.faithful:
                self.unfaithful_replays += 1
            merged.merge(detector.reports)
            stats.append(RunStats(
                seed=log.seed, reason=outcome.result.reason,
                steps=outcome.result.steps,
                accesses=detector.access_count,
                reports=len(detector.reports),
                wall_seconds=outcome.wall_seconds,
            ))
        if stats_out is not None:
            stats_out.extend(stats)
        return merged, stats

    @property
    def total_divergences(self) -> int:
        return (self.schedule_divergences + self.sync_divergences
                + self.thread_divergences)

    def metrics_block(self) -> Dict:
        """The metrics JSON ``replay`` block (schema 5)."""
        return {
            "logs": len(self.logs),
            "decisions": sum(log.decisions for log in self.logs),
            "record_dir": self.record_dir,
            "replays": self.replays,
            "schedule_divergences": self.schedule_divergences,
            "sync_divergences": self.sync_divergences,
            "thread_divergences": self.thread_divergences,
            "unfaithful_replays": self.unfaithful_replays,
        }

    def __repr__(self) -> str:
        return "<ReplaySource %s logs=%d replays=%d divergences=%d>" % (
            self.spec.name, len(self.logs), self.replays,
            self.total_divergences,
        )
