"""The end-to-end OWL pipeline (paper Figure 3).

Stages, with the counters that reproduce Tables 2 and 3:

1. **detect** — the front-end race detector over the testing workload
   (R.R., "Race Reports").
2. **schedule reduction** — static adhoc-sync detection over the reports,
   annotation, and a detector re-run (A.S., "Adhoc Synchronizations").
3. **race verification** — thread-specific-breakpoint verification of each
   remaining report; unverifiable reports are eliminated (R.V.E.), the rest
   remain (R.).
4. **input reduction** — Algorithm 1 over each remaining report, producing
   vulnerable-input-hint reports (Table 2's "# OWL's reports"); per-report
   analysis time is tracked (A.C.).
5. **vulnerability verification** — each hint is re-executed; hints whose
   site matches a known attack use that attack's subtle inputs and racing
   order (the "user intervention" of section 4.3).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.detectors.annotations import AdhocSyncAnnotation, AnnotationSet
from repro.detectors.report import RaceReport, ReportSet
from repro.owl.adhoc import AdhocSyncDetector
from repro.owl.batch import (
    can_parallelize,
    make_executor,
    report_to_payload,
    reports_to_payloads,
    verify_races_batch,
    verify_vulns_batch,
    vuln_from_payload,
    vuln_to_payload,
)
from repro.owl.integration import run_detector, usable_reports
from repro.owl.race_verifier import RaceVerification
from repro.owl.vuln_analysis import (
    AnalysisOptions,
    VulnerabilityAnalyzer,
    VulnerabilityReport,
)
from repro.owl.vuln_verifier import VulnVerification
from repro.owl.provenance import ProvenanceLog
from repro.runtime.metrics import PipelineMetrics
from repro.runtime.spans import SpanTracer
from repro.spec import AttackGroundTruth, ProgramSpec


class StageCounters:
    """The Table 3 row for one program."""

    def __init__(self):
        self.raw_reports = 0                # R.R.
        self.adhoc_syncs = 0                # A.S. (unique static)
        self.after_annotation = 0
        self.verifier_eliminated = 0        # R.V.E.
        self.remaining = 0                  # R.
        self.vulnerability_reports = 0      # Table 2 "# OWL's reports"
        self.analysis_seconds_per_report = 0.0  # A.C.
        self.total_seconds = 0.0

    @property
    def reduction_ratio(self) -> float:
        """Fraction of raw reports pruned before developers see them."""
        if self.raw_reports == 0:
            return 0.0
        return 1.0 - (self.remaining / self.raw_reports)

    def as_dict(self) -> Dict[str, float]:
        return {
            "raw_reports": self.raw_reports,
            "adhoc_syncs": self.adhoc_syncs,
            "after_annotation": self.after_annotation,
            "verifier_eliminated": self.verifier_eliminated,
            "remaining": self.remaining,
            "vulnerability_reports": self.vulnerability_reports,
            "analysis_seconds_per_report": self.analysis_seconds_per_report,
            "reduction_ratio": self.reduction_ratio,
        }

    def parity_dict(self) -> Dict[str, float]:
        """The deterministic counters only — bit-identical between serial
        and parallel runs on the same seeds (timings are measurements, not
        counters, and differ between any two runs)."""
        data = self.as_dict()
        data.pop("analysis_seconds_per_report", None)
        return data

    def __repr__(self) -> str:
        return (
            "<StageCounters raw=%d adhoc=%d eliminated=%d remaining=%d vulns=%d>"
            % (
                self.raw_reports, self.adhoc_syncs, self.verifier_eliminated,
                self.remaining, self.vulnerability_reports,
            )
        )


class DetectedAttack:
    """A pipeline finding: a verified vulnerability, matched to ground truth."""

    def __init__(self, vulnerability: VulnerabilityReport,
                 verification: VulnVerification,
                 ground_truth: Optional[AttackGroundTruth]):
        self.vulnerability = vulnerability
        self.verification = verification
        self.ground_truth = ground_truth

    @property
    def realized(self) -> bool:
        return self.verification.attack_realized

    def __repr__(self) -> str:
        label = self.ground_truth.attack_id if self.ground_truth else "unknown"
        return "<DetectedAttack %s %s>" % (
            label, "realized" if self.realized else "unrealized",
        )


class PipelineResult:
    """Everything the pipeline produced for one program."""

    def __init__(self, spec: ProgramSpec):
        self.spec = spec
        self.counters = StageCounters()
        self.metrics: Optional[PipelineMetrics] = None
        self.spans: Optional[SpanTracer] = None
        self.provenance: Optional[ProvenanceLog] = None
        #: The detect stage's :class:`repro.owl.explore.ExplorationResult`
        #: when the run used coverage-guided exploration.
        self.explore = None
        #: The predict wave's
        #: :class:`repro.detectors.predict.PredictionResult` when
        #: exploration ran with a predict policy.
        self.predict = None
        #: The run's deterministic telemetry snapshot (schema-6
        #: ``"telemetry"`` block): job-count-invariant counters, gauges
        #: and histograms assembled from every layer.
        self.telemetry: Optional[Dict] = None
        #: Merged :class:`repro.runtime.profiler.SeedProfile` when the
        #: run profiled its detector stages (``profile=K``).
        self.profile = None
        self.raw_reports: Optional[ReportSet] = None
        self.annotations: Optional[AnnotationSet] = None
        self.annotated_reports: Optional[ReportSet] = None
        self.verifications: List[RaceVerification] = []
        self.remaining_reports: List[RaceReport] = []
        self.vulnerabilities: List[VulnerabilityReport] = []
        self.attacks: List[DetectedAttack] = []

    def realized_attacks(self) -> List[DetectedAttack]:
        return [attack for attack in self.attacks if attack.realized]

    def detected_ground_truths(self) -> List[AttackGroundTruth]:
        seen = []
        for attack in self.realized_attacks():
            truth = attack.ground_truth
            if truth is not None and truth not in seen:
                seen.append(truth)
        return seen

    def __repr__(self) -> str:
        return "<PipelineResult %s %r attacks=%d/%d realized>" % (
            self.spec.name, self.counters,
            len(self.realized_attacks()), len(self.attacks),
        )


class OwlPipeline:
    """Runs the five OWL stages against one :class:`ProgramSpec`.

    With ``jobs > 1`` the embarrassingly parallel stages — per-seed
    detection, per-report race verification, per-vulnerability verification
    — fan out over a process pool shared across stages (see
    :mod:`repro.owl.batch`).  The merge is deterministic: the resulting
    :class:`StageCounters` are bit-identical to a serial run on the same
    seeds.  Per-stage wall time and VM throughput are recorded in
    ``result.metrics`` (:class:`repro.runtime.metrics.PipelineMetrics`)
    for both serial and parallel runs.

    With a ``cache`` (:class:`repro.owl.cache.ResultCache`) every stage's
    unit results are answered from disk when their content key matches a
    previous run — bit-identical counters and provenance, zero VM
    re-execution for unchanged work.  ``policy``
    (:class:`repro.owl.batch.BatchPolicy`) adds per-item timeout/retry
    fault tolerance to the pooled stages, and ``journal``
    (:class:`repro.owl.journal.BatchJournal`) records progress so
    ``owl resume`` can finish an interrupted run; both contribute blocks
    to the schema-2 metrics JSON.

    An ``explore`` policy (:class:`repro.owl.explore.ExplorePolicy`)
    replaces the detect stages' blind ``detect_seeds`` sweep with
    coverage-guided adaptive budgeting: seeds run in waves until
    interleaving coverage saturates, escalating the schedule family when a
    wave goes dry.  The detect stage's saturation curve lands in the
    schema-3 metrics JSON (``"explore"`` block) and on
    ``result.explore``; exploration decisions depend only on seed-ordered
    coverage merges, so counters stay job-count invariant.

    A ``replay`` source (:class:`repro.owl.replay.ReplaySource`) swaps
    both detector stages from live execution to deterministic replay of a
    previously recorded sweep: the raw detect stage replays the logs with
    the spec's detector attached, and the annotated re-run replays the
    *same* logs with an annotation-aware detector (annotations only change
    what the observer reports, never the schedule).  Replay bookkeeping
    lands in the schema-5 metrics JSON (``"replay"`` block); replay is
    mutually exclusive with ``explore``.

    A ``predict`` policy (:class:`repro.detectors.predict.PredictPolicy`)
    turns the exploration loop's wave 0 into a predict wave: seed 0 runs
    once with the schedule recorder attached and the sync-preserving
    closure (:mod:`repro.detectors.predict`) infers every race feasible
    from that single trace, pre-seeding the coverage map so later waves
    only spend budget on interleavings prediction could not decide.  The
    prediction's counters and per-pair evidence land in the schema-7
    metrics JSON (``"predict"`` block) and on ``result.predict``;
    predicted-only reports carry the ``predicted`` provenance
    disposition.  Mutually exclusive with ``replay``; composes with an
    explicit ``explore`` policy (or creates a default one).

    ``fuse=True`` runs both detector stages with superinstruction fusion
    (:mod:`repro.runtime.fuse`): one in-process
    :class:`~repro.runtime.fuse.FuseEngine` is shared by every serial
    detector execution of the run, so compiled blocks amortize across
    seeds and stages.  Fusion never changes results — schedules, events,
    reports, coverage, logs and the Table-3 ``parity_dict`` are
    bit-identical with it on or off, at any job count — so only steps/s
    moves; the engine's counters land in the schema-8 metrics ``fuse``
    block and a ``fuse.enabled`` telemetry counter.  Ignored under
    ``replay`` (scripted decisions force stepwise execution anyway).

    Every run assembles a deterministic **telemetry snapshot**
    (:mod:`repro.runtime.telemetry`): stage/work counters, per-seed step
    and report histograms, the cache's and batch policy's registries, the
    span count — everything job-count invariant — into the schema-6
    metrics JSON ``"telemetry"`` block and ``result.telemetry``.
    ``profile=K`` additionally samples the detector stages' VMs every K
    scheduler decisions (:mod:`repro.runtime.profiler`; live runs only —
    off by default, zero overhead when off), merging per-seed profiles in
    seed order into ``result.profile``.  ``feed``
    (:class:`repro.owl.stream.EventFeed`) streams structured progress
    events — stages, seeds, waves, verification items — as the run
    executes, for ``owl watch``.
    """

    def __init__(
        self,
        spec: ProgramSpec,
        analysis_options: Optional[AnalysisOptions] = None,
        verify_vulnerabilities: bool = True,
        jobs: int = 1,
        cache=None,
        policy=None,
        journal=None,
        journal_fresh: bool = True,
        journal_config: Optional[Dict] = None,
        explore=None,
        replay=None,
        predict=None,
        profile: Optional[int] = None,
        feed=None,
        fuse: bool = False,
    ):
        if explore is not None and replay is not None:
            raise ValueError(
                "explore and replay are mutually exclusive: exploration "
                "chooses schedules adaptively, replay re-executes a "
                "recorded sweep verbatim")
        if predict is not None and replay is not None:
            raise ValueError(
                "predict and replay are mutually exclusive: prediction "
                "records and reorders a live execution, replay re-executes "
                "a recorded sweep verbatim")
        if predict is not None:
            # Prediction rides on the exploration loop as its wave 0.
            from repro.owl.explore import ExplorePolicy

            if explore is None:
                explore = ExplorePolicy()
            explore.predict = predict
        self.spec = spec
        self.analysis_options = analysis_options or AnalysisOptions()
        self.verify_vulnerabilities = verify_vulnerabilities
        self.jobs = max(1, int(jobs))
        self.cache = cache
        self.policy = policy
        self.journal = journal
        self.journal_fresh = journal_fresh
        self.journal_config = journal_config
        self.explore = explore
        self.replay = replay
        self.profile = int(profile) if profile else None
        self.feed = feed
        self.fuse = bool(fuse)
        #: Per-run telemetry registry (rebuilt at the top of :meth:`run`).
        self._registry = None
        self._profiles: Optional[List] = None
        #: Per-run fuse engine (rebuilt at the top of :meth:`run`): shared
        #: across every in-process detector execution so compiled
        #: superinstructions amortize over the whole run; pooled workers
        #: fuse with their own per-seed engines.
        self._fuse_engine = None

    # ------------------------------------------------------------------

    def run(self, jobs: Optional[int] = None) -> PipelineResult:
        jobs = self.jobs if jobs is None else max(1, int(jobs))
        if jobs > 1 and not can_parallelize(self.spec):
            jobs = 1  # spec not rebuildable in workers: stay serial
        result = PipelineResult(self.spec)
        result.metrics = PipelineMetrics(self.spec.name, jobs=jobs)
        result.spans = SpanTracer()
        result.provenance = ProvenanceLog(self.spec.name)
        if self.journal is not None:
            if self.cache is not None:
                self.cache.journal = self.journal
            if self.journal_fresh:
                self.journal.begin(
                    self.spec.name, jobs=jobs,
                    cache_dir=(
                        self.cache.root if self.cache is not None else None
                    ),
                    config=self.journal_config or {},
                )
        from repro.runtime.telemetry import MetricsRegistry

        self._registry = MetricsRegistry()
        self._profiles = [] if self.profile and self.replay is None else None
        self._fuse_engine = None
        if self.fuse and self.replay is None:
            from repro.runtime.fuse import FuseEngine

            self._fuse_engine = FuseEngine()
        self._fuse_stages = 0
        if self.feed is not None:
            self.feed.run_begin(
                self.spec.name, jobs,
                explore=self.explore is not None,
                cache=self.cache is not None,
                replay=self.replay is not None,
            )
        executor = make_executor(jobs) if jobs > 1 else None
        started = time.perf_counter()
        try:
            with result.spans.span("pipeline", program=self.spec.name,
                                   jobs=jobs):
                stages = [
                    ("detect", lambda: self._stage_detect(
                        result, jobs, executor)),
                    ("schedule_reduction",
                     lambda: self._stage_schedule_reduction(
                         result, jobs, executor)),
                    ("race_verification",
                     lambda: self._stage_race_verification(
                         result, jobs, executor)),
                    ("vulnerability_analysis",
                     lambda: self._stage_vulnerability_analysis(result)),
                ]
                if self.verify_vulnerabilities:
                    stages.append((
                        "vulnerability_verification",
                        lambda: self._stage_vulnerability_verification(
                            result, jobs, executor)))
                for name, run_stage in stages:
                    if self.feed is not None:
                        self.feed.stage_begin(name)
                    run_stage()
                    if self.feed is not None:
                        stage = result.metrics.stages[-1]
                        self.feed.stage_end(
                            name, items=stage.items, runs=stage.runs,
                            cache_hits=stage.extra.get("cache_hits"),
                            cache_misses=stage.extra.get("cache_misses"),
                        )
        finally:
            if executor is not None:
                executor.shutdown()
        result.counters.total_seconds = time.perf_counter() - started
        result.metrics.total_seconds = result.counters.total_seconds
        if self.cache is not None:
            result.metrics.cache = self.cache.counters()
        if self.policy is not None:
            result.metrics.batch = self.policy.counters()
        if self.replay is not None:
            result.metrics.replay = self.replay.metrics_block()
        if self._fuse_engine is not None:
            result.metrics.fuse = self._fuse_block(result)
        self._assemble_telemetry(result)
        if self.journal is not None:
            self.journal.complete(
                status="completed",
                raw_reports=result.counters.raw_reports,
                remaining=result.counters.remaining,
                attacks=len(result.realized_attacks()),
            )
        if self.feed is not None:
            self.feed.run_end(
                raw_reports=result.counters.raw_reports,
                remaining=result.counters.remaining,
                attacks=len(result.realized_attacks()),
            )
        return result

    # ------------------------------------------------------------------
    # telemetry assembly (schema 6)

    def _assemble_telemetry(self, result: PipelineResult) -> None:
        """Fold every layer's deterministic counters into one snapshot.

        Everything here is job-count invariant — stage work counters,
        Table-3 counters, cache/batch registries (merged in a fixed
        order), the adopted span count — so the snapshot is bit-identical
        between ``jobs=1`` and ``jobs=N`` runs on the same seeds.  Wall
        clock stays out (it lives in the stage metrics).
        """
        registry = self._registry
        for stage in result.metrics.stages:
            prefix = "stage.%s" % stage.name
            registry.counter(prefix + ".items").inc(stage.items)
            registry.counter(prefix + ".runs").inc(stage.runs)
            registry.counter(prefix + ".vm_steps").inc(stage.vm_steps)
            registry.counter(prefix + ".accesses").inc(stage.accesses)
        counters = result.counters
        registry.counter("pipeline.raw_reports").inc(counters.raw_reports)
        registry.counter("pipeline.adhoc_syncs").inc(counters.adhoc_syncs)
        registry.counter("pipeline.after_annotation").inc(
            counters.after_annotation)
        registry.counter("pipeline.verifier_eliminated").inc(
            counters.verifier_eliminated)
        registry.counter("pipeline.remaining").inc(counters.remaining)
        registry.counter("pipeline.vulnerability_reports").inc(
            counters.vulnerability_reports)
        registry.counter("pipeline.attacks").inc(len(result.attacks))
        registry.counter("pipeline.attacks_realized").inc(
            len(result.realized_attacks()))
        if result.explore is not None:
            registry.counter("explore.seeds_executed").inc(
                result.explore.seeds_executed)
            registry.counter("explore.waves").inc(len(result.explore.waves))
            registry.gauge("explore.total_pairs").set(
                result.explore.coverage.total_pairs)
        if result.predict is not None:
            counters = result.predict.counters
            registry.counter("predict.candidate_pairs").inc(
                counters["candidate_pairs"])
            registry.counter("predict.predicted").inc(counters["predicted"])
            registry.counter("predict.observed").inc(counters["observed"])
            registry.counter("predict.witnessed").inc(counters["witnessed"])
            registry.counter("predict.unwitnessed").inc(
                counters["unwitnessed"])
        if self._fuse_engine is not None:
            # Only job-count-invariant facts go in the registry: the
            # engine's execution counters depend on whether seeds shared
            # one in-process engine (jobs=1) or per-worker ones (jobs=N),
            # so they live in the schema-8 metrics ``fuse`` block, which
            # is observational like steps/s.
            registry.counter("fuse.enabled").inc(1)
            registry.counter("fuse.stages_requested").inc(self._fuse_stages)
        if self.cache is not None:
            registry.merge_snapshot(self.cache.registry.snapshot())
        if self.policy is not None:
            registry.merge_snapshot(self.policy.registry.snapshot())
        result.spans.publish(registry)
        snapshot = registry.snapshot()
        if self._profiles:
            from repro.runtime.profiler import merge_profiles

            result.profile = merge_profiles(self._profiles)
            if result.profile is not None:
                snapshot["profile"] = result.profile.summary()
        result.telemetry = snapshot
        result.metrics.telemetry = snapshot

    def _fuse_block(self, result: PipelineResult) -> Dict:
        """The schema-8 metrics ``fuse`` block.

        Observational, like steps/s: the counters describe the pipeline's
        in-process engine, which every serial detector execution shared.
        Pooled workers (jobs > 1) fuse with their own per-seed engines, so
        their compiles and fused steps are not visible here — the share
        then under-reports, which is fine for a perf observation (the
        correctness story is the diff oracle's, not this block's).
        """
        engine = self._fuse_engine
        counters = engine.counters()
        fused_steps = counters["fused_steps"]
        detect_steps = sum(
            stage.vm_steps for stage in result.metrics.stages
            if stage.name in ("detect", "schedule_reduction")
        )
        return {
            "enabled": True,
            "compiled_blocks": counters["compiled"],
            "fused_runs": counters["fused_runs"],
            "fused_steps": fused_steps,
            "fused_step_share": round(fused_steps / detect_steps, 4)
            if detect_steps else 0.0,
            "bailouts": counters["bailouts"],
            "invalidations": counters["invalidations"],
        }

    # ------------------------------------------------------------------
    # cache accounting: per-pipeline-stage hit/miss deltas

    def _cache_marks(self) -> Optional[Tuple[int, int]]:
        if self.cache is None:
            return None
        return self.cache.hits, self.cache.misses

    def _record_cache_delta(self, stage, marks: Optional[Tuple[int, int]]):
        if marks is None:
            return
        stage.extra["cache_hits"] = self.cache.hits - marks[0]
        stage.extra["cache_misses"] = self.cache.misses - marks[1]

    # ------------------------------------------------------------------
    # stage 1: concurrency error detection

    def _stage_detect(self, result: PipelineResult, jobs: int,
                      executor) -> None:
        with result.metrics.stage("detect", unit="reports") as stage, \
                result.spans.span("stage:detect") as span:
            marks = self._cache_marks()
            stats: List = []
            if self.replay is not None:
                reports, _ = self.replay.run_detector(
                    stats_out=stats, tracer=result.spans,
                )
            else:
                if self._fuse_engine is not None:
                    self._fuse_stages += 1
                reports, _ = run_detector(
                    self.spec, jobs=jobs, executor=executor, stats_out=stats,
                    tracer=result.spans, cache=self.cache, policy=self.policy,
                    explore=self.explore, profile_out=self._profiles,
                    profile_interval=self.profile, feed=self.feed,
                    fuse=self._fuse_engine or False,
                )
            stage.absorb_run_stats(stats)
            self._observe_seed_stats(stats)
            stage.items = len(reports)
            self._record_cache_delta(stage, marks)
            self._record_explore(result, stage, span, primary=True)
            span.attrs.update(reports=len(reports), runs=stage.runs)
        result.raw_reports = reports
        result.counters.raw_reports = len(reports)
        seeds_run = (
            result.explore.seeds_executed if result.explore is not None
            else len(self.spec.detect_seeds)
        )
        for report in reports:
            result.provenance.record(
                report, "detect", "reported",
                detector=report.detector,
                seeds=seeds_run,
            )
            predicted = report.tags.get("predicted")
            if predicted is not None:
                # Invariant 8: a predicted race carries its evidence
                # status — replay-witnessed or explicitly unwitnessed.
                result.provenance.record(
                    report, "predict", "predicted", **predicted)

    def _observe_seed_stats(self, stats) -> None:
        """Per-seed step/report histograms (deterministic: seed order)."""
        from repro.runtime.telemetry import REPORT_BUCKETS, STEP_BUCKETS

        steps = self._registry.histogram("vm.steps_per_seed", STEP_BUCKETS)
        reports = self._registry.histogram("detect.reports_per_seed",
                                           REPORT_BUCKETS)
        for stat in stats:
            steps.observe(stat.steps)
            reports.observe(stat.reports)

    def _record_explore(self, result: PipelineResult, stage, span,
                        primary: bool = False) -> None:
        """Fold the latest exploration run into stage extras and metrics.

        ``primary`` marks the raw detect stage, whose saturation curve
        becomes the metrics JSON's top-level ``"explore"`` block (schema 3)
        and ``result.explore``; the annotated re-run only contributes its
        per-stage extras.
        """
        if self.explore is None or self.explore.last is None:
            return
        exploration = self.explore.last
        stage.extra["seeds_executed"] = exploration.seeds_executed
        stage.extra["seeds_skipped"] = exploration.seeds_skipped
        stage.extra["saturation_wave"] = exploration.saturation_wave
        stage.extra["explored_pairs"] = exploration.coverage.total_pairs
        span.attrs.update(
            seeds_executed=exploration.seeds_executed,
            saturated=exploration.saturated,
        )
        if primary:
            result.explore = exploration
            result.metrics.explore = exploration.metrics_block()
            if exploration.predict is not None:
                result.predict = exploration.predict
                result.metrics.predict = exploration.predict.metrics_block()

    # ------------------------------------------------------------------
    # stage 2: schedule reduction (section 5.1)

    def _stage_schedule_reduction(self, result: PipelineResult, jobs: int,
                                  executor) -> None:
        with result.metrics.stage("schedule_reduction",
                                  unit="reports") as stage, \
                result.spans.span("stage:schedule_reduction") as span:
            marks = self._cache_marks()
            annotations = self._classify_adhoc(result)
            result.annotations = annotations
            result.counters.adhoc_syncs = annotations.unique_static_count()
            if len(annotations):
                stats: List = []
                if self.replay is not None:
                    # Same logs, annotation-aware detector: annotations only
                    # change what the observer reports, never the schedule.
                    reports, _ = self.replay.run_detector(
                        annotations=annotations, stats_out=stats,
                        tracer=result.spans,
                    )
                else:
                    if self._fuse_engine is not None:
                        self._fuse_stages += 1
                    reports, _ = run_detector(
                        self.spec, annotations=annotations, jobs=jobs,
                        executor=executor, stats_out=stats,
                        tracer=result.spans, cache=self.cache,
                        policy=self.policy, explore=self.explore,
                        profile_out=self._profiles,
                        profile_interval=self.profile, feed=self.feed,
                        fuse=self._fuse_engine or False,
                    )
                stage.absorb_run_stats(stats)
                self._observe_seed_stats(stats)
                self._record_explore(result, stage, span)
            else:
                reports = result.raw_reports
            stage.items = len(reports)
            stage.extra["adhoc_syncs"] = annotations.unique_static_count()
            self._record_cache_delta(stage, marks)
            span.attrs.update(
                adhoc_syncs=annotations.unique_static_count(),
                reports=len(reports),
            )
        result.annotated_reports = reports
        result.counters.after_annotation = len(reports)
        survivors = {report.uid for report in reports}
        for report in result.raw_reports:
            annotation = report.tags.get(AdhocSyncDetector.TAG)
            if annotation is not None:
                result.provenance.record(
                    report, "schedule_reduction", "pruned-adhoc",
                    adhoc_sync=annotation.describe(),
                )
            elif report.uid not in survivors:
                result.provenance.record(
                    report, "schedule_reduction", "eliminated-by-annotation",
                    adhoc_syncs_annotated=annotations.unique_static_count(),
                )
            else:
                result.provenance.record(
                    report, "schedule_reduction", "survived",
                    adhoc_syncs_annotated=annotations.unique_static_count(),
                )

    def _classify_adhoc(self, result: PipelineResult) -> AnnotationSet:
        """Adhoc-sync classification of the raw reports, cached when possible.

        The cached value stores, in classification order, which report uid
        each annotation tagged; replaying it re-tags the same reports and
        rebuilds the same :class:`AnnotationSet` (same order — the
        annotation payload feeds the detector re-run's cache key).
        """
        module = self.spec.build()
        key = None
        if self.cache is not None:
            key = self.cache.key(
                "adhoc", module=module,
                reports=reports_to_payloads(result.raw_reports),
            )
            value = self.cache.get("adhoc", key)
            if value is not None:
                by_uid = {report.uid: report
                          for report in result.raw_reports}
                annotations = AnnotationSet()
                for report_uid, read_uid, write_uid, variable in value["tagged"]:
                    annotation = AdhocSyncAnnotation(
                        module.instruction_by_uid(read_uid),
                        module.instruction_by_uid(write_uid),
                        variable,
                    )
                    annotations.add(annotation)
                    report = by_uid.get(report_uid)
                    if report is not None:
                        report.tags[AdhocSyncDetector.TAG] = annotation
                return annotations
        annotations = AdhocSyncDetector().analyze(result.raw_reports)
        if self.cache is not None:
            tagged = []
            for report in result.raw_reports:
                annotation = report.tags.get(AdhocSyncDetector.TAG)
                if annotation is not None:
                    tagged.append([
                        report.uid,
                        annotation.read_instruction.uid or 0,
                        annotation.write_instruction.uid or 0,
                        annotation.variable,
                    ])
            self.cache.put("adhoc", key, {"tagged": tagged})
        return annotations

    # ------------------------------------------------------------------
    # stage 3: dynamic race verification (section 5.2)

    def _stage_race_verification(self, result: PipelineResult, jobs: int,
                                 executor) -> None:
        with result.metrics.stage("race_verification",
                                  unit="reports") as stage, \
                result.spans.span("stage:race_verification") as span:
            marks = self._cache_marks()
            result.verifications = verify_races_batch(
                self.spec, list(result.annotated_reports), jobs=jobs,
                executor=executor, tracer=result.spans,
                cache=self.cache, policy=self.policy, feed=self.feed,
            )
            stage.items = len(result.verifications)
            stage.runs = sum(v.runs_used for v in result.verifications)
            self._record_cache_delta(stage, marks)
            span.attrs.update(
                reports=len(result.verifications), runs=stage.runs,
            )
        result.remaining_reports = [
            verification.report for verification in result.verifications
            if verification.verified
        ]
        result.counters.verifier_eliminated = (
            result.counters.after_annotation - len(result.remaining_reports)
        )
        result.counters.remaining = len(result.remaining_reports)
        for verification in result.verifications:
            if verification.verified:
                hints = verification.hints
                evidence = {
                    "runs_used": verification.runs_used,
                    "livelocks_resolved": verification.livelocks_resolved,
                }
                if hints is not None:
                    evidence.update(
                        security_hints=hints.describe(),
                        read_value=hints.read_value,
                        write_value=hints.write_value,
                        null_write=hints.null_write,
                    )
                result.provenance.record(
                    verification.report, "race_verification", "verified",
                    **evidence)
            else:
                result.provenance.record(
                    verification.report, "race_verification", "unverified",
                    runs_used=verification.runs_used,
                    reason="never caught in the racing moment",
                )

    # ------------------------------------------------------------------
    # stage 4: static vulnerability analysis (section 6.1)

    def _stage_vulnerability_analysis(self, result: PipelineResult) -> None:
        with result.metrics.stage("vulnerability_analysis",
                                  unit="reports") as stage, \
                result.spans.span("stage:vulnerability_analysis") as span:
            marks = self._cache_marks()
            module = self.spec.build()
            analyzer = VulnerabilityAnalyzer(
                module, options=self.analysis_options,
                tracer=result.spans,
            )
            reports = usable_reports(result.remaining_reports)
            elapsed = 0.0
            vulnerabilities: List[VulnerabilityReport] = []
            for report in reports:
                key = None
                if self.cache is not None:
                    key = self.cache.key(
                        "vuln_analysis", module=module,
                        report=report_to_payload(report),
                        options=vars(self.analysis_options),
                    )
                    value = self.cache.get("vuln_analysis", key)
                    if value is not None:
                        found = [vuln_from_payload(module, payload)
                                 for payload in value["vulns"]]
                        budget_exhausted = value["budget_exhausted"]
                        with result.spans.span("analyze_report",
                                               report=report.uid,
                                               cached=True,
                                               sites=len(found)):
                            pass
                        self._record_analysis(result, report, found,
                                              budget_exhausted)
                        vulnerabilities.extend(found)
                        continue
                start = time.perf_counter()
                found = analyzer.analyze_report(report)
                elapsed += time.perf_counter() - start
                if self.cache is not None:
                    self.cache.put("vuln_analysis", key, {
                        "vulns": [vuln_to_payload(v) for v in found],
                        "budget_exhausted": analyzer.budget_exhausted,
                    })
                self._record_analysis(result, report, found,
                                      analyzer.budget_exhausted)
                vulnerabilities.extend(found)
            result.vulnerabilities = self._dedup(vulnerabilities)
            stage.items = len(reports)
            stage.extra["vulnerability_reports"] = len(result.vulnerabilities)
            self._record_cache_delta(stage, marks)
            span.attrs.update(
                reports=len(reports),
                vulnerability_reports=len(result.vulnerabilities),
            )
        result.counters.vulnerability_reports = len(result.vulnerabilities)
        result.counters.analysis_seconds_per_report = (
            elapsed / len(reports) if reports else 0.0
        )

    @staticmethod
    def _record_analysis(result: PipelineResult, report: RaceReport,
                         found: List[VulnerabilityReport],
                         budget_exhausted: bool) -> None:
        """Provenance for one analyzed report — same for cached and fresh."""
        for vulnerability in found:
            result.provenance.record(
                report, "vulnerability_analysis", "site-reached",
                site=str(vulnerability.site.location),
                site_type=vulnerability.site_type.value,
                dependence=vulnerability.kind.value,
                corrupted_branches=[
                    str(branch.location)
                    for branch in vulnerability.branches
                ],
            )
        if not found:
            result.provenance.record(
                report, "vulnerability_analysis", "no-vulnerable-site",
                budget_exhausted=budget_exhausted,
            )

    @staticmethod
    def _dedup(vulnerabilities: List[VulnerabilityReport]) -> List[VulnerabilityReport]:
        seen = {}
        for vulnerability in vulnerabilities:
            seen.setdefault(vulnerability.dedup_key, vulnerability)
        return list(seen.values())

    # ------------------------------------------------------------------
    # stage 5: dynamic vulnerability verification (section 6.2)

    def _stage_vulnerability_verification(self, result: PipelineResult,
                                          jobs: int, executor) -> None:
        with result.metrics.stage("vulnerability_verification",
                                  unit="vulnerabilities") as stage, \
                result.spans.span("stage:vulnerability_verification") as span:
            marks = self._cache_marks()
            pairs = verify_vulns_batch(
                self.spec, result.vulnerabilities, jobs=jobs,
                executor=executor, tracer=result.spans,
                cache=self.cache, policy=self.policy, feed=self.feed,
            )
            for vulnerability, (verification, ground_truth) in zip(
                    result.vulnerabilities, pairs):
                result.attacks.append(
                    DetectedAttack(vulnerability, verification, ground_truth)
                )
                if vulnerability.source is None:
                    continue
                verdict = (
                    "attack-realized" if verification.attack_realized
                    else "attack-not-realized"
                )
                evidence = {
                    "outcome": verification.describe(),
                    "site_reached": verification.site_reached,
                    "runs_used": verification.runs_used,
                    "faults": [kind.value
                               for kind in verification.fault_kinds],
                }
                if ground_truth is not None:
                    evidence["ground_truth"] = ground_truth.attack_id
                result.provenance.record(
                    vulnerability.source, "vulnerability_verification",
                    verdict, **evidence)
            stage.items = len(pairs)
            stage.runs = sum(
                verification.runs_used for verification, _ in pairs
            )
            self._record_cache_delta(stage, marks)
            span.attrs.update(
                vulnerabilities=len(pairs),
                realized=sum(
                    1 for verification, _ in pairs
                    if verification.attack_realized
                ),
            )
