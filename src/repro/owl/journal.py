"""Crash-resilient run journal: the breadcrumbs ``owl resume`` follows.

A :class:`BatchJournal` is an append-only JSON-lines file recording one
pipeline run: a ``begin`` line with the program and configuration, one
``item`` line per completed unit of cached work (written by
:class:`repro.owl.cache.ResultCache` as results land), and an ``end`` line
when the run finishes.  Every line is flushed as it is written, so a
killed or crashed run leaves a *half journal*: a ``begin`` line, some
``item`` lines, no ``end``.

Resume is then cheap by construction: every item journaled as done has its
result in the content-addressed cache, so :func:`resume` simply re-runs
the pipeline with the same configuration and the same cache — completed
work is a cache hit, only the missing tail re-executes — and appends a
``resume`` marker plus the new items to the same journal.  Because cached
and fresh results are bit-identical (see :mod:`repro.owl.cache`), a
resumed run's counters and provenance match what the uninterrupted run
would have produced.

Journal layout (one JSON object per line)::

    {"event": "begin", "schema": 1, "program": "apache", "jobs": 2,
     "cache_dir": "...", "config": {"export_path": ..., "metrics_path": ...}}
    {"event": "item", "stage": "detect", "key": "3f2a...", "status": "done"}
    {"event": "item", "stage": "race_verify", "key": "...", "status": "hit"}
    {"event": "resume"}           # appended by each `owl resume`
    {"event": "end", "status": "completed", ...}
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional, Tuple

JOURNAL_SCHEMA = 1


def journal_path(out_dir: str, program: str) -> str:
    """Canonical location of a program's run journal under ``out_dir``."""
    return os.path.join(out_dir, "journal_%s.jsonl" % program)


class BatchJournal:
    """Append-only, line-flushed record of one (possibly resumed) run."""

    def __init__(self, path: str):
        self.path = path
        self._handle = None

    # ------------------------------------------------------------------
    # writing

    def _write(self, record: Dict) -> None:
        if self._handle is None:
            directory = os.path.dirname(os.path.abspath(self.path))
            os.makedirs(directory, exist_ok=True)
            # A crashed run can leave a torn last line with no newline;
            # terminate it so the first appended record starts a fresh line
            # instead of fusing with (and losing itself to) the fragment.
            needs_newline = False
            try:
                with open(self.path, "rb") as existing:
                    existing.seek(-1, os.SEEK_END)
                    needs_newline = existing.read(1) != b"\n"
            except (OSError, ValueError):
                pass  # absent or empty file
            self._handle = open(self.path, "a")
            if needs_newline:
                self._handle.write("\n")
        self._handle.write(json.dumps(record, default=repr) + "\n")
        self._handle.flush()

    def begin(self, program: str, jobs: int = 1,
              cache_dir: Optional[str] = None,
              config: Optional[Dict] = None, fresh: bool = True) -> None:
        """Start a new run; ``fresh`` truncates any previous journal."""
        if fresh and os.path.exists(self.path):
            os.unlink(self.path)
            if self._handle is not None:
                self._handle.close()
                self._handle = None
        self._write({
            "event": "begin",
            "schema": JOURNAL_SCHEMA,
            "program": program,
            "jobs": jobs,
            "cache_dir": cache_dir,
            "config": config or {},
        })

    def resumed(self) -> None:
        self._write({"event": "resume"})

    def record(self, stage: str, key: str, status: str = "done",
               **info) -> None:
        record = {"event": "item", "stage": stage, "key": key,
                  "status": status}
        record.update(info)
        self._write(record)

    def complete(self, status: str = "completed", **summary) -> None:
        record = {"event": "end", "status": status}
        record.update(summary)
        self._write(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __repr__(self) -> str:
        return "<BatchJournal %s>" % self.path


class JournalState:
    """What a parsed journal says about a run."""

    def __init__(self, path: str):
        self.path = path
        self.program: Optional[str] = None
        self.jobs: int = 1
        self.cache_dir: Optional[str] = None
        self.config: Dict = {}
        self.items: List[Tuple[str, str, str]] = []
        self.completed = False
        self.resumes = 0
        #: Unparseable lines skipped by :func:`load_journal`.  A torn *final*
        #: line is the expected trace of a crashed run; a corrupt line in the
        #: middle means the journal itself was damaged after the fact.
        self.skipped_lines = 0

    @property
    def begun(self) -> bool:
        return self.program is not None

    def items_by_stage(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for stage, _key, _status in self.items:
            counts[stage] = counts.get(stage, 0) + 1
        return counts

    def describe(self) -> str:
        status = "completed" if self.completed else "interrupted"
        lines = ["journal %s: %s run of %s (jobs=%d%s)" % (
            self.path, status, self.program or "?", self.jobs,
            ", resumed %dx" % self.resumes if self.resumes else "",
        )]
        for stage, count in sorted(self.items_by_stage().items()):
            lines.append("  %-16s %d items journaled" % (stage, count))
        if self.skipped_lines:
            lines.append("  %d corrupt line%s skipped" % (
                self.skipped_lines, "" if self.skipped_lines == 1 else "s"))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "<JournalState %s %s items=%d>" % (
            self.program, "completed" if self.completed else "interrupted",
            len(self.items),
        )


def load_journal(path: str, strict: bool = False) -> JournalState:
    """Parse a journal, tolerating a torn (partially written) last line.

    Every unparseable line is counted in :attr:`JournalState.skipped_lines`
    (and surfaced by ``describe()``) instead of being silently dropped.  A
    torn *final* line is the normal signature of a crashed run; a corrupt
    line anywhere else means the file was damaged.  With ``strict=True`` a
    non-final corrupt line raises ``ValueError`` so resume logic never
    builds state from a journal missing interior records.
    """
    state = JournalState(path)
    with open(path) as handle:
        lines = handle.readlines()
    last_index = len(lines) - 1
    for index, line in enumerate(lines):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            state.skipped_lines += 1
            if strict and index != last_index:
                raise ValueError(
                    "journal %s: corrupt record on line %d (only a torn "
                    "final line is tolerated)" % (path, index + 1))
            continue  # torn tail of a crashed run
        event = record.get("event")
        if event == "begin":
            if record.get("schema") != JOURNAL_SCHEMA:
                raise ValueError(
                    "journal %s declares unsupported schema %r "
                    "(supported: %d)"
                    % (path, record.get("schema"), JOURNAL_SCHEMA))
            state.program = record.get("program")
            state.jobs = int(record.get("jobs") or 1)
            state.cache_dir = record.get("cache_dir")
            state.config = record.get("config") or {}
            state.completed = False
        elif event == "item":
            state.items.append((
                record.get("stage", "?"), record.get("key", "?"),
                record.get("status", "done"),
            ))
        elif event == "resume":
            state.resumes += 1
            state.completed = False
        elif event == "end":
            state.completed = record.get("status") == "completed"
    return state


def resume(path: str, jobs: Optional[int] = None):
    """Finish the run a journal describes; returns ``(result, state)``.

    Re-runs the pipeline with the journal's program, job count and cache
    directory: work journaled as done is a warm cache hit, only the
    interrupted tail executes.  Output files recorded in the journal's
    config (``export_path``, ``metrics_path``) are (re)written, the
    journal gains a ``resume`` marker and, on success, an ``end`` line.
    ``result`` is None when the journal already records a completed run.
    """
    from repro.apps.registry import spec_by_name
    from repro.owl.batch import BatchPolicy
    from repro.owl.cache import DEFAULT_CACHE_DIR, ResultCache
    from repro.owl.pipeline import OwlPipeline

    state = load_journal(path, strict=True)
    if not state.begun:
        raise ValueError("journal %s has no begin record" % path)
    if state.completed:
        return None, state
    spec = spec_by_name(state.program)
    cache = ResultCache(state.cache_dir or DEFAULT_CACHE_DIR)
    journal = BatchJournal(path)
    journal.resumed()
    pipeline = OwlPipeline(
        spec,
        jobs=jobs if jobs is not None else state.jobs,
        cache=cache,
        policy=BatchPolicy(),
        journal=journal,
        journal_fresh=False,
    )
    try:
        result = pipeline.run()
    finally:
        journal.close()
    export_path = state.config.get("export_path")
    if export_path:
        from repro.owl.export import save_result

        save_result(result, export_path)
    metrics_path = state.config.get("metrics_path")
    if metrics_path and result.metrics is not None:
        result.metrics.save(metrics_path)
    return result, state
