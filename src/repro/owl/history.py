"""Benchmark trajectory store: one line per run, appended forever.

A single metrics file (:mod:`repro.runtime.metrics`) is a snapshot; the
questions that matter across PRs — "is the VM getting faster?", "did the
cache hit rate fall off a cliff?", "are the Table 3 counters drifting?" —
need a *trajectory*.  Every pipeline/benchmark run appends one compact
record to ``benchmarks/out/history.jsonl``: program, throughput, per-stage
wall time, cache hit rate, the parity counters, and the git revision that
produced it.  ``tools/bench_regress.py`` reads the tail of this file and
gates CI on it.

Records derive from the metrics JSON (any supported schema), so old
metrics files can be backfilled with :func:`record_from_metrics`.  Wall
times and throughput are observations; the ``counters`` block is the
deterministic parity surface — two records for the same program at the
same revision must agree on it bit-for-bit regardless of job count.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from typing import Dict, List, Optional

__all__ = [
    "HISTORY_SCHEMA",
    "default_history_path",
    "git_revision",
    "record_from_metrics",
    "append_record",
    "load_history",
]

#: Version stamped into every history record.
HISTORY_SCHEMA = 1

#: The parity counters copied out of the telemetry block.  These are the
#: Table 2/3 numbers — any drift between runs of the same revision is a
#: determinism bug, not a perf change.
_PARITY_COUNTERS = (
    "pipeline.raw_reports",
    "pipeline.after_annotation",
    "pipeline.remaining",
    "pipeline.vulnerability_reports",
    "pipeline.attacks",
    "pipeline.attacks_realized",
)


def default_history_path(out_dir: str = "benchmarks/out") -> str:
    return os.path.join(out_dir, "history.jsonl")


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """The current short git revision, or None outside a work tree."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if completed.returncode != 0:
        return None
    return completed.stdout.strip() or None


def record_from_metrics(data: Dict, timestamp: Optional[float] = None,
                        git_rev: Optional[str] = None) -> Dict:
    """Build one history record from a metrics dict (any schema).

    ``timestamp``/``git_rev`` default to "now" and the repo's HEAD; pass
    them explicitly when backfilling old metrics files.
    """
    stages = {stage["name"]: stage for stage in data.get("stages", ())}
    detect = stages.get("detect", {})

    cache = data.get("cache")
    cache_hit_rate = None
    if cache is not None:
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        cache_hit_rate = (cache["hits"] / lookups) if lookups else 0.0

    counters: Dict[str, int] = {}
    telemetry = data.get("telemetry") or {}
    for name in _PARITY_COUNTERS:
        value = telemetry.get("counters", {}).get(name)
        if value is not None:
            counters[name] = value

    record = {
        "schema": HISTORY_SCHEMA,
        "timestamp": time.time() if timestamp is None else timestamp,
        "git_rev": git_revision() if git_rev is None else git_rev,
        "program": data.get("program"),
        "jobs": data.get("jobs", 1),
        "total_seconds": round(data.get("total_seconds", 0.0), 6),
        "steps_per_second": detect.get("steps_per_second", 0.0),
        "vm_steps": data.get("vm_steps", 0),
        "stage_wall": {
            name: round(stage.get("wall_seconds", 0.0), 6)
            for name, stage in sorted(stages.items())
        },
        "cache_hit_rate": (
            round(cache_hit_rate, 4) if cache_hit_rate is not None else None
        ),
        "counters": counters,
    }
    return record


def append_record(record: Dict, path: str) -> str:
    """Append one record to the history file (created on first use)."""
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True) + "\n")
    return path


def load_history(path: str) -> List[Dict]:
    """All records in a history file; torn/blank lines are skipped."""
    records: List[Dict] = []
    try:
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    continue
    except FileNotFoundError:
        pass
    return records
