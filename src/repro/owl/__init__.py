"""OWL: directed concurrency attack detection (the paper's contribution).

The pipeline (paper Figure 3):

1. a concurrency bug detector produces race reports
   (:mod:`repro.detectors`),
2. the **static adhoc synchronization detector** extracts benign-schedule
   hints from the reports and annotates the program
   (:mod:`repro.owl.adhoc`, section 5.1),
3. the **dynamic race verifier** catches each remaining race "in the racing
   moment" with thread-specific breakpoints and emits security hints
   (:mod:`repro.owl.race_verifier`, section 5.2),
4. the **static vulnerability analyzer** runs Algorithm 1 — call-stack-
   directed, inter-procedural, data- and control-flow propagation from the
   corrupted load to the five vulnerable site types — producing vulnerable
   input hints (:mod:`repro.owl.vuln_analysis`, section 6.1),
5. the **dynamic vulnerability verifier** re-runs the program, enforces the
   racing order and checks that the attack is realized
   (:mod:`repro.owl.vuln_verifier`, section 6.2).

:mod:`repro.owl.pipeline` wires the stages together and keeps the per-stage
counters that reproduce the paper's Tables 2 and 3.
"""

from repro.owl.vuln_sites import VulnSiteType, VulnSiteRegistry, DEFAULT_REGISTRY
from repro.owl.adhoc import AdhocSyncDetector
from repro.owl.race_verifier import DynamicRaceVerifier, RaceVerification, SecurityHints
from repro.owl.vuln_analysis import (
    AnalysisOptions,
    DependenceKind,
    VulnerabilityAnalyzer,
    VulnerabilityReport,
)
from repro.owl.vuln_verifier import DynamicVulnerabilityVerifier, VulnVerification
from repro.owl.hints import format_call_stack, format_vulnerability_report
from repro.owl.pipeline import OwlPipeline, PipelineResult, StageCounters
from repro.owl.provenance import (
    Decision,
    ProvenanceLog,
    ReportProvenance,
    provenance_path,
)
from repro.owl.audit import AuditingObserver, AuditScope
from repro.owl.batch import (
    can_parallelize,
    make_executor,
    run_detector_batch,
    run_detectors_batch,
    run_seeds_parallel,
    verify_races_batch,
    verify_vulns_batch,
)

__all__ = [
    "VulnSiteType",
    "VulnSiteRegistry",
    "DEFAULT_REGISTRY",
    "AdhocSyncDetector",
    "DynamicRaceVerifier",
    "RaceVerification",
    "SecurityHints",
    "AnalysisOptions",
    "DependenceKind",
    "VulnerabilityAnalyzer",
    "VulnerabilityReport",
    "DynamicVulnerabilityVerifier",
    "VulnVerification",
    "format_call_stack",
    "format_vulnerability_report",
    "OwlPipeline",
    "PipelineResult",
    "StageCounters",
    "Decision",
    "ProvenanceLog",
    "ReportProvenance",
    "provenance_path",
    "AuditingObserver",
    "AuditScope",
    "can_parallelize",
    "make_executor",
    "run_detector_batch",
    "run_detectors_batch",
    "run_seeds_parallel",
    "verify_races_batch",
    "verify_vulns_batch",
]
