"""Audit-scope reduction for runtime defense tools (paper section 7.2).

"We can leverage anomaly detection and intrusion detection tools to audit
only the vulnerable program paths identified by OWL, then these runtime
detection tools can greatly reduce the amount of program paths that need to
be audited and improve performance."

:class:`AuditScope` turns OWL's vulnerability reports into exactly that
artifact: the set of functions, branch sites and vulnerable sites a runtime
monitor needs to watch, plus the fraction of the program it can skip.
:class:`AuditingObserver` is a reference runtime monitor built on the scope:
attached to a VM, it records only events inside the scope and raises an
alarm when a vulnerable site executes after its corrupted branch.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.ir.instructions import Instruction
from repro.ir.module import Module
from repro.owl.vuln_analysis import VulnerabilityReport
from repro.runtime.events import ExternalCallEvent, TraceObserver


class AuditScope:
    """The program slice a defense tool must audit."""

    def __init__(self, module: Module,
                 vulnerabilities: Iterable[VulnerabilityReport]):
        self.module = module
        self.vulnerabilities = list(vulnerabilities)
        self.functions: Set[str] = set()
        self.site_uids: Set[int] = set()
        self.branch_uids: Set[int] = set()
        self.site_locations: Set[Tuple[str, int]] = set()
        for vulnerability in self.vulnerabilities:
            site = vulnerability.site
            if site.function is not None:
                self.functions.add(site.function.name)
            if site.uid is not None:
                self.site_uids.add(site.uid)
            self.site_locations.add(
                (site.location.filename, site.location.line))
            for branch in vulnerability.branches:
                if branch.uid is not None:
                    self.branch_uids.add(branch.uid)
                if branch.function is not None:
                    self.functions.add(branch.function.name)
            for frame in vulnerability.call_stack:
                self.functions.add(frame[0])

    # ------------------------------------------------------------------

    def covers_instruction(self, instruction: Instruction) -> bool:
        return (instruction.uid or -1) in self.site_uids or (
            instruction.uid or -1) in self.branch_uids

    def covers_function(self, name: str) -> bool:
        return name in self.functions

    def audited_fraction(self) -> float:
        """Fraction of the program's functions the monitor must watch."""
        total = len(self.module.functions)
        if total == 0:
            return 0.0
        audited = sum(
            1 for name in self.module.functions if name in self.functions
        )
        return audited / total

    def skipped_functions(self) -> List[str]:
        return sorted(
            name for name in self.module.functions
            if name not in self.functions
        )

    def describe(self) -> str:
        return (
            "audit scope: %d/%d functions (%.0f%% skipped), %d sites, "
            "%d branches" % (
                len(self.functions & set(self.module.functions)),
                len(self.module.functions),
                100 * (1 - self.audited_fraction()),
                len(self.site_uids), len(self.branch_uids),
            )
        )

    def __repr__(self) -> str:
        return "<AuditScope %s>" % self.describe()


class AuditAlarm:
    """A vulnerable site executed inside the audited slice."""

    def __init__(self, instruction: Instruction, thread_id: int, step: int,
                 call_stack):
        self.instruction = instruction
        self.thread_id = thread_id
        self.step = step
        self.call_stack = call_stack

    def __repr__(self) -> str:
        return "<AuditAlarm %s t%d step=%d>" % (
            self.instruction.location, self.thread_id, self.step,
        )


class AuditingObserver(TraceObserver):
    """A reference runtime monitor restricted to OWL's audit scope.

    Counts how many trace events fall inside versus outside the scope (the
    section 7.2 performance argument) and raises an alarm whenever an
    audited vulnerable site executes.
    """

    def __init__(self, scope: AuditScope):
        self.scope = scope
        self.alarms: List[AuditAlarm] = []
        self.events_audited = 0
        self.events_skipped = 0

    def _current_function(self, call_stack) -> Optional[str]:
        return call_stack[-1][0] if call_stack else None

    def on_access(self, event) -> None:
        function = self._current_function(event.call_stack)
        if function is not None and self.scope.covers_function(function):
            self.events_audited += 1
            if self.scope.covers_instruction(event.instruction):
                self.alarms.append(AuditAlarm(
                    event.instruction, event.thread_id, event.step,
                    event.call_stack,
                ))
        else:
            self.events_skipped += 1

    def on_external_call(self, event: ExternalCallEvent) -> None:
        function = self._current_function(event.call_stack)
        if function is not None and self.scope.covers_function(function):
            self.events_audited += 1
            if event.instruction is not None and self.scope.covers_instruction(
                    event.instruction):
                self.alarms.append(AuditAlarm(
                    event.instruction, event.thread_id, event.step,
                    event.call_stack,
                ))
        else:
            self.events_skipped += 1

    def skip_ratio(self) -> float:
        total = self.events_audited + self.events_skipped
        return self.events_skipped / total if total else 0.0
