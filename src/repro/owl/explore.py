"""Coverage-guided schedule exploration with adaptive seed budgets.

The detectors' fixed seed sweep (``seeds=range(N)``) is blind: it spends
the same compute whether the last ten schedules found new races or nothing
at all.  Paper §6.3 runs SKI/TSan over *many* schedules precisely because
races only surface when the perturbation reaches a new interleaving — and
as RaceFixer observes for triage, duplicate observations dominate cost.
This driver replaces the blind sweep with a measured, early-stopping
exploration loop:

1. seeds run in **waves** (fanned out over the existing
   :mod:`repro.owl.batch` process pool when ``jobs > 1``);
2. after each wave the per-seed :class:`repro.runtime.coverage.SeedCoverage`
   is merged — in seed order, deterministically — into a
   :class:`repro.runtime.coverage.CoverageMap`, yielding the wave's
   ``new_pairs`` delta;
3. a wave that adds nothing is *dry*; a dry wave **escalates** the
   schedule family (TSan: uniform random → PCT; SKI: deeper PCT) while
   budget remains, because more of the same family has stopped paying;
4. exploration stops at **saturation** — ``saturation_k`` consecutive dry
   waves — or when the ``max_seeds`` budget is spent, whichever is first.

Determinism: wave composition, escalation and stopping depend only on the
seed-ordered coverage merge, so the explored seed set, the merged
:class:`ReportSet` and every wave counter are bit-identical at any job
count — the same parity contract :class:`repro.owl.pipeline.StageCounters`
keeps, and tested the same way (jobs=1 vs jobs=2).  Per-seed results
(reports, stats, coverage snapshot) are cacheable through the ordinary
``detect`` stage of :class:`repro.owl.cache.ResultCache`; the schedule
family and depth are part of each key, so escalated re-runs of a seed
never collide with its base-family entry.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.detectors.report import ReportSet
from repro.runtime.coverage import CoverageMap, SeedCoverage
from repro.runtime.metrics import RunStats

#: Schedule-family ladders: the base rung first, then each escalation.
#: TSan escalates from uniform random into PCT (a stronger bug-finding
#: family); SKI is PCT already, so escalation deepens it.
_TSAN_LADDER: Tuple[Tuple[str, int], ...] = (
    ("random", 3), ("pct", 3), ("pct", 5),
)


def _ski_ladder(depth: int) -> Tuple[Tuple[str, int], ...]:
    return (("pct", depth), ("pct", depth + 2), ("pct", depth + 4))


class ExplorePolicy:
    """Knobs of one exploration run (and the sink for its results).

    - ``max_seeds`` — the total seed budget (the blind sweep this replaces
      is ``range(20)``; exploration may stop well short of it).
    - ``wave_size`` — seeds per wave; coverage is measured between waves.
    - ``saturation_k`` — consecutive dry waves before declaring saturation.
    - ``escalate`` — whether a dry wave climbs the schedule-family ladder
      before the budget runs out; ``False`` keeps the base family for the
      whole run (useful when comparing against a fixed sweep).
    - ``ladder`` — explicit ``((family, depth), ...)`` override; by default
      derived from the detector kind.

    Every exploration run driven by this policy appends its
    :class:`ExplorationResult` to :attr:`history` (the pipeline runs the
    detector twice — raw and after annotation — so there can be several).
    """

    def __init__(self, max_seeds: int = 20, wave_size: int = 4,
                 saturation_k: int = 2, escalate: bool = True,
                 ladder: Optional[Sequence[Tuple[str, int]]] = None,
                 predict=None):
        if max_seeds <= 0:
            raise ValueError("max_seeds must be positive")
        if wave_size <= 0:
            raise ValueError("wave_size must be positive")
        if saturation_k <= 0:
            raise ValueError("saturation_k must be positive")
        self.max_seeds = int(max_seeds)
        self.wave_size = int(wave_size)
        self.saturation_k = int(saturation_k)
        self.escalate = escalate
        self.ladder = tuple(ladder) if ladder is not None else None
        #: A :class:`repro.detectors.predict.PredictPolicy` turns wave 0
        #: into a *predict* wave: seed 0 runs once, recorded, and the
        #: sync-preserving closure pre-seeds coverage with every race
        #: inferable from that single trace — so later waves only spend
        #: seed budget on interleavings prediction could not decide.
        self.predict = predict
        self.history: List["ExplorationResult"] = []

    def ladder_for(self, kind: str, depth: int) -> Tuple[Tuple[str, int], ...]:
        if self.ladder is not None:
            return self.ladder
        return _ski_ladder(depth) if kind == "ski" else _TSAN_LADDER

    @property
    def last(self) -> Optional["ExplorationResult"]:
        return self.history[-1] if self.history else None

    def as_dict(self) -> Dict:
        block = {
            "max_seeds": self.max_seeds,
            "wave_size": self.wave_size,
            "saturation_k": self.saturation_k,
            "escalate": self.escalate,
        }
        if self.predict is not None:
            block["predict"] = self.predict.as_dict()
        return block

    def __repr__(self) -> str:
        return "<ExplorePolicy max_seeds=%d wave=%d k=%d escalate=%s>" % (
            self.max_seeds, self.wave_size, self.saturation_k, self.escalate,
        )


class WaveRecord:
    """One wave of the exploration loop, as recorded in the metrics JSON."""

    __slots__ = ("index", "seeds", "scheduler", "depth", "new_pairs",
                 "new_signatures", "total_pairs", "dry", "escalated")

    def __init__(self, index: int, seeds: List[int], scheduler: str,
                 depth: int, new_pairs: int, new_signatures: int,
                 total_pairs: int, escalated: bool = False):
        self.index = index
        self.seeds = list(seeds)
        self.scheduler = scheduler
        self.depth = depth
        self.new_pairs = new_pairs
        self.new_signatures = new_signatures
        self.total_pairs = total_pairs
        self.dry = new_pairs == 0
        self.escalated = escalated

    def as_dict(self) -> Dict:
        return {
            "index": self.index,
            "seeds": list(self.seeds),
            "scheduler": self.scheduler,
            "depth": self.depth,
            "new_pairs": self.new_pairs,
            "new_signatures": self.new_signatures,
            "total_pairs": self.total_pairs,
            "dry": self.dry,
            "escalated": self.escalated,
        }

    def __repr__(self) -> str:
        return "<Wave %d %s/d%d seeds=%s new_pairs=%d>" % (
            self.index, self.scheduler, self.depth, self.seeds,
            self.new_pairs,
        )


class ExplorationResult:
    """Everything one exploration run produced, beyond the report set."""

    def __init__(self, kind: str, policy: ExplorePolicy):
        self.kind = kind
        self.policy = policy
        self.waves: List[WaveRecord] = []
        self.coverage = CoverageMap()
        self.saturated = False
        #: Index of the wave that sealed saturation (None: budget ran out).
        self.saturation_wave: Optional[int] = None
        self.seeds_executed = 0
        self.wall_seconds = 0.0
        #: The :class:`repro.detectors.predict.PredictionResult` of the
        #: predict wave, when the policy asked for one.
        self.predict = None

    @property
    def seeds_skipped(self) -> int:
        """Budgeted seeds the early stop never had to execute."""
        return self.policy.max_seeds - self.seeds_executed

    def metrics_block(self) -> Dict:
        """The metrics-JSON ``"explore"`` block (schema 3)."""
        return {
            "detector": self.kind,
            "policy": self.policy.as_dict(),
            "seeds_executed": self.seeds_executed,
            "seeds_skipped": self.seeds_skipped,
            "saturated": self.saturated,
            "saturation_wave": self.saturation_wave,
            "total_pairs": self.coverage.total_pairs,
            "distinct_schedules": self.coverage.distinct_schedules,
            "waves": [wave.as_dict() for wave in self.waves],
        }

    def describe(self) -> str:
        lines = [
            "exploration: %d/%d seeds (%s), %d racy pairs, %d schedules" % (
                self.seeds_executed, self.policy.max_seeds,
                "saturated at wave %s" % self.saturation_wave
                if self.saturated else "budget exhausted",
                self.coverage.total_pairs, self.coverage.distinct_schedules,
            )
        ]
        for wave in self.waves:
            lines.append(
                "  wave %d: seeds %s  %s/d%d  +%d pairs (%d total)%s" % (
                    wave.index, wave.seeds, wave.scheduler, wave.depth,
                    wave.new_pairs, wave.total_pairs,
                    "  [dry]" if wave.dry else "",
                )
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "<ExplorationResult %s waves=%d executed=%d saturated=%s>" % (
            self.kind, len(self.waves), self.seeds_executed, self.saturated,
        )


# ---------------------------------------------------------------------------
# wave execution


def _scheduler_factory(family: str, depth: int):
    """TSan scheduler factory for one ladder rung (None = default random)."""
    if family == "pct":
        from repro.runtime.scheduler import PCTScheduler

        return lambda seed: PCTScheduler(seed=seed, depth=depth)
    return None


def _run_wave_serial(
    kind: str, module, seeds: Sequence[int], family: str, depth: int,
    entry: str, inputs, annotations, max_steps: int, entry_args,
    tracer, profile_out=None, profile_interval=None, feed=None,
) -> Tuple[ReportSet, List[RunStats], List[SeedCoverage]]:
    """One wave without a registry spec: plain in-process seed runs."""
    from repro.detectors.ski import run_ski_seed
    from repro.detectors.tsan import run_tsan_seed

    merged = ReportSet()
    stats: List[RunStats] = []
    coverage: List[SeedCoverage] = []
    for seed in seeds:
        started = time.perf_counter()
        if kind == "ski":
            seed_reports, result, detector = run_ski_seed(
                module, seed, entry=entry, inputs=inputs,
                annotations=annotations, max_steps=max_steps, depth=depth,
                tracer=tracer, coverage_out=coverage,
                profile_out=profile_out, profile_interval=profile_interval,
            )
        else:
            seed_reports, result, detector = run_tsan_seed(
                module, seed, entry=entry, inputs=inputs,
                annotations=annotations, max_steps=max_steps,
                scheduler_factory=_scheduler_factory(family, depth),
                entry_args=entry_args, tracer=tracer,
                coverage_out=coverage,
                profile_out=profile_out, profile_interval=profile_interval,
            )
        merged.merge(seed_reports)
        stats.append(RunStats(
            seed=seed, reason=result.reason, steps=result.steps,
            accesses=detector.access_count, reports=len(seed_reports),
            wall_seconds=time.perf_counter() - started,
        ))
        if feed is not None:
            feed.seed_done(stage="detect", seed=seed, detector=kind,
                           steps=result.steps, reports=len(seed_reports),
                           cached=False)
    return merged, stats, coverage


def _run_predict_wave(
    kind: str, module, entry: str, inputs, annotations, max_steps: int,
    entry_args, family: str, depth: int, predict_policy, tracer=None,
    world_factory=None, cache=None, feed=None,
    profile_out=None, profile_interval=None,
):
    """Wave 0 of a predicting exploration: one recorded run + closure.

    Runs seed 0 once under the base schedule family with the recorder
    attached, then predicts the feasible race set from that single log
    (:func:`repro.detectors.predict.predict_from_log`).  Returns
    ``(reports, stats, coverage, prediction)`` where ``reports`` merges
    the live seed-0 reports with the predicted ones, and ``coverage`` is
    the seed-0 coverage *pre-seeded* with every predicted static pair —
    the delta that makes later waves dry when they only rediscover what
    prediction already decided.  Serial and deterministic at any job
    count; cacheable as one ``predict`` stage entry.
    """
    from repro.detectors.predict import PredictionResult, predict_from_log
    from repro.owl.batch import (
        annotations_to_payload,
        report_from_payload,
        report_to_payload,
    )

    key = None
    if cache is not None:
        key = cache.key(
            "predict", module=module, kind=kind, seed=0, entry=entry,
            inputs=inputs, annotations=annotations_to_payload(annotations),
            max_steps=max_steps, entry_args=tuple(entry_args),
            scheduler=family, depth=depth,
            predict=predict_policy.as_dict(),
        )
        hit = cache.get("predict", key)
        if hit is not None:
            prediction = PredictionResult.from_payload(
                module, hit["prediction"])
            reports = ReportSet()
            for payload in hit["reports"]:
                reports.add(report_from_payload(module, payload))
            for item in prediction.predictions:
                reports.add(item.report)
            stats = [RunStats(*hit["stats"])]
            coverage = SeedCoverage.from_payload(hit["coverage"])
            if feed is not None:
                feed.seed_done(stage="detect", seed=0, detector=kind,
                               steps=stats[0].steps,
                               reports=stats[0].reports, cached=True)
            return reports, stats, coverage, prediction

    from repro.detectors.ski import run_ski_seed
    from repro.detectors.tsan import run_tsan_seed

    started = time.perf_counter()
    record_out: List = []
    coverage_out: List[SeedCoverage] = []
    if kind == "ski":
        seed_reports, result, detector = run_ski_seed(
            module, 0, entry=entry, inputs=inputs, annotations=annotations,
            max_steps=max_steps, depth=depth, tracer=tracer,
            coverage_out=coverage_out, record_out=record_out,
            profile_out=profile_out, profile_interval=profile_interval,
        )
    else:
        seed_reports, result, detector = run_tsan_seed(
            module, 0, entry=entry, inputs=inputs, annotations=annotations,
            max_steps=max_steps,
            scheduler_factory=_scheduler_factory(family, depth),
            entry_args=entry_args, tracer=tracer,
            coverage_out=coverage_out, record_out=record_out,
            profile_out=profile_out, profile_interval=profile_interval,
        )
    log = record_out[0]
    prediction = predict_from_log(
        module, log, annotations=annotations, inputs=inputs,
        world_factory=world_factory, policy=predict_policy,
        observed_keys={report.static_key for report in seed_reports},
    )
    stats = [RunStats(
        seed=0, reason=result.reason, steps=result.steps,
        accesses=detector.access_count, reports=len(seed_reports),
        wall_seconds=time.perf_counter() - started,
    )]
    seed0 = coverage_out[0]
    coverage = SeedCoverage(
        seed=0, pairs=seed0.pairs | prediction.predicted_keys,
        signature=seed0.signature, switches=seed0.switches,
    )
    reports = ReportSet()
    reports.merge(seed_reports)
    for item in prediction.predictions:
        reports.add(item.report)
    if cache is not None and key is not None:
        cache.put("predict", key, {
            "reports": [report_to_payload(r) for r in seed_reports],
            "stats": (0, result.reason, result.steps,
                      detector.access_count, len(seed_reports),
                      stats[0].wall_seconds),
            "coverage": coverage.to_payload(),
            "prediction": prediction.to_payload(),
        })
    if feed is not None:
        feed.seed_done(stage="detect", seed=0, detector=kind,
                       steps=result.steps, reports=len(seed_reports),
                       cached=False)
    return reports, stats, coverage, prediction


# ---------------------------------------------------------------------------
# the exploration loop


def explore_seeds(
    kind: str,
    module,
    module_source=None,
    entry: str = "main",
    inputs: Optional[Dict] = None,
    annotations=None,
    max_steps: int = 200_000,
    entry_args: Sequence[int] = (),
    depth: int = 3,
    jobs: int = 1,
    executor=None,
    stats_out: Optional[List] = None,
    tracer=None,
    cache=None,
    policy=None,
    explore: Optional[ExplorePolicy] = None,
    profile_out: Optional[List] = None,
    profile_interval: Optional[int] = None,
    feed=None,
    world_factory=None,
    fuse: bool = False,
) -> Tuple[ReportSet, List[RunStats]]:
    """Coverage-guided exploration over seeds ``0 .. max_seeds - 1``.

    Drop-in replacement for the fixed sweep of
    :func:`repro.detectors.tsan.run_tsan` /
    :func:`repro.detectors.ski.run_ski` (same ``(reports, stats)`` return
    contract; ``policy`` is the batch fault-tolerance policy, ``explore``
    the exploration policy).  The seed values are the prefix of the same
    ``range()`` the blind sweep uses, under the same base schedule family,
    so a run that saturates before escalating has — by construction —
    found exactly the races of the fixed sweep's prefix.  The full
    :class:`ExplorationResult` (waves, saturation, coverage) is appended
    to ``explore.history``.

    ``profile_out``/``profile_interval`` sample every executed seed's VM
    (see :mod:`repro.runtime.profiler`); ``feed`` (an
    :class:`repro.owl.stream.EventFeed`) receives one ``seed_done`` per
    seed and one ``wave_done`` per wave — the live per-wave progress
    ``owl watch`` renders.

    When ``explore.predict`` is set (a
    :class:`repro.detectors.predict.PredictPolicy`), wave 0 becomes a
    **predict wave**: seed 0 runs once with the schedule recorder
    attached, the sync-preserving closure predicts every race feasible
    from that single trace, and the predicted static pairs pre-seed the
    coverage map — so a later wave that only rediscovers predicted races
    is dry, and the seed budget goes to interleavings prediction could
    not decide.  ``world_factory`` builds a fresh OS-world for each
    witness replay of that wave (specs with an ``initial_world``).

    ``fuse`` is accepted for interface symmetry with the fixed sweeps
    but is deliberately not applied: every exploration wave tracks
    interleaving coverage through the :class:`SwitchTracker` scheduler
    wrapper, which forces stepwise execution (``run_length == 1``) so
    context-switch signatures stay byte-identical — fusing here would
    only add plan-compilation overhead with no fused runs.
    """
    del fuse  # see docstring: coverage tracking forces stepwise execution
    explore = explore if explore is not None else ExplorePolicy()
    ladder = explore.ladder_for(kind, depth)
    result = ExplorationResult(kind, explore)
    merged = ReportSet()
    stats: List[RunStats] = []
    started = time.perf_counter()
    rung = 0
    dry = 0
    cursor = 0
    if explore.predict is not None:
        family, wave_depth = ladder[0]
        wave_reports, wave_stats, coverage, prediction = _run_predict_wave(
            kind, module, entry, inputs, annotations, max_steps,
            entry_args, family, wave_depth, explore.predict, tracer=tracer,
            world_factory=world_factory, cache=cache, feed=feed,
            profile_out=profile_out, profile_interval=profile_interval,
        )
        result.predict = prediction
        new_pairs = result.coverage.merge(coverage)
        merged.merge(wave_reports)
        stats.extend(wave_stats)
        result.seeds_executed += 1
        cursor = 1
        if new_pairs == 0:
            dry += 1
            if dry >= explore.saturation_k:
                result.saturated = True
                result.saturation_wave = 0
        result.waves.append(WaveRecord(
            0, [0], "predict", wave_depth, new_pairs,
            result.coverage.distinct_schedules,
            result.coverage.total_pairs,
        ))
        if feed is not None:
            feed.wave_done(index=0, seeds=[0], scheduler="predict",
                           depth=wave_depth, new_pairs=new_pairs,
                           total_pairs=result.coverage.total_pairs,
                           dry=new_pairs == 0, escalated=False,
                           saturated=result.saturated)
    while not result.saturated and cursor < explore.max_seeds:
        wave_seeds = list(range(
            cursor, min(cursor + explore.wave_size, explore.max_seeds)))
        cursor += len(wave_seeds)
        family, wave_depth = ladder[rung]
        if module_source is not None:
            from repro.owl.batch import run_seeds_parallel

            wave_coverage: List[SeedCoverage] = []
            wave_stats: List[RunStats] = []
            wave_reports, _ = run_seeds_parallel(
                kind, module, module_source, entry=entry, inputs=inputs,
                seeds=wave_seeds, annotations=annotations,
                max_steps=max_steps, entry_args=entry_args, depth=wave_depth,
                jobs=jobs, stats_out=wave_stats, executor=executor,
                tracer=tracer, cache=cache, policy=policy,
                scheduler=family, coverage_out=wave_coverage,
                profile_out=profile_out, profile_interval=profile_interval,
                feed=feed,
            )
        else:
            wave_reports, wave_stats, wave_coverage = _run_wave_serial(
                kind, module, wave_seeds, family, wave_depth, entry, inputs,
                annotations, max_steps, entry_args, tracer,
                profile_out=profile_out, profile_interval=profile_interval,
                feed=feed,
            )
        signatures_before = result.coverage.distinct_schedules
        deltas = result.coverage.merge_all(wave_coverage)  # seed order
        merged.merge(wave_reports)
        stats.extend(wave_stats)
        result.seeds_executed += len(wave_seeds)
        new_pairs = sum(deltas)
        escalated = False
        if new_pairs == 0:
            dry += 1
            if dry >= explore.saturation_k:
                result.saturated = True
                result.saturation_wave = len(result.waves)
            elif explore.escalate and rung + 1 < len(ladder):
                # A wave of this family stopped paying while budget
                # remains: climb the ladder before giving up.
                rung += 1
                escalated = True
        else:
            dry = 0
        result.waves.append(WaveRecord(
            len(result.waves), wave_seeds, family, wave_depth, new_pairs,
            result.coverage.distinct_schedules - signatures_before,
            result.coverage.total_pairs, escalated=escalated,
        ))
        if feed is not None:
            feed.wave_done(index=len(result.waves) - 1, seeds=wave_seeds,
                           scheduler=family, depth=wave_depth,
                           new_pairs=new_pairs,
                           total_pairs=result.coverage.total_pairs,
                           dry=new_pairs == 0, escalated=escalated,
                           saturated=result.saturated)
        if result.saturated:
            break
    result.wall_seconds = time.perf_counter() - started
    explore.history.append(result)
    if stats_out is not None:
        stats_out.extend(stats)
    return merged, stats


def explore_program(
    spec,
    annotations=None,
    jobs: int = 1,
    executor=None,
    stats_out: Optional[List] = None,
    tracer=None,
    cache=None,
    policy=None,
    explore: Optional[ExplorePolicy] = None,
    profile_out: Optional[List] = None,
    profile_interval: Optional[int] = None,
    feed=None,
    fuse: bool = False,
) -> Tuple[ReportSet, List[RunStats]]:
    """Exploration over one :class:`repro.spec.ProgramSpec`'s detector.

    The spec-level analogue of :func:`repro.owl.integration.run_detector`:
    registry-resolvable specs fan waves out over the process pool (and
    through the result cache); anything else explores serially with
    identical results.
    """
    from repro.owl.batch import can_parallelize

    parallel = can_parallelize(spec)
    if not parallel:
        cache = None  # keys need the registry-rebuilt module
    world_factory = None
    if spec.initial_world is not None:
        world_factory = spec.initial_world
    return explore_seeds(
        spec.detector, spec.build(),
        module_source=spec.name if parallel else None,
        entry=spec.entry, inputs=spec.workload_inputs,
        annotations=annotations, max_steps=spec.max_steps,
        jobs=jobs, executor=executor, stats_out=stats_out, tracer=tracer,
        cache=cache, policy=policy, explore=explore,
        profile_out=profile_out, profile_interval=profile_interval,
        feed=feed, world_factory=world_factory, fuse=fuse,
    )
