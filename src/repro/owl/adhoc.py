"""The static adhoc-synchronization detector (paper section 5.1).

"Developers use semaphore-like adhoc synchronizations, where one thread is
busy waiting on a shared variable until another thread sets this variable to
be 'true'.  This type of adhoc synchronizations couldn't be recognized by
TSan or SKI and caused many false positives.

OWL uses static analysis to detect these synchronizations in two steps.
First, by taking the race reports from detectors, it sees if the 'read'
instruction is in a loop.  Then, it conducts a intra-procedural forward data
and control dependency analysis [...] If OWL encounters a branch instruction
in the propagation chain, it checks if this branch instruction can break out
of the loop.  Last, it checks if the 'write' instruction of the instruction
assigns a constant to the variable.  If so, OWL tags this report as an
'adhoc sync'."

Compared to SyncFinder's whole-program static search, this leverages the
runtime information in the race reports — "ours are much simpler and more
precise".
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.analysis.depgraph import forward_dependent_instructions
from repro.detectors.annotations import AdhocSyncAnnotation, AnnotationSet
from repro.detectors.report import RaceReport
from repro.ir.cfg import Loop, cfg_for
from repro.ir.function import ExternalFunction, Function
from repro.ir.instructions import Alloca, Br, Call, Instruction, Load, Store
from repro.ir.values import Constant

#: externals a busy-wait loop may call without ceasing to be a pure spin
_SPIN_FRIENDLY_CALLS = {"usleep", "io_delay", "thread_yield"}


class AdhocSyncDetector:
    """Tags race reports that are really adhoc synchronizations."""

    TAG = "adhoc-sync"

    def analyze_report(self, report: RaceReport) -> Optional[AdhocSyncAnnotation]:
        """The three-step test from section 5.1; None when not an adhoc sync."""
        read = self._read_instruction(report)
        write = self._write_instruction(report)
        if read is None or write is None:
            return None
        function = read.function
        if function is None:
            return None
        # Step 1: the read instruction must be inside a busy-wait loop.  A
        # semaphore-like adhoc sync spins doing nothing but re-checking the
        # flag; a loop with real side effects (calls, shared stores) is a
        # worker loop, not a synchronization — e.g. SSDB's log-clean loop
        # re-checks ``logs->db`` but also calls del_range, and OWL correctly
        # treats its race as vulnerable rather than benign (Table 3: SSDB has
        # zero adhoc syncs despite the Figure 6 "adhoc synchronization").
        cfg = cfg_for(function)
        loop = cfg.loop_containing(read.block)
        if loop is None or not self._is_busy_wait_loop(loop):
            return None
        # Step 2: forward data/control dependence from the read must reach a
        # branch that can break out of that loop.
        dependent = forward_dependent_instructions([read], function)
        breaking_branch = None
        for instruction in dependent:
            if (
                isinstance(instruction, Br)
                and instruction.is_conditional
                and cfg.branch_exits_loop(instruction, loop)
            ):
                breaking_branch = instruction
                break
        if breaking_branch is None:
            return None
        # Step 3: the racing write must store a constant (the flag set).
        if not isinstance(write, Store) or not isinstance(write.value, Constant):
            return None
        return AdhocSyncAnnotation(read, write, variable=report.variable)

    def analyze(self, reports: Iterable[RaceReport]) -> AnnotationSet:
        """Tag adhoc-sync reports; returns annotations for the re-run."""
        annotations = AnnotationSet()
        for report in reports:
            annotation = self.analyze_report(report)
            if annotation is not None:
                report.tags[self.TAG] = annotation
                annotations.add(annotation)
        return annotations

    # ------------------------------------------------------------------

    @staticmethod
    def _is_busy_wait_loop(loop: Loop) -> bool:
        """Whether the loop only spins: no shared stores, no real calls."""
        for block in loop.blocks:
            for instruction in block.instructions:
                if isinstance(instruction, Call):
                    callee = instruction.callee
                    if isinstance(callee, ExternalFunction) and (
                        callee.name in _SPIN_FRIENDLY_CALLS
                    ):
                        continue
                    return False
                if isinstance(instruction, Store):
                    # Stores to the loop's own locals (alloca slots, e.g. a
                    # retry counter) are fine; stores elsewhere are work.
                    if not isinstance(instruction.pointer, Alloca):
                        return False
        return True

    @staticmethod
    def _read_instruction(report: RaceReport) -> Optional[Instruction]:
        for access in report.accesses():
            if isinstance(access.instruction, Load):
                return access.instruction
        return None

    @staticmethod
    def _write_instruction(report: RaceReport) -> Optional[Instruction]:
        for access in report.accesses():
            if access.is_write:
                return access.instruction
        return None
