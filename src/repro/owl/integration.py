"""Detector integration (paper section 6.3).

OWL integrates two race detector front ends: TSan for applications and SKI
for kernels.  The contract Algorithm 1 needs from either is (a) a *load*
instruction reading the corrupted memory and (b) that instruction's call
stack.  Both requirements are satisfied here:

- the shared happens-before engine already watches corrupted addresses and
  records subsequent reads with full call stacks (the modified SKI policy);
- :func:`usable_reports` filters to reports that can supply a load, which is
  the "we modified the detectors to add the first load instruction for these
  reports" behaviour for write-write races.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.detectors.annotations import AnnotationSet
from repro.detectors.report import RaceReport, ReportSet
from repro.detectors.ski import run_ski
from repro.detectors.tsan import run_tsan
from repro.runtime.interpreter import ExecutionResult
from repro.spec import ProgramSpec


def run_detector(
    spec: ProgramSpec,
    annotations: Optional[AnnotationSet] = None,
    jobs: int = 1,
    executor=None,
    stats_out: Optional[List] = None,
    tracer=None,
    cache=None,
    policy=None,
    explore=None,
    replay=None,
    profile_out: Optional[List] = None,
    profile_interval: Optional[int] = None,
    feed=None,
    fuse: bool = False,
) -> Tuple[ReportSet, List]:
    """Run the spec's front-end detector over its configured schedules.

    With ``jobs > 1`` (or an explicit process-pool ``executor``) the seeds
    fan out via :mod:`repro.owl.batch`; reports are merged in seed order so
    the result is identical to the serial run.  In the parallel case the
    second element of the returned tuple holds per-seed
    :class:`repro.runtime.metrics.RunStats` instead of
    :class:`ExecutionResult` objects (which cannot cross process
    boundaries); ``stats_out`` receives the stats in both modes.  ``tracer``
    (a :class:`repro.runtime.spans.SpanTracer`) collects one ``detect_seed``
    span per execution, adopted in seed order in the parallel case.

    A ``cache`` (:class:`repro.owl.cache.ResultCache`) also routes through
    the batch path — even at ``jobs=1``, where cache misses execute
    in-process — so already-computed seeds are never re-executed; the
    per-seed stats then come back as :class:`RunStats` as in the parallel
    case.  ``policy`` (:class:`repro.owl.batch.BatchPolicy`) supplies the
    pooled path's timeout/retry budgets.

    An ``explore`` policy (:class:`repro.owl.explore.ExplorePolicy`)
    replaces the spec's fixed ``detect_seeds`` sweep with coverage-guided
    adaptive budgeting; the run's :class:`ExplorationResult` lands in
    ``explore.history``.

    A ``replay`` source (:class:`repro.owl.replay.ReplaySource`) replaces
    live execution entirely: every recorded log is deterministically
    re-executed with the detector attached (see :mod:`repro.owl.replay`);
    profiling and feed events apply to live paths only.

    ``profile_out``/``profile_interval`` sample the VM every K scheduler
    decisions into per-seed :class:`repro.runtime.profiler.SeedProfile`
    aggregates; ``feed`` (an :class:`repro.owl.stream.EventFeed`)
    receives one ``seed_done`` progress event per executed seed.

    ``fuse=True`` executes the sweep with superinstruction fusion
    (:mod:`repro.runtime.fuse`); the detector observes bit-identical
    events, faults and steps, so reports, coverage and logs are
    unchanged — only steps/s moves.  Replay sources ignore the flag
    (replayed decisions are scripted, which forces stepwise execution).
    """
    if replay is not None:
        return replay.run_detector(
            annotations=annotations, stats_out=stats_out, tracer=tracer,
        )
    if explore is not None:
        from repro.owl.explore import explore_program

        return explore_program(
            spec, annotations=annotations, jobs=jobs, executor=executor,
            stats_out=stats_out, tracer=tracer, cache=cache, policy=policy,
            explore=explore, profile_out=profile_out,
            profile_interval=profile_interval, feed=feed, fuse=fuse,
        )
    if (jobs and jobs > 1) or executor is not None or cache is not None:
        from repro.owl.batch import run_detector_batch

        return run_detector_batch(
            spec, annotations=annotations, jobs=jobs, executor=executor,
            stats_out=stats_out, tracer=tracer, cache=cache, policy=policy,
            profile_out=profile_out, profile_interval=profile_interval,
            feed=feed, fuse=fuse,
        )
    if spec.detector == "ski":
        return run_ski(
            spec.build(), entry=spec.entry, inputs=spec.workload_inputs,
            seeds=spec.detect_seeds, annotations=annotations,
            max_steps=spec.max_steps, stats_out=stats_out, tracer=tracer,
            profile_out=profile_out, profile_interval=profile_interval,
            feed=feed, fuse=fuse,
        )
    return run_tsan(
        spec.build(), entry=spec.entry, inputs=spec.workload_inputs,
        seeds=spec.detect_seeds, annotations=annotations,
        max_steps=spec.max_steps, stats_out=stats_out, tracer=tracer,
        profile_out=profile_out, profile_interval=profile_interval,
        feed=feed, fuse=fuse,
    )


def usable_reports(reports) -> List[RaceReport]:
    """Reports that satisfy Algorithm 1's input contract (a racy load)."""
    return [report for report in reports if report.read_access() is not None]
