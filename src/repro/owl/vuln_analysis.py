"""The static vulnerability analyzer: Algorithm 1 (paper section 6.1).

Given a racy *load* (the instruction reading corrupted memory) and its
runtime call stack, the analyzer performs inter-procedural forward data- and
control-flow propagation to decide whether the corruption can reach one of
the five vulnerable site types, and collects the corrupted branches along the
way as **vulnerable input hints**.

The three design decisions the paper calls out are all here:

1. *call-stack direction*: the traversal follows the bug's actual call stack
   outward, popping one caller at a time and propagating through the call's
   return value — instead of exploring the whole program
   (``options.follow_callers`` / ``options.all_callers`` toggle this for the
   ablation benchmarks);
2. *virtual-register propagation, no pointer analysis*: corruption flows
   through SSA operands, compensated by (a) starting from the detector's
   runtime load and (b) resolving indirect calls from the call stack — plus
   the one cheap must-alias rule for clang -O0 style local spills;
3. *five vulnerable site types* from a registry that is extensible.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.callgraph import CallGraph
from repro.detectors.report import AccessRecord, RaceReport
from repro.ir.cfg import cfg_for
from repro.ir.function import ExternalFunction, Function
from repro.ir.instructions import Br, Call, Instruction, Load, Ret, Store
from repro.ir.module import Module
from repro.ir.values import Value
from repro.owl.vuln_sites import DEFAULT_REGISTRY, VulnSiteRegistry, VulnSiteType
from repro.runtime.spans import SpanTracer, maybe_span

CallStack = Tuple[Tuple[str, str, int], ...]


class DependenceKind(enum.Enum):
    """How the corruption reaches the vulnerable site (Algorithm 1's type)."""

    DATA_DEP = "DATA_DEP"
    CTRL_DEP = "CTRL_DEP"


class AnalysisOptions:
    """Feature switches; the defaults are full OWL, the others are ablations."""

    def __init__(
        self,
        track_control_flow: bool = True,
        interprocedural: bool = True,
        follow_callers: bool = True,
        all_callers: bool = False,
        max_call_depth: int = 8,
        instruction_budget: int = 500_000,
    ):
        self.track_control_flow = track_control_flow
        self.interprocedural = interprocedural
        self.follow_callers = follow_callers
        self.all_callers = all_callers
        self.max_call_depth = max_call_depth
        self.instruction_budget = instruction_budget

    @classmethod
    def full(cls) -> "AnalysisOptions":
        return cls()

    @classmethod
    def no_control_flow(cls) -> "AnalysisOptions":
        """Livshits&Lam-style: data flow only (misses the Libsafe attack)."""
        return cls(track_control_flow=False)

    @classmethod
    def intraprocedural(cls) -> "AnalysisOptions":
        """Yamaguchi-style: no inter-procedural analysis."""
        return cls(interprocedural=False, follow_callers=False)

    @classmethod
    def conseq_style(cls) -> "AnalysisOptions":
        """ConSeq-style short-distance analysis: current function + callees."""
        return cls(follow_callers=False)

    @classmethod
    def whole_program(cls) -> "AnalysisOptions":
        """Undirected: explore every caller instead of the actual stack."""
        return cls(all_callers=True)


class VulnerabilityReport:
    """One potential bug-to-attack propagation: a vulnerable input hint."""

    def __init__(
        self,
        site: Instruction,
        site_type: VulnSiteType,
        kind: DependenceKind,
        branches: Sequence[Br],
        start: Instruction,
        call_stack: CallStack,
        source: Optional[RaceReport] = None,
    ):
        self.site = site
        self.site_type = site_type
        self.kind = kind
        #: the corrupted branches controlling / reaching the site — the
        #: concrete "vulnerable input hints" shown to developers (Figure 5).
        self.branches: List[Br] = list(branches)
        self.start = start
        self.call_stack = call_stack
        self.source = source

    @property
    def dedup_key(self) -> Tuple[int, str]:
        return (self.site.uid or 0, self.kind.value)

    def __repr__(self) -> str:
        return "<Vulnerability %s %s at %s (%d branches)>" % (
            self.kind.value, self.site_type.value, self.site.location,
            len(self.branches),
        )


class _FrameWork:
    """Bookkeeping for one DoDetect invocation."""

    def __init__(self, function: Function, ctrl_dep: bool,
                 inherited_branches: Tuple[Br, ...]):
        self.function = function
        self.ctrl_dep = ctrl_dep
        self.inherited_branches = inherited_branches
        self.local_corrupted_branches: List[Br] = []


class VulnerabilityAnalyzer:
    """Algorithm 1 over a module."""

    def __init__(
        self,
        module: Module,
        registry: VulnSiteRegistry = DEFAULT_REGISTRY,
        options: Optional[AnalysisOptions] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        self.module = module
        self.registry = registry
        self.options = options or AnalysisOptions()
        self.call_graph = CallGraph(module)
        self.tracer = tracer
        self._reset()

    def _reset(self) -> None:
        self.corrupted: Set[Value] = set()
        self.reports: Dict[Tuple[int, str], VulnerabilityReport] = {}
        self._visited_callees: Set[Tuple[str, Tuple[int, ...], bool]] = set()
        self._budget = self.options.instruction_budget
        self.budget_exhausted = False

    # ------------------------------------------------------------------
    # entry points

    def analyze_report(self, report: RaceReport) -> List[VulnerabilityReport]:
        """Analyze a race report, starting from its corrupted load.

        Uses the detector-integration contract of section 6.3: the report
        must supply a load instruction reading the corrupted memory plus its
        call stack (for write-write races, the first watched subsequent
        read).
        """
        access = report.read_access()
        if access is None:
            return []
        return self.analyze(access.instruction, access.call_stack, source=report)

    def analyze(self, start: Instruction, call_stack: CallStack,
                source: Optional[RaceReport] = None) -> List[VulnerabilityReport]:
        """DetectAttack(prog, si, cs) from Algorithm 1."""
        with maybe_span(self.tracer, "analyze_report",
                        start=str(start.location),
                        report=(source.uid if source is not None else None),
                        ) as span:
            reports = self._analyze(start, call_stack, source)
            if span is not None:
                span.attrs.update(sites=len(reports),
                                  budget_exhausted=self.budget_exhausted)
        return reports

    def _analyze(self, start: Instruction, call_stack: CallStack,
                 source: Optional[RaceReport]) -> List[VulnerabilityReport]:
        self._reset()
        self._source = source
        self._start = start
        self._start_stack = call_stack
        self.corrupted.add(start)
        frames = self._resolve_stack_frames(start, call_stack)
        ctrl_dep = False
        carried_branches: Tuple[Br, ...] = ()
        previous_returned_corrupted = False
        for depth, (function, position) in enumerate(frames):
            if depth > 0:
                if not self.options.follow_callers and not self.options.all_callers:
                    break
                # Propagation through the return value of the popped call.
                if previous_returned_corrupted and position is not None:
                    self.corrupted.add(position)
            with maybe_span(self.tracer, "propagate",
                            function=function.name, frame=depth) as span:
                returned = self._do_detect(
                    function, position, include_start=False,
                    ctrl_dep=ctrl_dep, inherited_branches=carried_branches,
                    depth=0,
                )
                if span is not None:
                    span.attrs["sites_so_far"] = len(self.reports)
            previous_returned_corrupted = returned
        if self.options.all_callers:
            self._explore_all_callers(frames)
        return list(self.reports.values())

    # ------------------------------------------------------------------
    # call-stack resolution

    def _resolve_stack_frames(
        self, start: Instruction, call_stack: CallStack,
    ) -> List[Tuple[Function, Optional[Instruction]]]:
        """Turn a (function, file, line) stack into (function, position) frames.

        Innermost first.  Position is the instruction the traversal resumes
        *after*: the start instruction for the innermost frame, the call site
        for each caller.
        """
        frames: List[Tuple[Function, Optional[Instruction]]] = []
        inner_function = start.function
        if inner_function is None:
            return frames
        frames.append((inner_function, start))
        # Walk outward: the stack snapshot is outermost-first, so reverse it
        # and skip the innermost entry (already handled).
        outer_entries = list(call_stack[:-1])[::-1] if call_stack else []
        callee_name = inner_function.name
        for function_name, filename, line in outer_entries:
            caller = self.module.functions.get(function_name)
            if caller is None:
                break
            site = self._find_call_site(caller, callee_name, filename, line)
            frames.append((caller, site))
            callee_name = function_name
        return frames

    @staticmethod
    def _find_call_site(caller: Function, callee_name: str, filename: str,
                        line: int) -> Optional[Instruction]:
        best: Optional[Instruction] = None
        for instruction in caller.instructions():
            if not isinstance(instruction, Call):
                continue
            loc = instruction.location
            if loc.filename == filename and loc.line == line:
                return instruction
            if instruction.callee_name() == callee_name and best is None:
                best = instruction
        return best

    # ------------------------------------------------------------------
    # the DoDetect walk

    def _do_detect(
        self,
        function: Function,
        start: Optional[Instruction],
        include_start: bool,
        ctrl_dep: bool,
        inherited_branches: Tuple[Br, ...],
        depth: int,
    ) -> bool:
        """Walk ``function`` forward from ``start``; True if a corrupted
        value can flow out through a return."""
        work = _FrameWork(function, ctrl_dep, inherited_branches)
        cfg = cfg_for(function)
        instructions = self._succeeding_instructions(function, start, include_start)
        returned_corrupted = False
        for instruction in instructions:
            if self._budget <= 0:
                self.budget_exhausted = True
                break
            self._budget -= 1
            ctrl_dep_flag = False
            if self.options.track_control_flow:
                for branch in work.local_corrupted_branches:
                    if cfg.is_control_dependent(instruction, branch):
                        ctrl_dep_flag = True
                        break
            in_ctrl_context = work.ctrl_dep or ctrl_dep_flag
            if in_ctrl_context and self.options.track_control_flow:
                # In a corrupted-control region a function-pointer dereference
                # is itself a deref site even without data corruption: paper
                # Figure 6's db->Write(...) "is a function pointer dereference
                # [...] control dependent on the corrupted branch on line 359".
                deref = self._pointer_corrupted(instruction) or (
                    isinstance(instruction, Call) and instruction.is_indirect
                )
                site_type = self.registry.site_type(instruction, deref)
                if site_type is None and self._is_pointer_assignment(instruction):
                    # A pointer assignment under corrupted control is a site:
                    # the Apache-46215 report says "a pointer assignment could
                    # be control dependent on the corrupted branch of line
                    # 1192" (mycandidate = worker at line 1195).
                    site_type = VulnSiteType.NULL_PTR_DEREF
                if site_type is not None:
                    self._report_exploit(
                        instruction, site_type, DependenceKind.CTRL_DEP, work, cfg,
                    )
            if isinstance(instruction, Call):
                returned_corrupted |= self._handle_call(
                    instruction, work, in_ctrl_context, depth, cfg,
                )
            else:
                corrupted_operand = any(
                    operand in self.corrupted for operand in instruction.operands
                )
                if not corrupted_operand and isinstance(instruction, Load):
                    corrupted_operand = self._spilled_corruption(instruction)
                if corrupted_operand:
                    site_type = self.registry.site_type(
                        instruction, self._pointer_corrupted(instruction),
                    )
                    if site_type is not None:
                        self._report_exploit(
                            instruction, site_type, DependenceKind.DATA_DEP, work, cfg,
                        )
                    self.corrupted.add(instruction)
                    if (
                        isinstance(instruction, Br)
                        and instruction.is_conditional
                        and instruction.condition in self.corrupted
                    ):
                        work.local_corrupted_branches.append(instruction)
                if isinstance(instruction, Ret):
                    if instruction.value is not None and (
                        instruction.value in self.corrupted
                    ):
                        returned_corrupted = True
                    elif in_ctrl_context:
                        # A return reached only under corrupted control also
                        # taints the caller's view of the result (Libsafe's
                        # "return 0" bypass).
                        returned_corrupted = True
        return returned_corrupted

    def _handle_call(self, instruction: Call, work: _FrameWork,
                     in_ctrl_context: bool, depth: int, cfg) -> bool:
        corrupted_args = [
            index for index, argument in enumerate(instruction.operands)
            if argument in self.corrupted
        ]
        callee = instruction.callee
        callee_pointer_corrupted = (
            instruction.is_indirect and callee in self.corrupted
        )
        if corrupted_args or callee_pointer_corrupted:
            self.corrupted.add(instruction)
            site_type = self.registry.site_type(instruction, callee_pointer_corrupted)
            if site_type is not None:
                self._report_exploit(
                    instruction, site_type, DependenceKind.DATA_DEP, work, cfg,
                )
        returned_corrupted = False
        if (
            self.options.interprocedural
            and isinstance(callee, Function)
            and callee.is_internal()
            and depth < self.options.max_call_depth
        ):
            signature = (callee.name, tuple(corrupted_args), in_ctrl_context)
            if signature not in self._visited_callees:
                self._visited_callees.add(signature)
                for index in corrupted_args:
                    if index < len(callee.arguments):
                        self.corrupted.add(callee.arguments[index])
                callee_returned = self._do_detect(
                    callee, None, include_start=True,
                    ctrl_dep=in_ctrl_context,
                    inherited_branches=work.inherited_branches
                    + tuple(work.local_corrupted_branches),
                    depth=depth + 1,
                )
                if callee_returned:
                    self.corrupted.add(instruction)
                    returned_corrupted = False  # flows into *this* function
        return returned_corrupted

    # ------------------------------------------------------------------
    # helpers

    def _succeeding_instructions(
        self, function: Function, start: Optional[Instruction], include_start: bool,
    ) -> List[Instruction]:
        from repro.analysis.depgraph import instructions_after

        if start is None or start.function is not function:
            return list(function.instructions())
        following = instructions_after(start)
        if include_start:
            return [start] + following
        return following

    @staticmethod
    def _is_pointer_assignment(instruction: Instruction) -> bool:
        from repro.ir.types import PointerType

        return isinstance(instruction, Store) and isinstance(
            instruction.value.type, PointerType,
        )

    def _pointer_corrupted(self, instruction: Instruction) -> bool:
        pointer = self.registry.pointer_operand(instruction)
        return pointer is not None and pointer in self.corrupted

    def _spilled_corruption(self, load: Load) -> bool:
        """clang -O0 must-alias rule: load from a pointer some corrupted
        store wrote through (same SSA pointer value)."""
        pointer = load.pointer
        for value in self.corrupted:
            if (
                isinstance(value, Store)
                and value.pointer is pointer
                and value.value in self.corrupted
            ):
                return True
        return False

    def _report_exploit(self, instruction: Instruction, site_type: VulnSiteType,
                        kind: DependenceKind, work: _FrameWork, cfg) -> None:
        """ReportExploit(i, type): report once per (site, type)."""
        key = (instruction.uid or 0, kind.value)
        if key in self.reports:
            return
        controlling = [
            branch for branch in work.local_corrupted_branches
            if cfg.is_control_dependent(instruction, branch)
        ]
        branches = list(work.inherited_branches) + (
            controlling or work.local_corrupted_branches
        )
        self.reports[key] = VulnerabilityReport(
            instruction, site_type, kind, branches,
            self._start, self._start_stack, source=self._source,
        )

    # ------------------------------------------------------------------
    # whole-program ablation

    def _explore_all_callers(self, frames) -> None:
        """Undirected mode: walk every static caller, not the actual stack."""
        seen: Set[str] = {function.name for function, _ in frames}
        worklist = [function.name for function, _ in frames]
        while worklist:
            current = worklist.pop()
            for caller_name in self.call_graph.callers_of(current):
                if caller_name in seen:
                    continue
                seen.add(caller_name)
                caller = self.module.functions.get(caller_name)
                if caller is None:
                    continue
                for site in self.call_graph.sites_calling(current):
                    if site.function is caller:
                        self.corrupted.add(site)
                self._do_detect(caller, None, include_start=True, ctrl_dep=False,
                                inherited_branches=(), depth=0)
                worklist.append(caller_name)
