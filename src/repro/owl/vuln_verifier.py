"""The dynamic vulnerability verifier (paper section 6.2).

It takes the static analyzer's output — the vulnerable site and the
associated (corrupted) branches — re-runs the program, and reports whether
the site can be reached and the attack realized.  If the site is not
reached, it reports the *diverged branches* as further input hints.

Per section 4.3, "our vulnerability verifier requires user intervention to
decide the execution order of the racing instructions and input tuning" —
here the "user" is the caller supplying a racing order (which racing side
should fire first) and concrete program inputs; exploit drivers in
``repro.exploits`` play that role.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.detectors.report import RaceReport
from repro.ir.instructions import Br
from repro.ir.module import Module
from repro.owl.vuln_analysis import VulnerabilityReport
from repro.owl.vuln_sites import VulnSiteType
from repro.runtime.debugger import Debugger
from repro.runtime.errors import FaultKind
from repro.runtime.interpreter import VM, ExecutionResult
from repro.runtime.scheduler import RandomScheduler
from repro.runtime.spans import SpanTracer, maybe_span

#: fault kinds that realize each vulnerable site type at runtime
_FAULTS_FOR_SITE = {
    VulnSiteType.MEMORY_OP: {
        FaultKind.BUFFER_OVERFLOW, FaultKind.FIELD_OVERFLOW, FaultKind.STACK_SMASH,
    },
    VulnSiteType.NULL_PTR_DEREF: {
        FaultKind.NULL_DEREF, FaultKind.USE_AFTER_FREE, FaultKind.WILD_ACCESS,
    },
}


class VulnVerification:
    """Outcome of verifying one vulnerability report."""

    def __init__(
        self,
        vulnerability: VulnerabilityReport,
        site_reached: bool,
        attack_realized: bool,
        diverged_branches: Sequence[Br] = (),
        fault_kinds: Sequence[FaultKind] = (),
        runs_used: int = 0,
    ):
        self.vulnerability = vulnerability
        self.site_reached = site_reached
        self.attack_realized = attack_realized
        self.diverged_branches = list(diverged_branches)
        self.fault_kinds = list(fault_kinds)
        self.runs_used = runs_used

    def describe(self) -> str:
        if self.attack_realized:
            return "attack REALIZED at %s (%s)" % (
                self.vulnerability.site.location,
                ", ".join(k.value for k in self.fault_kinds) or "predicate",
            )
        if self.site_reached:
            return "site reached at %s but attack not observed" % (
                self.vulnerability.site.location,
            )
        diverged = ", ".join(str(b.location) for b in self.diverged_branches)
        return "site not reached; diverged branches: %s" % (diverged or "none")

    def __repr__(self) -> str:
        return "<VulnVerification %s>" % self.describe()


class DynamicVulnerabilityVerifier:
    """Drives re-executions toward the vulnerable site."""

    def __init__(
        self,
        module: Module,
        entry: str = "main",
        inputs: Optional[Dict] = None,
        seeds: Sequence[int] = range(8),
        max_steps: int = 200_000,
        vm_factory: Optional[Callable[[int], VM]] = None,
        attack_predicate: Optional[Callable[[VM], bool]] = None,
        racing_order: Optional[Tuple[str, str]] = None,
        tracer: Optional[SpanTracer] = None,
    ):
        self.module = module
        self.entry = entry
        self.inputs = inputs
        self.seeds = list(seeds)
        self.max_steps = max_steps
        self.vm_factory = vm_factory
        self.attack_predicate = attack_predicate
        #: ("write-first" | "read-first", applied when a source race exists)
        self.racing_order = racing_order
        self.tracer = tracer

    # ------------------------------------------------------------------

    def verify(self, vulnerability: VulnerabilityReport) -> VulnVerification:
        with maybe_span(self.tracer, "verify_vulnerability",
                        site=str(vulnerability.site.location),
                        site_type=vulnerability.site_type.value) as span:
            verification = self._verify(vulnerability)
            if span is not None:
                span.attrs.update(
                    site_reached=verification.site_reached,
                    attack_realized=verification.attack_realized,
                    runs_used=verification.runs_used,
                )
        return verification

    def _verify(self, vulnerability: VulnerabilityReport) -> VulnVerification:
        best: Optional[VulnVerification] = None
        for attempt, seed in enumerate(self.seeds, start=1):
            with maybe_span(self.tracer, "vuln_attempt",
                            seed=seed, attempt=attempt) as span:
                outcome = self._one_run(vulnerability, seed, attempt)
                if span is not None:
                    span.attrs.update(site_reached=outcome.site_reached,
                                      attack_realized=outcome.attack_realized)
            if outcome.attack_realized:
                return outcome
            if best is None or (outcome.site_reached and not best.site_reached):
                best = outcome
        return best if best is not None else VulnVerification(
            vulnerability, False, False, runs_used=len(self.seeds),
        )

    # ------------------------------------------------------------------

    def _one_run(self, vulnerability: VulnerabilityReport, seed: int,
                 attempt: int) -> VulnVerification:
        vm = self._make_vm(seed)
        debugger = Debugger(vm)
        site_breakpoint = debugger.add_breakpoint(vulnerability.site)
        branch_breakpoints = {
            debugger.add_breakpoint(branch): branch
            for branch in vulnerability.branches
        }
        race_control = self._setup_race_order(vm, debugger, vulnerability)
        vm.start(self.entry)
        site_reached = False
        branch_outcomes: Dict[Br, List[bool]] = {}
        max_events = 10_000
        while max_events > 0:
            max_events -= 1
            result = vm.run()
            if result.reason != ExecutionResult.BREAKPOINT:
                break
            resumed_any = False
            held: List = []
            for thread in debugger.halted_threads():
                instruction = thread.current_instruction()
                if instruction is vulnerability.site:
                    site_reached = True
                for breakpoint, branch in branch_breakpoints.items():
                    if instruction is branch and thread.frames:
                        taken = bool(vm.evaluate(thread.top, branch.condition))
                        branch_outcomes.setdefault(branch, []).append(taken)
                if race_control is not None and not race_control.done:
                    if race_control.handle(thread):
                        held.append(thread)
                        continue
                debugger.resume(thread, step_past=True)
                resumed_any = True
            if not resumed_any and not vm.runnable_threads():
                # Enforcement wedged the schedule: give up holding one thread
                # (the paper's manual "input tuning / order decision" step may
                # likewise fail to impose an order on a given run).
                if held:
                    debugger.resume(held[0], step_past=True)
                elif debugger.release_one() is None:
                    break
        realized = self._attack_realized(vm, vulnerability)
        diverged = [
            branch for branch, outcomes in branch_outcomes.items()
            if not site_reached and outcomes
        ]
        faults = sorted({f.kind for f in vm.faults}, key=lambda k: k.value)
        return VulnVerification(
            vulnerability, site_reached, realized, diverged, faults, attempt,
        )

    def _make_vm(self, seed: int) -> VM:
        if self.vm_factory is not None:
            return self.vm_factory(seed)
        return VM(self.module, scheduler=RandomScheduler(seed), inputs=self.inputs,
                  max_steps=self.max_steps, seed=seed)

    def _setup_race_order(self, vm: VM, debugger: Debugger,
                          vulnerability: VulnerabilityReport):
        source = vulnerability.source
        if source is None or self.racing_order is None:
            return None
        return _RaceOrderControl(debugger, source, self.racing_order)

    def _attack_realized(self, vm: VM, vulnerability: VulnerabilityReport) -> bool:
        if self.attack_predicate is not None:
            return self.attack_predicate(vm)
        expected = _FAULTS_FOR_SITE.get(vulnerability.site_type, set())
        if any(fault.kind in expected for fault in vm.faults):
            return True
        if vulnerability.site_type is VulnSiteType.PRIVILEGE_OP:
            return vm.world.euid == 0 or bool(vm.world.privilege_log)
        if vulnerability.site_type is VulnSiteType.FORK_OP:
            return vm.world.got_root_shell() or bool(vm.world.exec_log)
        return False


class _RaceOrderControl:
    """Enforce which racing side fires first, via the race breakpoints.

    "read-first" holds the writer until the reader has fired (and vice
    versa) — the schedule steering the paper attributes to user intervention.
    """

    def __init__(self, debugger: Debugger, race: RaceReport, order: Tuple[str, str]):
        self.debugger = debugger
        self.order = order[0] if isinstance(order, tuple) else order
        write = race.write_access()
        read = race.read_access()
        others = [a for a in race.accesses() if a is not write]
        self.write_instruction = write.instruction if write else None
        self.read_instruction = (
            read.instruction if read else (others[0].instruction if others else None)
        )
        self.first_fired = False
        self.done = False
        for access in race.accesses():
            debugger.add_breakpoint(access.instruction)

    def handle(self, thread) -> bool:
        """Returns True when the thread should stay halted (held back)."""
        instruction = thread.current_instruction()
        first = (
            self.write_instruction if self.order == "write-first"
            else self.read_instruction
        )
        second = (
            self.read_instruction if self.order == "write-first"
            else self.write_instruction
        )
        if instruction is first:
            self.first_fired = True
            self.debugger.resume(thread, step_past=True)
            return False
        if instruction is second:
            if not self.first_fired:
                return True  # hold until the other side fires
            self.done = True
            self.debugger.resume(thread, step_past=True)
            return False
        return False
