"""Oracle-verified automated race repair — the back half of ``owl fix``.

OWL's pipeline ends with *verified* races and realized attacks; this module
closes the detect→fix loop in the style of RaceFixer: for each verified
race it clones the module (:func:`repro.ir.patch.clone_module` — uids
preserved, so the race's static key still addresses the clone), synthesizes
candidate IR-level patches, and emits a candidate only after **three
independent gates** all pass:

(a) **diffcheck oracle** — behaviour-set inclusion.  A synchronization
    patch can only *restrict* the set of interleavings, never add one, so
    every observable behaviour of the patched module (OS world files,
    exec/privilege logs, stdout, exit code, faults, termination reason —
    projected over a serialized run plus the detect-seed sweep) must be a
    behaviour the unpatched module already exhibits over the same
    schedules.  A pairwise per-seed comparison is too strong here: lock
    acquisition order legitimately permutes schedule-dependent output
    (e.g. which log message lands first), and for programs whose threads
    block mid-critical-section even the serialized baseline overlaps the
    racy region.
(b) **detector re-run** — the spec's front-end detector (tsan or ski) over
    the full detect-seed sweep no longer reports the targeted static pair,
    (for tsan specs) the predictive detector does not predict it from a
    recorded trace of the patched module either, and no attack the
    pipeline realized on the repaired variable can still be driven against
    the patched module by the dynamic vulnerability verifier.  The attack
    leg is what rejects patches that merely *silence* the detector:
    promoting the racy pair to atomic accesses makes every detector go
    quiet yet constrains no interleaving, and the verifier still drives
    the exploit straight through the unchanged window.
(c) **scheduler sweep** — round-robin, random and PCT schedules all
    terminate normally: no new deadlock or livelock, step counts bounded
    by the spec budget.

Three candidate strategies, tried in deterministic order per target:

- ``mutex``   — region locking on a fresh per-target lock word: every
  function containing one of the variable's racy accesses takes the lock
  on entry and releases it before each return, making the whole
  check-to-use window one critical section (the shape of the
  ``apps/*_fixed`` ground truth).  Helper functions reached only through
  an already-locked caller are left unlocked — locking both would
  self-deadlock on the non-reentrant stdlib mutex.
- ``order``   — force one access before the other through the stdlib
  condvar primitives (``cond_broadcast`` after the first access,
  ``cond_wait`` before the second).  Ordering is wrong for most verified
  races — a waiter that arrives after the broadcast sleeps forever — and
  gate (c) rejects such candidates; the strategy exists for races whose
  fix really is an ordering, and the gates decide.
- ``realsync`` — adhoc-sync → real-sync rewrite: when the pair carries an
  :class:`repro.detectors.annotations.AdhocSyncAnnotation`, promote the
  flag's write and read to atomic accesses, so detectors need no
  annotation to see the synchronization.

Everything here is deterministic (no wall clock, no unseeded randomness),
runs serially regardless of the pipeline's ``jobs``, and orders targets by
static key — the schema-9 ``repair`` metrics block is bit-identical at
``jobs=1`` vs ``jobs=N``.  Patched modules hash to different
:func:`repro.owl.cache.module_digest` values than their originals, so gate
results cached under a ``repair`` stage can never collide with the
unpatched module's detector entries.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from typing import Dict, List, Optional, Sequence, Tuple

from repro.runtime import externals

from repro.ir.instructions import (
    AtomicRMW, Call, Cast, Instruction, Load, Ret, Store)
from repro.ir.module import Module
from repro.ir.patch import ModulePatcher, clone_module, ir_diff
from repro.ir.types import I64, I8, PointerType
from repro.ir.verifier import verify_module
from repro.owl.cache import module_digest
from repro.runtime.interpreter import VM, ExecutionResult
from repro.runtime.scheduler import (
    PCTScheduler,
    RandomScheduler,
    RoundRobinScheduler,
)
from repro.runtime.telemetry import MetricsRegistry

#: strategy order per target; first candidate passing all gates is emitted
STRATEGIES = ("mutex", "order", "realsync")

#: termination reasons gate (c) accepts
_CLEAN_REASONS = (ExecutionResult.FINISHED, ExecutionResult.EXITED)


# ---------------------------------------------------------------------------
# execution + behavioural projection


def _run_vm(spec, module: Module, scheduler, seed: int,
            inputs: Optional[Dict] = None) -> Tuple[VM, object]:
    vm = VM(
        module,
        scheduler=scheduler,
        world=spec.initial_world() if spec.initial_world is not None else None,
        inputs=spec.workload_inputs if inputs is None else inputs,
        max_steps=spec.max_steps,
        seed=seed,
    )
    vm.start(spec.entry)
    result = vm.run()
    return vm, result


def behaviour_projection(spec, module: Module, scheduler, seed: int) -> Dict:
    """Everything the OS world can observe about one execution.

    Deliberately excludes step counts, addresses and interleaving detail:
    a patch adds instructions and shifts all of those without changing
    what the program *does*.  Faults are projected as sorted kinds — their
    presence is observable, their interleaved order is not.
    """
    vm, result = _run_vm(spec, module, scheduler, seed)
    world = vm.world
    return {
        "reason": result.reason,
        "exit_code": result.exit_code,
        "process_killed": world.process_killed,
        "stdout": bytes(world.stdout).hex(),
        "files": sorted(
            (path, bytes(handle.content).hex())
            for path, handle in world.files_by_path.items()
        ),
        "exec_log": [(record.kind, record.command, record.uid, record.euid)
                     for record in world.exec_log],
        "privilege_log": [(record.kind, record.target)
                          for record in world.privilege_log],
        "faults": sorted(fault.kind.value for fault in vm.faults),
    }


def _serial_scheduler(spec) -> RoundRobinScheduler:
    # Quantum ≥ the step budget: each thread runs until it blocks, so the
    # schedule is insensitive to patch-inserted instructions.
    return RoundRobinScheduler(quantum=spec.max_steps)


# ---------------------------------------------------------------------------
# gates


def _projection_key(projection: Dict) -> str:
    return json.dumps(projection, sort_keys=True)


@contextmanager
def _delays_neutralized():
    """Make ``io_delay``/``usleep`` no-ops for the serialized reference.

    Timing externals exist to stretch race windows: they force every
    work-conserving scheduler to run the *other* threads through the
    window, so the race-free serialized behaviour is unreachable in a
    normal sweep.  With delays gone, a run-to-block schedule executes each
    thread's critical path without interference — the legal behaviours an
    idling scheduler could have produced all along.
    """

    def _no_sleep(vm, thread, call, args):
        return None

    with externals.overridden("io_delay", _no_sleep):
        with externals.overridden("usleep", _no_sleep):
            yield


def _behaviour_set(spec, module: Module, seeds: Sequence[int]) -> Dict[str, str]:
    """Distinct observable behaviours over a serialized run + a seed sweep,
    keyed by canonical JSON, valued by the first schedule exhibiting each."""
    behaviours: Dict[str, str] = {}
    serial = behaviour_projection(spec, module, _serial_scheduler(spec), 0)
    behaviours[_projection_key(serial)] = "serial"
    for seed in seeds:
        projection = behaviour_projection(
            spec, module, RandomScheduler(seed), seed)
        behaviours.setdefault(_projection_key(projection), "seed=%d" % seed)
    return behaviours


def _reference_behaviours(spec, module: Module,
                          seeds: Sequence[int]) -> Dict[str, str]:
    """Race-free serializations of ``module`` over many thread orders.

    Delays are neutralized so each run-to-block schedule executes whole
    critical paths without interference, and a depth-1 PCT schedule (random
    thread priorities, no change points) serializes the threads in a
    seed-dependent *order* — together they enumerate the behaviours an
    idling scheduler could produce, e.g. "worker 2's log entry lands first"
    as well as "worker 1's does".
    """
    behaviours: Dict[str, str] = {}
    with _delays_neutralized():
        serial = behaviour_projection(spec, module, _serial_scheduler(spec), 0)
        behaviours[_projection_key(serial)] = "delay-free serial"
        for seed in seeds:
            projection = behaviour_projection(
                spec, module,
                PCTScheduler(seed=seed, depth=1,
                             expected_steps=spec.max_steps),
                seed)
            behaviours.setdefault(_projection_key(projection),
                                  "delay-free order seed=%d" % seed)
    return behaviours


def gate_oracle(spec, original: Module, patched: Module,
                seeds: Optional[Sequence[int]] = None) -> Dict:
    """Gate (a): behaviour-set inclusion, patched ⊆ unpatched.

    The unpatched set is collected over a wider sweep (the patched seeds
    plus a deterministic margin): a patch reshuffles which *seed* maps to
    which interleaving, so the allowed set must be sampled generously
    enough that a legitimate pre-existing behaviour is not misread as
    novel.  It additionally includes a delay-neutralized sweep of the
    unpatched module (see :func:`_delays_neutralized`): the serialized,
    race-free behaviour a correct patch enforces is often unreachable by
    any work-conserving schedule of the original, yet it is precisely the
    behaviour the patch must be allowed to produce.  Any behaviour only
    the patched module exhibits — new fault kinds, changed files, a
    deadlock reason — fails the gate.
    """
    seeds = list(spec.detect_seeds if seeds is None else seeds)
    margin = ([max(seeds) + 1 + i for i in range(8)]
              if seeds else list(range(8)))
    allowed = _behaviour_set(spec, original, seeds + margin)
    for key, label in _reference_behaviours(spec, original,
                                            seeds + margin).items():
        allowed.setdefault(key, label)
    observed = _behaviour_set(spec, patched, seeds)
    novel = sorted(label for key, label in observed.items()
                   if key not in allowed)
    return {
        "passed": not novel,
        "unpatched_behaviours": len(allowed),
        "patched_behaviours": len(observed),
        "novel_behaviours": novel,
        "seeds_checked": len(seeds) + 1,
    }


def _front_detector_reports(spec, module: Module):
    if spec.detector == "ski":
        from repro.detectors.ski import run_ski

        reports, _ = run_ski(
            module,
            entry=spec.entry,
            inputs=spec.workload_inputs,
            seeds=spec.detect_seeds,
            max_steps=spec.max_steps,
        )
        return reports
    from repro.detectors.tsan import run_tsan

    reports, _ = run_tsan(
        module,
        entry=spec.entry,
        inputs=spec.workload_inputs,
        seeds=spec.detect_seeds,
        max_steps=spec.max_steps,
    )
    return reports


def gate_detector(spec, patched: Module, static_key: Tuple[int, int],
                  variable: Optional[str] = None,
                  attack_probes: Optional[Sequence[Tuple[Dict, object]]] = None
                  ) -> Dict:
    """Gate (b): the targeted pair is gone from detect *and* predict, and
    no attack the pipeline realized on this variable still realizes.

    Runs without annotations on purpose: a repair (realsync in
    particular) must stand on its own synchronization, not on an adhoc
    annotation silencing the report.  ``attack_probes`` are
    ``(vulnerability_payload, ground_truth)`` pairs for attacks the
    pipeline *realized* on the unpatched module; each is re-driven against
    the patched clone with the full
    :class:`repro.owl.vuln_verifier.DynamicVulnerabilityVerifier` —
    subtle inputs, racing-order enforcement, breakpoint steering — and
    must no longer realize.  A plain seed sweep is too weak here: a patch
    that promotes the racy pair to atomic accesses silences every
    detector without constraining the interleaving, random schedules
    almost never thread the narrow window on their own, and only the
    order-enforcing verifier reliably drives the exploit — exactly that
    class of patch must die on this leg.
    """
    reports = _front_detector_reports(spec, patched)
    reported = any(report.static_key == static_key for report in reports)
    predicted = False
    predict_ran = False
    if spec.detector == "tsan":
        from repro.detectors.predict import predict_from_log
        from repro.runtime.record import record_seed

        seed = next(iter(spec.detect_seeds), 0)
        log, _result, _ = record_seed(
            patched,
            seed,
            entry=spec.entry,
            inputs=spec.workload_inputs,
            max_steps=spec.max_steps,
            scheduler=RandomScheduler(seed),
            scheduler_label="random",
            world=(spec.initial_world()
                   if spec.initial_world is not None else None),
            program=spec.name,
        )
        prediction = predict_from_log(
            patched, log, inputs=spec.workload_inputs,
            world_factory=spec.initial_world,
        )
        predicted = static_key in prediction.predicted_keys
        predict_ran = True
    probes = [(payload, truth) for payload, truth in (attack_probes or [])
              if variable is not None and truth.racy_variable == variable]
    attacks_realized = []
    for payload, truth in probes:
        if _drive_attack(spec, patched, payload, truth):
            attacks_realized.append(truth.attack_id)
    return {
        "passed": not reported and not predicted and not attacks_realized,
        "pair_reported": reported,
        "pair_predicted": predicted,
        "predict_ran": predict_ran,
        "reports_total": len(reports),
        "attacks_checked": len(probes),
        "attacks_realized": attacks_realized,
    }


def _drive_attack(spec, patched: Module, payload: Dict, truth) -> bool:
    """Re-run one realized attack against the patched module.

    ``clone_module`` preserves uids, so the vulnerability payload recorded
    against the original resolves on the clone — same site, same branches,
    same source race — and the verifier steers the patched execution with
    everything it has (racing-order breakpoints over the verify seeds).
    Returns whether the attack still realized.
    """
    from repro.owl.batch import vuln_from_payload
    from repro.owl.vuln_verifier import DynamicVulnerabilityVerifier

    vulnerability = vuln_from_payload(patched, payload)

    def factory(seed: int, _inputs=truth.subtle_inputs) -> VM:
        return VM(
            patched,
            scheduler=RandomScheduler(seed),
            world=(spec.initial_world()
                   if spec.initial_world is not None else None),
            inputs=_inputs,
            max_steps=spec.max_steps,
            seed=seed,
        )

    verifier = DynamicVulnerabilityVerifier(
        patched, entry=spec.entry, inputs=truth.subtle_inputs,
        seeds=spec.verify_seeds, max_steps=spec.max_steps,
        vm_factory=factory,
        attack_predicate=truth.predicate,
        racing_order=(truth.racing_order, ""),
    )
    return verifier.verify(vulnerability).attack_realized


def gate_schedulers(spec, patched: Module,
                    seeds: Sequence[int] = range(3)) -> Dict:
    """Gate (c): no deadlock/livelock under any scheduler family."""
    runs = []
    sweep = [("round_robin", RoundRobinScheduler(), 0)]
    for seed in seeds:
        sweep.append(("random", RandomScheduler(seed), seed))
        sweep.append(("pct", PCTScheduler(seed=seed), seed))
    for label, scheduler, seed in sweep:
        _, result = _run_vm(spec, patched, scheduler, seed)
        runs.append({
            "scheduler": label,
            "seed": seed,
            "reason": result.reason,
            "steps": result.steps,
        })
    bad = [run for run in runs if run["reason"] not in _CLEAN_REASONS]
    return {
        "passed": not bad,
        "runs": runs,
        "violations": [
            "%s seed=%d: %s" % (run["scheduler"], run["seed"], run["reason"])
            for run in bad
        ],
    }


# ---------------------------------------------------------------------------
# candidate synthesis


def _lock_name(static_key: Tuple[int, int], suffix: str = "lock") -> str:
    return "__owl_fix_%s_%d_%d" % (suffix, static_key[0], static_key[1])


def _as_i8_pointer(patcher: ModulePatcher, anchor: Instruction,
                   variable, before: bool) -> Cast:
    cast = Cast("bitcast", variable, PointerType(I8))
    if before:
        patcher.insert_before(anchor, cast)
    else:
        patcher.insert_after(anchor, cast)
    return cast


def synthesize_mutex(module: Module, static_key: Tuple[int, int],
                     access_uids: Optional[Sequence[int]] = None
                     ) -> Optional[ModulePatcher]:
    """Region-lock every function touching the racy variable.

    ``access_uids`` is the union of the variable's verified racy access
    uids (all reports sharing the target's variable); it defaults to the
    target pair alone.  Each containing function takes one fresh lock word
    on entry and releases it before every return, so the entire
    check-to-use window becomes a single critical section — a per-access
    lock/unlock pair would remove the data race yet leave the atomicity
    violation (and the attack) intact.  A containing function that is
    itself called from another containing function is left unlocked: its
    racy path already runs under the caller's lock, and taking the
    non-reentrant stdlib mutex twice would self-deadlock (gate (c) exists
    to catch exactly that, but there is no reason to synthesize it).
    """
    uids = sorted(set(access_uids if access_uids else static_key))
    accesses = [module.instruction_by_uid(uid) for uid in uids]
    if not all(isinstance(a, (Load, Store, AtomicRMW)) for a in accesses):
        return None
    functions = []
    for access in accesses:
        function = access.block.function
        if function not in functions:
            functions.append(function)
    called_within = set()
    for function in functions:
        for instruction in function.instructions():
            if (isinstance(instruction, Call)
                    and instruction.callee in functions
                    and instruction.callee is not function):
                called_within.add(instruction.callee.name)
    to_lock = [function for function in functions
               if function.name not in called_within]
    patcher = ModulePatcher(module)
    lock = patcher.add_global(_lock_name(static_key), I64, 0)
    lock_fn = patcher.ensure_external("mutex_lock")
    unlock_fn = patcher.ensure_external("mutex_unlock")
    for function in to_lock:
        first = function.first_instruction()
        entry_ptr = _as_i8_pointer(patcher, first, lock, before=True)
        patcher.insert_before(first, Call(lock_fn, [entry_ptr]))
        returns = [instruction for instruction in function.instructions()
                   if isinstance(instruction, Ret)]
        for ret in returns:
            exit_ptr = _as_i8_pointer(patcher, ret, lock, before=True)
            patcher.insert_before(ret, Call(unlock_fn, [exit_ptr]))
    return patcher


def synthesize_order(module: Module, static_key: Tuple[int, int]
                     ) -> Optional[ModulePatcher]:
    """Order the pair through the condvar primitives: the lower-uid access
    broadcasts after it runs; the other waits first.

    A deliberately optimistic candidate — if the broadcast can run before
    the waiter parks (the common case for verified races, which have no
    inherent order), the waiter sleeps forever and gate (c) rejects the
    candidate with a deadlock verdict.
    """
    first_uid, second_uid = min(static_key), max(static_key)
    if first_uid == second_uid:
        return None  # one instruction racing with itself has no order
    first = module.instruction_by_uid(first_uid)
    second = module.instruction_by_uid(second_uid)
    if not all(isinstance(a, (Load, Store, AtomicRMW))
               for a in (first, second)):
        return None
    patcher = ModulePatcher(module)
    cond = patcher.add_global(_lock_name(static_key, "cond"), I64, 0)
    lock = patcher.add_global(_lock_name(static_key, "condlock"), I64, 0)
    lock_fn = patcher.ensure_external("mutex_lock")
    unlock_fn = patcher.ensure_external("mutex_unlock")
    wait_fn = patcher.ensure_external("cond_wait")
    broadcast_fn = patcher.ensure_external("cond_broadcast")
    # first access, then: lock; broadcast; unlock
    cond_out = _as_i8_pointer(patcher, first, cond, before=False)
    lock_out = _as_i8_pointer(patcher, cond_out, lock, before=False)
    patcher.insert_after(lock_out, Call(lock_fn, [lock_out]))
    broadcast = patcher.insert_after(lock_out, Call(broadcast_fn, [cond_out]))
    patcher.insert_after(broadcast, Call(unlock_fn, [lock_out]))
    # before second access: lock; wait; unlock
    cond_in = _as_i8_pointer(patcher, second, cond, before=True)
    lock_in = _as_i8_pointer(patcher, second, lock, before=True)
    patcher.insert_before(second, Call(lock_fn, [lock_in]))
    patcher.insert_before(second, Call(wait_fn, [cond_in, lock_in]))
    patcher.insert_before(second, Call(unlock_fn, [lock_in]))
    return patcher


def synthesize_realsync(module: Module, static_key: Tuple[int, int],
                        annotations) -> Optional[ModulePatcher]:
    """Adhoc-sync → real sync: promote the annotated flag accesses to
    atomic, so the synchronization is visible without any annotation."""
    if annotations is None:
        return None
    match = None
    for annotation in annotations:
        if tuple(sorted(annotation.static_key)) == tuple(sorted(static_key)):
            match = annotation
            break
    if match is None:
        return None
    read = module.instruction_by_uid(match.read_instruction.uid)
    write = module.instruction_by_uid(match.write_instruction.uid)
    if not all(isinstance(a, (Load, Store)) for a in (read, write)):
        return None
    patcher = ModulePatcher(module)
    patcher.set_atomic(write, True)
    patcher.set_atomic(read, True)
    return patcher


def synthesize(strategy: str, module: Module, static_key: Tuple[int, int],
               annotations=None,
               access_uids: Optional[Sequence[int]] = None
               ) -> Optional[ModulePatcher]:
    if strategy == "mutex":
        return synthesize_mutex(module, static_key, access_uids=access_uids)
    if strategy == "order":
        return synthesize_order(module, static_key)
    if strategy == "realsync":
        return synthesize_realsync(module, static_key, annotations)
    raise ValueError("unknown repair strategy %r" % strategy)


# ---------------------------------------------------------------------------
# per-target driving


class CandidateOutcome:
    """One strategy's attempt on one target."""

    def __init__(self, strategy: str):
        self.strategy = strategy
        self.applicable = False
        self.gates: Dict[str, Dict] = {}
        self.passed = False
        self.ops: List[str] = []
        self.diff: List[str] = []
        self.patched_digest: Optional[str] = None
        self.cached = False

    def as_dict(self) -> Dict:
        return {
            "strategy": self.strategy,
            "applicable": self.applicable,
            "passed": self.passed,
            "gates": {
                name: {key: value for key, value in outcome.items()
                       if key != "runs"}
                for name, outcome in self.gates.items()
            },
        }


class TargetOutcome:
    """Everything repair did for one verified race."""

    def __init__(self, report):
        self.report = report
        self.static_key = report.static_key
        self.uid = report.uid
        self.variable = report.variable
        self.attempts: List[CandidateOutcome] = []
        self.emitted: Optional[CandidateOutcome] = None
        self.ground_truth_race_gone: Optional[bool] = None

    @property
    def repaired(self) -> bool:
        return self.emitted is not None

    def patch_payload(self, program: str) -> Optional[Dict]:
        """The emitted patch + evidence artifact (JSON-serializable)."""
        if self.emitted is None:
            return None
        return {
            "program": program,
            "target": {
                "uid": self.uid,
                "static_key": list(self.static_key),
                "variable": self.variable,
                "locations": [str(self.report.first.location),
                              str(self.report.second.location)],
            },
            "strategy": self.emitted.strategy,
            "ops": list(self.emitted.ops),
            "ir_diff": list(self.emitted.diff),
            "gates": self.emitted.gates,
            "patched_digest": self.emitted.patched_digest,
            "ground_truth_race_gone": self.ground_truth_race_gone,
        }

    def as_dict(self) -> Dict:
        return {
            "uid": self.uid,
            "static_key": list(self.static_key),
            "variable": self.variable,
            "repaired": self.repaired,
            "strategy": self.emitted.strategy if self.emitted else None,
            "attempts": [attempt.as_dict() for attempt in self.attempts],
            "ground_truth_race_gone": self.ground_truth_race_gone,
        }


class RepairResult:
    """Outcome of one ``repair_program`` run."""

    def __init__(self, program: str):
        self.program = program
        self.targets: List[TargetOutcome] = []
        self.registry = MetricsRegistry()
        self.ground_truth_spec: Optional[str] = None
        self.original_digest: Optional[str] = None

    @property
    def emitted(self) -> List[TargetOutcome]:
        return [target for target in self.targets if target.repaired]

    def patch_payloads(self) -> List[Dict]:
        return [target.patch_payload(self.program)
                for target in self.emitted]

    def metrics_block(self) -> Dict:
        """The metrics-JSON ``"repair"`` block (schema 9).

        Deterministic given the spec — targets are processed in static-key
        order and nothing here reads a clock — so jobs=1 and jobs=N runs
        serialize bit-identically.
        """
        matched = [target.ground_truth_race_gone
                   for target in self.emitted
                   if target.ground_truth_race_gone is not None]
        return {
            "program": self.program,
            "original_digest": self.original_digest,
            "targets": len(self.targets),
            "candidates": sum(len(target.attempts)
                              for target in self.targets),
            "emitted": len(self.emitted),
            "ground_truth": {
                "spec": self.ground_truth_spec,
                "checked": len(matched),
                "matched": sum(1 for value in matched if value),
            },
            "per_target": [target.as_dict() for target in self.targets],
            "counters": self.registry.snapshot()["counters"],
        }

    def describe(self) -> str:
        lines = ["repair (%s): %d/%d verified races repaired" % (
            self.program, len(self.emitted), len(self.targets))]
        for target in self.targets:
            if target.repaired:
                verdict = "repaired via %s" % target.emitted.strategy
            else:
                verdict = "unrepaired (%d candidates rejected)" % len(
                    target.attempts)
            lines.append("  %s %s at %s / %s: %s" % (
                target.uid, target.variable or "?",
                target.report.first.location, target.report.second.location,
                verdict))
            for attempt in target.attempts:
                if not attempt.applicable:
                    lines.append("    %-8s inapplicable" % attempt.strategy)
                    continue
                gates = ", ".join(
                    "%s=%s" % (name, "ok" if outcome["passed"] else "FAIL")
                    for name, outcome in attempt.gates.items())
                lines.append("    %-8s %s" % (attempt.strategy, gates))
        return "\n".join(lines)


def _gate_candidate(spec, original: Module, patched: Module,
                    static_key: Tuple[int, int],
                    outcome: CandidateOutcome,
                    registry: MetricsRegistry,
                    sweep_seeds: Sequence[int],
                    cache=None,
                    variable: Optional[str] = None,
                    attack_probes: Optional[Sequence] = None) -> bool:
    """Run the three gates in order; stops at the first failure."""
    cache_key = None
    if cache is not None:
        cache_key = cache.key(
            "repair", module=patched, program=spec.name,
            target="r%d-%d" % static_key, sweep=list(sweep_seeds))
        hit = cache.get("repair", cache_key)
        if hit is not None:
            outcome.gates = hit["gates"]
            outcome.cached = True
            for name, gate in outcome.gates.items():
                if not gate["passed"]:
                    registry.counter("repair.gate.%s.fail" % name).inc()
                else:
                    registry.counter("repair.gate.%s.pass" % name).inc()
            return hit["passed"]
    passed = True
    for name, run in (
        ("oracle", lambda: gate_oracle(spec, original, patched)),
        ("detector", lambda: gate_detector(spec, patched, static_key,
                                           variable=variable,
                                           attack_probes=attack_probes)),
        ("schedulers", lambda: gate_schedulers(spec, patched,
                                               seeds=sweep_seeds)),
    ):
        gate = run()
        outcome.gates[name] = gate
        if gate["passed"]:
            registry.counter("repair.gate.%s.pass" % name).inc()
        else:
            registry.counter("repair.gate.%s.fail" % name).inc()
            passed = False
            break
    if cache is not None:
        cache.put("repair", cache_key,
                  {"gates": outcome.gates, "passed": passed})
    return passed


def repair_program(spec, result=None,
                   strategies: Sequence[str] = STRATEGIES,
                   sweep_seeds: Sequence[int] = range(3),
                   max_targets: Optional[int] = None,
                   include_adhoc: bool = False,
                   cache=None) -> RepairResult:
    """Synthesize and gate patches for every verified race of ``spec``.

    ``result`` is a finished :class:`repro.owl.pipeline.PipelineResult`
    (one is computed serially when omitted).  Targets are the pipeline's
    ``remaining_reports`` — races the verifier reproduced — plus, with
    ``include_adhoc=True``, the adhoc-annotated reports (for which the
    ``realsync`` rewrite is the natural candidate).  Emitted patches are
    recorded into ``result.provenance`` under the ``repair`` stage with
    verdict ``"repaired"``.
    """
    if result is None:
        from repro.owl.pipeline import OwlPipeline

        result = OwlPipeline(spec, cache=cache).run()

    repair = RepairResult(spec.name)
    registry = repair.registry
    original = spec.build()
    repair.original_digest = module_digest(original)

    targets = sorted(result.remaining_reports, key=lambda r: r.static_key)
    if include_adhoc and result.annotations is not None:
        annotated_keys = {tuple(sorted(a.static_key))
                          for a in result.annotations}
        extra = [report for report in result.raw_reports
                 if tuple(sorted(report.static_key)) in annotated_keys]
        known = {target.static_key for target in targets}
        targets += sorted(
            (report for report in extra if report.static_key not in known),
            key=lambda r: r.static_key)
    if max_targets is not None:
        targets = targets[:max_targets]

    # The mutex strategy locks the variable's whole access region: union
    # the racy access uids across every verified report on that variable.
    uids_by_variable: Dict[str, set] = {}
    for report in result.remaining_reports:
        if report.variable:
            uids_by_variable.setdefault(
                report.variable, set()).update(report.static_key)

    # Attacks the pipeline realized on the unpatched module, as payloads
    # that resolve against uid-preserving clones: gate (b) re-drives each
    # against every candidate and requires it to stop realizing.
    from repro.owl.batch import vuln_to_payload

    attack_probes = [
        (vuln_to_payload(detected.vulnerability), detected.ground_truth)
        for detected in getattr(result, "attacks", [])
        if detected.realized and detected.ground_truth is not None
    ]

    annotations = result.annotations
    for report in targets:
        target = TargetOutcome(report)
        repair.targets.append(target)
        registry.counter("repair.targets").inc()
        access_uids = sorted(
            uids_by_variable.get(report.variable or "", set())
            or set(report.static_key))
        for strategy in strategies:
            attempt = CandidateOutcome(strategy)
            target.attempts.append(attempt)
            patched = clone_module(original)
            patcher = synthesize(strategy, patched, report.static_key,
                                 annotations=annotations,
                                 access_uids=access_uids)
            if patcher is None:
                continue
            attempt.applicable = True
            registry.counter("repair.candidates").inc()
            verify_module(patched)
            attempt.ops = list(patcher.ops)
            attempt.diff = ir_diff(original, patched)
            attempt.patched_digest = module_digest(patched)
            if _gate_candidate(spec, original, patched, report.static_key,
                               attempt, registry, sweep_seeds, cache=cache,
                               variable=report.variable,
                               attack_probes=attack_probes):
                attempt.passed = True
                target.emitted = attempt
                registry.counter("repair.emitted").inc()
                registry.counter("repair.emitted.%s" % strategy).inc()
                break
        if target.emitted is None:
            registry.counter("repair.unrepaired").inc()

    _check_ground_truth(spec, repair)
    _record_provenance(result, repair)
    return repair


def _check_ground_truth(spec, repair: RepairResult) -> None:
    """Compare against the ``apps/*_fixed`` variant when one is registered:
    its detector sweep must agree that the repaired variable no longer
    races (same disposition as our gated patch)."""
    from repro.apps.registry import has_spec, spec_by_name

    fixed_name = "%s_fixed" % spec.name
    if not has_spec(fixed_name) or not repair.targets:
        return
    fixed_spec = spec_by_name(fixed_name)
    repair.ground_truth_spec = fixed_name
    reports = _front_detector_reports(fixed_spec, fixed_spec.build())
    racing_variables = {report.variable for report in reports}
    for target in repair.targets:
        target.ground_truth_race_gone = (
            target.variable not in racing_variables)
        repair.registry.counter(
            "repair.ground_truth.%s" % (
                "matched" if target.ground_truth_race_gone else "mismatched")
        ).inc()


def _record_provenance(result, repair: RepairResult) -> None:
    provenance = getattr(result, "provenance", None)
    if provenance is None:
        return
    for target in repair.targets:
        if target.repaired:
            provenance.record(
                target.report, "repair", "repaired",
                strategy=target.emitted.strategy,
                gates={name: outcome["passed"]
                       for name, outcome in target.emitted.gates.items()},
                patched_digest=target.emitted.patched_digest,
            )
        else:
            provenance.record(
                target.report, "repair", "unrepaired",
                candidates=[attempt.strategy
                            for attempt in target.attempts
                            if attempt.applicable],
            )


def merge_repair_telemetry(result, repair: RepairResult) -> None:
    """Fold the ``repair.*`` counters into the run's telemetry snapshot."""
    from repro.runtime.telemetry import merge_snapshots

    snapshot = repair.registry.snapshot()
    if getattr(result, "telemetry", None) is not None:
        result.telemetry = merge_snapshots(result.telemetry, snapshot)
    metrics = getattr(result, "metrics", None)
    if metrics is not None and getattr(metrics, "telemetry", None) is not None:
        metrics.telemetry = result.telemetry
