"""Command-line interface: ``owl <command>``.

Commands:

- ``owl detect <program>`` — run the full pipeline on one target and print
  the per-stage counters, vulnerable input hints, and verified attacks.
- ``owl exploit <attack-id>`` — drive one of the ten exploit scripts.
- ``owl exploits`` — drive all ten.
- ``owl export <program> <path>`` — run the pipeline and save JSON results.
- ``owl trace <program>`` — run the pipeline with span tracing and write
  Chrome ``trace_event`` + JSON-lines trace files.
- ``owl explain <program> [report-uid]`` — print the provenance narrative
  for one race report, or the disposition listing for all of them.
- ``owl study`` — print the section-3 study findings.
- ``owl list`` — list available targets and attack ids.

``detect`` and ``export`` also accept ``--trace PATH`` to save the run's
span tree (Chrome format when PATH ends in ``.json``, JSON lines
otherwise).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _cmd_list(_args) -> int:
    from repro.exploits import list_exploits

    print("targets:")
    for name in ("apache", "apache_log", "apache_balancer", "apache_php",
                 "chrome", "libsafe", "linux", "linux_uselib", "linux_proc",
                 "memcached", "mysql", "ssdb"):
        print("  %s" % name)
    print("attacks:")
    for spec_name, attack_id in list_exploits():
        print("  %-28s (in %s)" % (attack_id, spec_name))
    return 0


def _save_trace(result, path: str) -> None:
    if path.endswith(".json"):
        result.spans.save_chrome(path)
    else:
        result.spans.save_jsonl(path)
    print("trace written to %s (%d spans)" % (path, len(result.spans)))


def _cmd_detect(args) -> int:
    from repro import OwlPipeline, spec_by_name
    from repro.owl.hints import format_full_report

    spec = spec_by_name(args.program)
    pipeline = OwlPipeline(spec, jobs=args.jobs)
    result = pipeline.run()
    counters = result.counters
    print("== OWL pipeline: %s ==" % spec.name)
    print("race reports (R.R.):            %d" % counters.raw_reports)
    print("adhoc syncs annotated (A.S.):   %d" % counters.adhoc_syncs)
    print("reports after annotation:       %d" % counters.after_annotation)
    print("race verifier eliminated:       %d" % counters.verifier_eliminated)
    print("remaining reports (R.):         %d" % counters.remaining)
    print("vulnerability reports:          %d" % counters.vulnerability_reports)
    print("report reduction:               %.1f%%" % (
        100.0 * counters.reduction_ratio))
    for vulnerability in result.vulnerabilities:
        print()
        print(format_full_report(vulnerability))
    print()
    realized = result.realized_attacks()
    print("verified attacks: %d" % len(realized))
    for attack in realized:
        label = attack.ground_truth.attack_id if attack.ground_truth else "unknown"
        print("  %s: %s" % (label, attack.verification.describe()))
    if args.metrics:
        result.metrics.save(args.metrics)
        print("metrics written to %s" % args.metrics)
    if args.trace:
        _save_trace(result, args.trace)
    print()
    print(result.metrics.describe())
    return 0


def _cmd_exploit(args) -> int:
    from repro.exploits import exploit_by_id

    outcome = exploit_by_id(args.attack_id, max_repetitions=args.repetitions)
    print(outcome.describe())
    return 0 if outcome.success else 1


def _cmd_exploits(args) -> int:
    from repro.exploits import run_all_exploits

    outcomes = run_all_exploits(max_repetitions=args.repetitions)
    failures = 0
    for outcome in outcomes:
        print(outcome.describe())
        if not outcome.success:
            failures += 1
    under_20 = sum(1 for o in outcomes if o.success and o.repetitions < 20)
    print()
    print("%d/%d exploited; %d under 20 repetitions (paper: 8/10)" % (
        len(outcomes) - failures, len(outcomes), under_20))
    return 0 if failures == 0 else 1


def _cmd_export(args) -> int:
    from repro import OwlPipeline, spec_by_name
    from repro.owl.export import save_result

    spec = spec_by_name(args.program)
    result = OwlPipeline(spec, jobs=args.jobs).run()
    save_result(result, args.path)
    print("wrote %s (%d vulnerability reports, %d realized attacks)" % (
        args.path, result.counters.vulnerability_reports,
        len(result.realized_attacks()),
    ))
    if args.metrics:
        result.metrics.save(args.metrics)
        print("metrics written to %s" % args.metrics)
    if args.trace:
        _save_trace(result, args.trace)
    return 0


def _cmd_trace(args) -> int:
    from repro import OwlPipeline, spec_by_name

    spec = spec_by_name(args.program)
    result = OwlPipeline(spec, jobs=args.jobs).run()
    spans = result.spans
    chrome_path = spans.save_chrome(args.out + ".json")
    jsonl_path = spans.save_jsonl(args.out + ".jsonl")
    print("== OWL trace: %s (%d spans) ==" % (spec.name, len(spans)))
    print("chrome trace: %s  (load in chrome://tracing or Perfetto)" %
          chrome_path)
    print("span lines:   %s" % jsonl_path)
    print()
    print("%d slowest spans:" % args.top)
    for span in spans.slowest(args.top, exclude=("pipeline",)):
        label = ", ".join(
            "%s=%s" % (key, span.attrs[key])
            for key in ("seed", "report", "site", "function")
            if key in span.attrs
        )
        print("  %9.3f ms  %-28s %s" % (
            span.duration * 1e3, span.name, label,
        ))
    return 0


def _cmd_explain(args) -> int:
    from repro import OwlPipeline, spec_by_name

    spec = spec_by_name(args.program)
    result = OwlPipeline(spec, jobs=args.jobs).run()
    provenance = result.provenance
    if args.report_uid is None:
        print("== OWL provenance: %s (%d reports) ==" % (
            spec.name, len(provenance)))
        print(provenance.summary())
        print()
        print("run `owl explain %s <uid>` for one report's full narrative"
              % spec.name)
        return 0
    record = provenance.get(args.report_uid)
    if record is None:
        print("no report %r in %s; known uids:" % (
            args.report_uid, spec.name), file=sys.stderr)
        for uid in provenance.uids():
            print("  %s" % uid, file=sys.stderr)
        return 1
    print(record.narrative())
    return 0


def _cmd_study(_args) -> int:
    from repro.study import (
        finding1_severity, finding2_spread, finding3_repetitions,
        finding4_bug_types, finding5_burial,
    )

    for title, finding in (
        ("Finding I: severity", finding1_severity()),
        ("Finding II: spread", finding2_spread()),
        ("Finding III: repetitions", finding3_repetitions()),
        ("Finding IV: bug types", finding4_bug_types()),
        ("Finding V: report burial", finding5_burial()),
    ):
        print("== %s ==" % title)
        for key, value in finding.items():
            print("  %s: %s" % (key, value))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="owl",
        description="OWL (DSN 2018) reproduction: directed concurrency "
                    "attack detection",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list targets and attacks").set_defaults(
        func=_cmd_list)
    detect = sub.add_parser("detect", help="run the OWL pipeline on a target")
    detect.add_argument("program")
    detect.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the parallel stages "
                             "(default: 1, serial)")
    detect.add_argument("--metrics", metavar="PATH", default=None,
                        help="write per-stage metrics JSON to PATH")
    detect.add_argument("--trace", metavar="PATH", default=None,
                        help="write the run's span tree to PATH (Chrome "
                             "trace_event when PATH ends in .json, JSON "
                             "lines otherwise)")
    detect.set_defaults(func=_cmd_detect)
    exploit = sub.add_parser("exploit", help="run one exploit script")
    exploit.add_argument("attack_id")
    exploit.add_argument("--repetitions", type=int, default=50)
    exploit.set_defaults(func=_cmd_exploit)
    exploits = sub.add_parser("exploits", help="run all ten exploit scripts")
    exploits.add_argument("--repetitions", type=int, default=50)
    exploits.set_defaults(func=_cmd_exploits)
    export = sub.add_parser("export", help="run the pipeline, save JSON")
    export.add_argument("program")
    export.add_argument("path")
    export.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the parallel stages "
                             "(default: 1, serial)")
    export.add_argument("--metrics", metavar="PATH", default=None,
                        help="write per-stage metrics JSON to PATH")
    export.add_argument("--trace", metavar="PATH", default=None,
                        help="write the run's span tree to PATH (Chrome "
                             "trace_event when PATH ends in .json, JSON "
                             "lines otherwise)")
    export.set_defaults(func=_cmd_export)
    trace = sub.add_parser(
        "trace", help="run the pipeline with span tracing, save trace files")
    trace.add_argument("program")
    trace.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the parallel stages "
                            "(default: 1, serial)")
    trace.add_argument("--out", metavar="BASE", default="owl_trace",
                       help="output base path: writes BASE.json (Chrome "
                            "trace_event) and BASE.jsonl (span lines)")
    trace.add_argument("--top", type=int, default=10,
                       help="how many slowest spans to print (default: 10)")
    trace.set_defaults(func=_cmd_trace)
    explain = sub.add_parser(
        "explain",
        help="explain why OWL kept or pruned a race report")
    explain.add_argument("program")
    explain.add_argument("report_uid", nargs="?", default=None,
                         help="report uid (e.g. r13-28); omit to list all "
                              "reports with their dispositions")
    explain.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the parallel stages "
                              "(default: 1, serial)")
    explain.set_defaults(func=_cmd_explain)
    sub.add_parser("study", help="print the study findings").set_defaults(
        func=_cmd_study)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
