"""Command-line interface: ``owl <command>``.

Commands:

- ``owl detect <program>`` — run the full pipeline on one target and print
  the per-stage counters, vulnerable input hints, and verified attacks.
- ``owl exploit <attack-id>`` — drive one of the ten exploit scripts.
- ``owl exploits`` — drive all ten.
- ``owl export <program> <path>`` — run the pipeline and save JSON results.
- ``owl trace <program>`` — run the pipeline with span tracing and write
  Chrome ``trace_event`` + JSON-lines trace files.
- ``owl explain <program> [report-uid]`` — print the provenance narrative
  for one race report, or the disposition listing for all of them;
  ``--replay`` derives the narrative by replaying recorded schedule logs
  instead of executing live (recording them first if absent).
- ``owl record <program>`` — record the spec's detect-seed sweep as
  schedule logs (one JSON-lines file per seed, no detector attached).
- ``owl replay <program>`` — replay recorded logs with the detector
  attached; ``--check-fingerprint`` additionally verifies each replay is
  bit-identical to a fresh recording (the diffcheck oracle).
- ``owl predict <program>`` — predict the feasible race set from one
  recorded execution via the sync-preserving closure
  (``--optimistic`` for the sync-reversal relaxation, ``--no-witness``
  to skip replay confirmation).
- ``owl fix <program>`` — run the pipeline, then synthesize and gate
  IR-level patches for every verified race (``repro.owl.repair``): a
  patch is emitted only when the diff oracle, the detector re-run, and
  the scheduler sweep all pass; ``--out DIR`` writes one patch+evidence
  JSON artifact per repaired race.
- ``owl resume <program>`` — finish an interrupted ``--cache`` run from
  its journal (completed work is answered from the result cache).
- ``owl watch <feed>`` — follow a run's live event feed (``tail -f`` for
  the pipeline); attach before or during the run.
- ``owl status <out-dir>`` — one-line summary per feed found under a
  directory: which runs completed, which are mid-stage.
- ``owl study`` — print the section-3 study findings.
- ``owl list`` — list available targets and attack ids.

``detect`` and ``export`` also accept ``--trace PATH`` to save the run's
span tree (Chrome format when PATH ends in ``.json``, JSON lines
otherwise), ``--cache``/``--no-cache`` to reuse stage results across
invocations, ``--explore`` (with ``--max-seeds``/``--wave-size``/
``--saturation-k``) to replace the fixed detect-seed sweep with
coverage-guided exploration, ``--predict`` (with ``--optimistic``/
``--no-witness``) to run a predict wave before exploring so later waves
only spend budget on interleavings prediction could not decide,
``--profile`` (with ``--profile-interval``/
``--profile-out``) to sample the VM call stack during detection,
``--feed PATH`` to stream progress events for ``owl watch``, and
``--history [PATH]`` to append the run's trajectory record for
``tools/bench_regress.py`` (see ``docs/OPERATIONS.md`` for the runbook).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional


def _make_pipeline(spec, args, journal_config=None):
    """An :class:`OwlPipeline` configured from the shared CLI flags.

    Returns ``(pipeline, cache, journal)``; ``cache``/``journal`` are None
    unless ``--cache`` was given.
    """
    from repro import OwlPipeline
    from repro.owl.batch import BatchPolicy
    from repro.owl.cache import ResultCache
    from repro.owl.journal import BatchJournal, journal_path

    policy = BatchPolicy(
        timeout=getattr(args, "item_timeout", None),
        retries=getattr(args, "retries", 2),
    )
    cache = journal = None
    if getattr(args, "cache", False):
        cache = ResultCache(args.cache_dir)
        journal = BatchJournal(journal_path(args.cache_dir, spec.name))
    explore = None
    predict = None
    if getattr(args, "predict", False):
        from repro.detectors.predict import PredictPolicy

        predict = PredictPolicy(
            optimistic=getattr(args, "optimistic", False),
            witness=getattr(args, "witness", True),
        )
    if getattr(args, "explore", False) or predict is not None:
        from repro.owl.explore import ExplorePolicy

        explore = ExplorePolicy(
            max_seeds=getattr(args, "max_seeds", 20),
            wave_size=getattr(args, "wave_size", 4),
            saturation_k=getattr(args, "saturation_k", 2),
        )
    profile = None
    if getattr(args, "profile", False):
        from repro.runtime.profiler import DEFAULT_SAMPLE_INTERVAL

        profile = (getattr(args, "profile_interval", None)
                   or DEFAULT_SAMPLE_INTERVAL)
    feed = None
    if getattr(args, "feed", None):
        from repro.owl.stream import EventFeed

        feed = EventFeed(args.feed)
    pipeline = OwlPipeline(
        spec, jobs=args.jobs, cache=cache, policy=policy,
        journal=journal, journal_config=journal_config or {},
        explore=explore, predict=predict, profile=profile, feed=feed,
        fuse=getattr(args, "fuse", False),
    )
    return pipeline, cache, journal


def _finish_cached_run(cache, journal) -> None:
    if cache is not None:
        print(cache.describe())
    if journal is not None:
        journal.close()


def _finish_telemetry(result, args) -> None:
    """Shared ``--profile``/``--history`` epilogue of detect/export."""
    if result.profile is not None:
        print()
        print(result.profile.top_table(getattr(args, "profile_top", 10)))
        out = getattr(args, "profile_out", None)
        if out:
            import os

            directory = os.path.dirname(os.path.abspath(out))
            os.makedirs(directory, exist_ok=True)
            with open(out, "w") as handle:
                handle.write(result.profile.collapsed())
            print("collapsed stacks written to %s (feed to flamegraph.pl "
                  "or speedscope)" % out)
    history = getattr(args, "history", None)
    if history:
        from repro.owl.history import append_record, record_from_metrics

        record = record_from_metrics(result.metrics.as_dict())
        append_record(record, history)
        print("history record appended to %s (steps/s: %s)" % (
            history, record["steps_per_second"]))


def _cmd_list(_args) -> int:
    from repro.exploits import list_exploits

    print("targets:")
    for name in ("apache", "apache_log", "apache_balancer", "apache_php",
                 "chrome", "libsafe", "linux", "linux_uselib", "linux_proc",
                 "memcached", "mysql", "ssdb"):
        print("  %s" % name)
    print("attacks:")
    for spec_name, attack_id in list_exploits():
        print("  %-28s (in %s)" % (attack_id, spec_name))
    return 0


def _save_trace(result, path: str) -> None:
    if path.endswith(".json"):
        result.spans.save_chrome(path)
    else:
        result.spans.save_jsonl(path)
    print("trace written to %s (%d spans)" % (path, len(result.spans)))


def _cmd_detect(args) -> int:
    from repro import spec_by_name
    from repro.owl.hints import format_full_report

    spec = spec_by_name(args.program)
    pipeline, cache, journal = _make_pipeline(
        spec, args, journal_config={"metrics_path": args.metrics})
    result = pipeline.run()
    counters = result.counters
    print("== OWL pipeline: %s ==" % spec.name)
    print("race reports (R.R.):            %d" % counters.raw_reports)
    print("adhoc syncs annotated (A.S.):   %d" % counters.adhoc_syncs)
    print("reports after annotation:       %d" % counters.after_annotation)
    print("race verifier eliminated:       %d" % counters.verifier_eliminated)
    print("remaining reports (R.):         %d" % counters.remaining)
    print("vulnerability reports:          %d" % counters.vulnerability_reports)
    print("report reduction:               %.1f%%" % (
        100.0 * counters.reduction_ratio))
    if result.predict is not None:
        print()
        print(result.predict.describe())
    if result.explore is not None:
        print()
        print(result.explore.describe())
    for vulnerability in result.vulnerabilities:
        print()
        print(format_full_report(vulnerability))
    print()
    realized = result.realized_attacks()
    print("verified attacks: %d" % len(realized))
    for attack in realized:
        label = attack.ground_truth.attack_id if attack.ground_truth else "unknown"
        print("  %s: %s" % (label, attack.verification.describe()))
    if args.metrics:
        result.metrics.save(args.metrics)
        print("metrics written to %s" % args.metrics)
    if args.trace:
        _save_trace(result, args.trace)
    _finish_telemetry(result, args)
    _finish_cached_run(cache, journal)
    print()
    print(result.metrics.describe())
    return 0


def _cmd_exploit(args) -> int:
    from repro.exploits import exploit_by_id

    outcome = exploit_by_id(args.attack_id, max_repetitions=args.repetitions)
    print(outcome.describe())
    return 0 if outcome.success else 1


def _cmd_exploits(args) -> int:
    from repro.exploits import run_all_exploits

    outcomes = run_all_exploits(max_repetitions=args.repetitions)
    failures = 0
    for outcome in outcomes:
        print(outcome.describe())
        if not outcome.success:
            failures += 1
    under_20 = sum(1 for o in outcomes if o.success and o.repetitions < 20)
    print()
    print("%d/%d exploited; %d under 20 repetitions (paper: 8/10)" % (
        len(outcomes) - failures, len(outcomes), under_20))
    return 0 if failures == 0 else 1


def _cmd_export(args) -> int:
    from repro import spec_by_name
    from repro.owl.export import save_result

    spec = spec_by_name(args.program)
    pipeline, cache, journal = _make_pipeline(
        spec, args,
        journal_config={"export_path": args.path,
                        "metrics_path": args.metrics})
    result = pipeline.run()
    save_result(result, args.path)
    print("wrote %s (%d vulnerability reports, %d realized attacks)" % (
        args.path, result.counters.vulnerability_reports,
        len(result.realized_attacks()),
    ))
    if args.metrics:
        result.metrics.save(args.metrics)
        print("metrics written to %s" % args.metrics)
    if args.trace:
        _save_trace(result, args.trace)
    _finish_telemetry(result, args)
    _finish_cached_run(cache, journal)
    return 0


def _cmd_fix(args) -> int:
    import json
    import os

    from repro import spec_by_name
    from repro.owl.repair import merge_repair_telemetry, repair_program

    spec = spec_by_name(args.program)
    pipeline, cache, journal = _make_pipeline(
        spec, args, journal_config={"metrics_path": args.metrics})
    result = pipeline.run()
    repair = repair_program(
        spec, result=result,
        sweep_seeds=range(args.sweep_seeds),
        max_targets=args.max_targets,
        include_adhoc=args.include_adhoc,
        cache=cache,
    )
    result.metrics.repair = repair.metrics_block()
    merge_repair_telemetry(result, repair)
    print("== OWL fix: %s ==" % spec.name)
    print(repair.describe())
    if args.out:
        os.makedirs(args.out, exist_ok=True)
        for payload in repair.patch_payloads():
            path = os.path.join(args.out, "patch_%s_%s.json" % (
                spec.name, payload["target"]["uid"]))
            with open(path, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print("patch artifact written to %s" % path)
    if args.metrics:
        result.metrics.save(args.metrics)
        print("metrics written to %s" % args.metrics)
    _finish_cached_run(cache, journal)
    if repair.targets and not repair.emitted:
        print("no candidate survived all three gates", file=sys.stderr)
        return 1
    return 0


def _cmd_resume(args) -> int:
    from repro.owl.cache import DEFAULT_CACHE_DIR
    from repro.owl.journal import journal_path, load_journal, resume

    cache_dir = args.cache_dir or DEFAULT_CACHE_DIR
    path = args.journal or journal_path(cache_dir, args.program)
    try:
        state = load_journal(path)
    except FileNotFoundError:
        print("no journal at %s — nothing to resume (run with --cache "
              "first)" % path, file=sys.stderr)
        return 1
    if state.completed:
        print(state.describe())
        print("run already completed; nothing to resume")
        return 0
    result, state = resume(path, jobs=args.jobs)
    print(state.describe())
    print()
    counters = result.counters
    print("resumed run finished: %d raw reports, %d remaining, "
          "%d realized attacks" % (
              counters.raw_reports, counters.remaining,
              len(result.realized_attacks())))
    if result.metrics is not None and result.metrics.cache is not None:
        block = result.metrics.cache
        print("cache: %d hits, %d misses, %d stored" % (
            block["hits"], block["misses"], block["stores"]))
    return 0


def _stage_spans(spans, stage: str):
    """The ``stage:<name>`` span and all its descendants (empty: unknown)."""
    roots = spans.find("stage:%s" % stage)
    if not roots:
        return []
    chosen = list(roots)
    frontier = [span.sid for span in roots]
    by_parent = {}
    for span in spans.spans:
        by_parent.setdefault(span.parent, []).append(span)
    while frontier:
        sid = frontier.pop()
        for child in by_parent.get(sid, ()):
            chosen.append(child)
            frontier.append(child.sid)
    return chosen


def _stage_rollup(spans) -> str:
    """Per-stage duration rollup: sum/count/max over each stage subtree."""
    lines = ["%-26s %10s %6s %10s" % ("stage", "sum ms", "count", "max ms")]
    for span in spans.spans:
        if not span.name.startswith("stage:"):
            continue
        stage = span.name[len("stage:"):]
        subtree = [s for s in _stage_spans(spans, stage)
                   if s.end is not None and not s.name.startswith("stage:")]
        durations = [s.duration for s in subtree]
        lines.append("%-26s %10.3f %6d %10.3f" % (
            stage, span.duration * 1e3, len(durations),
            max(durations) * 1e3 if durations else 0.0,
        ))
    return "\n".join(lines)


def _cmd_trace(args) -> int:
    from repro import OwlPipeline, spec_by_name

    spec = spec_by_name(args.program)
    result = OwlPipeline(spec, jobs=args.jobs).run()
    spans = result.spans
    chrome_path = spans.save_chrome(args.out + ".json")
    jsonl_path = spans.save_jsonl(args.out + ".jsonl")
    print("== OWL trace: %s (%d spans) ==" % (spec.name, len(spans)))
    print("chrome trace: %s  (load in chrome://tracing or Perfetto)" %
          chrome_path)
    print("span lines:   %s" % jsonl_path)
    print()
    print(_stage_rollup(spans))
    print()
    if args.stage:
        chosen = _stage_spans(spans, args.stage)
        if not chosen:
            known = sorted(
                span.name[len("stage:"):] for span in spans.spans
                if span.name.startswith("stage:"))
            print("no stage %r in this run; stages: %s" % (
                args.stage, ", ".join(known)), file=sys.stderr)
            return 1
        pool = [s for s in chosen if not s.name.startswith("stage:")]
        pool.sort(key=lambda s: -s.duration)
        print("%d slowest spans in stage %s:" % (args.top, args.stage))
        slowest = pool[:args.top]
    else:
        print("%d slowest spans:" % args.top)
        slowest = spans.slowest(args.top, exclude=("pipeline",))
    for span in slowest:
        label = ", ".join(
            "%s=%s" % (key, span.attrs[key])
            for key in ("seed", "report", "site", "function")
            if key in span.attrs
        )
        print("  %9.3f ms  %-28s %s" % (
            span.duration * 1e3, span.name, label,
        ))
    return 0


def _cmd_watch(args) -> int:
    from repro.owl.stream import follow_feed, render_event

    print("watching %s (ctrl-c to stop)" % args.feed)
    saw_end = False
    try:
        for event in follow_feed(args.feed, poll=args.poll,
                                 timeout=args.timeout):
            line = render_event(event)
            if line is not None:
                print(line, flush=True)
            saw_end = saw_end or event.get("event") == "run_end"
    except KeyboardInterrupt:
        return 130
    except BrokenPipeError:  # `owl watch ... | head` is a normal usage
        return 0
    if not saw_end:
        print("feed went quiet without a run_end event (timeout %ss)"
              % args.timeout, file=sys.stderr)
        return 1
    return 0


def _cmd_status(args) -> int:
    import glob
    import os

    from repro.owl.stream import read_feed

    paths = sorted(glob.glob(os.path.join(args.out_dir, "feed_*.jsonl")))
    if not paths:
        print("no feeds under %s (run with --feed to stream progress)"
              % args.out_dir, file=sys.stderr)
        return 1
    for path in paths:
        events = read_feed(path)
        if not events:
            print("%-36s empty feed" % os.path.basename(path))
            continue
        begin = events[0] if events[0].get("event") == "run_begin" else {}
        last = events[-1]
        program = begin.get("program") or os.path.basename(path)
        seeds = sum(1 for e in events if e.get("event") == "seed_done")
        waves = sum(1 for e in events if e.get("event") == "wave_done")
        if last.get("event") == "run_end":
            state = "complete: %s raw -> %s remaining, %s attacks" % (
                last.get("raw_reports"), last.get("remaining"),
                last.get("attacks"))
        else:
            stages = [e["stage"] for e in events
                      if e.get("event") == "stage_begin"]
            state = "running (stage %s)" % (stages[-1] if stages else "?")
        extras = "  seeds=%d" % seeds + ("  waves=%d" % waves if waves else "")
        print("%-14s jobs=%-3s %s%s" % (
            program, begin.get("jobs", "?"), state, extras))
    return 0


def _cmd_predict(args) -> int:
    import json

    from repro import spec_by_name
    from repro.detectors.predict import PredictPolicy, predict_program
    from repro.owl.replay import default_record_dir

    spec = spec_by_name(args.program)
    policy = PredictPolicy(optimistic=args.optimistic, witness=args.witness)
    record_dir = args.record_dir or default_record_dir(args.program)
    prediction = predict_program(
        spec, seed=args.seed, policy=policy, record_dir=record_dir,
    )
    print("== OWL predict: %s (seed %d, %s) ==" % (
        spec.name, args.seed, policy.mode))
    print(prediction.describe())
    counters = prediction.counters
    if counters["unwitnessed"]:
        # Invariant 8: unwitnessed predictions are surfaced, never
        # silently trusted.
        print("note: %d prediction(s) could not be replay-witnessed — "
              "confirm via `owl detect %s --explore` residual waves"
              % (counters["unwitnessed"], args.program))
    if args.metrics:
        import os

        directory = os.path.dirname(os.path.abspath(args.metrics))
        os.makedirs(directory, exist_ok=True)
        with open(args.metrics, "w") as handle:
            json.dump(prediction.metrics_block(), handle, indent=2)
            handle.write("\n")
        print("predict metrics written to %s" % args.metrics)
    return 0


def _cmd_record(args) -> int:
    import os

    from repro import spec_by_name
    from repro.owl.replay import (
        default_record_dir, log_path, record_program,
    )

    spec = spec_by_name(args.program)
    out_dir = args.out or default_record_dir(args.program)
    seeds = range(args.seeds) if args.seeds is not None else None
    source = record_program(spec, seeds=seeds, out_dir=out_dir)
    total_bytes = 0
    print("== OWL record: %s (%d seeds -> %s) ==" % (
        spec.name, len(source.logs), out_dir))
    for log, stat in zip(source.logs, source.record_stats):
        path = log_path(out_dir, spec.name, log.seed)
        size = os.path.getsize(path)
        total_bytes += size
        print("  seed %4d  %8d steps  %6d decisions  %6d bytes  %s" % (
            log.seed, stat.steps, log.decisions, size, stat.reason,
        ))
    print("recorded %d logs, %d schedule decisions, %d bytes" % (
        len(source.logs),
        sum(log.decisions for log in source.logs), total_bytes,
    ))
    return 0


def _cmd_replay(args) -> int:
    from repro import spec_by_name
    from repro.owl.replay import (
        default_record_dir, discover_seeds, load_recorded_logs,
    )

    spec = spec_by_name(args.program)
    record_dir = args.record_dir or default_record_dir(args.program)
    seeds = discover_seeds(record_dir, args.program)
    if not seeds:
        print("no recorded logs for %s under %s (run `owl record %s` "
              "first)" % (args.program, record_dir, args.program),
              file=sys.stderr)
        return 1
    source = load_recorded_logs(spec, record_dir=record_dir, seeds=seeds)
    stats: List = []
    reports, _ = source.run_detector(stats_out=stats)
    print("== OWL replay: %s (%d logs from %s) ==" % (
        spec.name, len(source.logs), record_dir))
    for stat in stats:
        print("  seed %4d  %8d steps  %4d reports  %s" % (
            stat.seed, stat.steps, stat.reports, stat.reason,
        ))
    print("reports: %d   replays: %d   divergences: %d   unfaithful: %d" % (
        len(reports), source.replays, source.total_divergences,
        source.unfaithful_replays,
    ))
    failures = source.total_divergences + source.unfaithful_replays
    if args.check_fingerprint:
        from repro.owl.replay import _spec_scheduler, _spec_world
        from repro.runtime.diffcheck import compare_fingerprints
        from repro.runtime.record import record_seed, replay_log

        module = spec.build()
        mismatches = 0
        for log in source.logs:
            scheduler, label = _spec_scheduler(spec, log.seed)
            _, _, recorded = record_seed(
                module, log.seed, entry=spec.entry,
                inputs=spec.workload_inputs, max_steps=spec.max_steps,
                scheduler=scheduler, scheduler_label=label,
                world=_spec_world(spec), program=spec.name,
                fingerprint=True,
            )
            outcome = replay_log(
                module, log, inputs=spec.workload_inputs,
                world=_spec_world(spec), fingerprint=True,
            )
            divergence = compare_fingerprints(recorded, outcome.fingerprint)
            if divergence is not None:
                mismatches += 1
                print(divergence.describe(), file=sys.stderr)
        print("fingerprint check: %d/%d seeds bit-identical" % (
            len(source.logs) - mismatches, len(source.logs)))
        failures += mismatches
    return 0 if failures == 0 else 1


def _cmd_explain(args) -> int:
    from repro import OwlPipeline, spec_by_name

    spec = spec_by_name(args.program)
    replay = None
    if getattr(args, "replay", False):
        from repro.owl.replay import (
            default_record_dir, load_recorded_logs, record_program,
        )

        record_dir = args.record_dir or default_record_dir(args.program)
        try:
            replay = load_recorded_logs(spec, record_dir=record_dir)
        except FileNotFoundError:
            replay = record_program(spec, out_dir=record_dir)
    result = OwlPipeline(spec, jobs=args.jobs, replay=replay).run()
    if replay is not None and (replay.total_divergences
                               or replay.unfaithful_replays):
        print("warning: %d replay divergences, %d unfaithful replays — "
              "the narrative below may not match a live run" % (
                  replay.total_divergences, replay.unfaithful_replays),
              file=sys.stderr)
    provenance = result.provenance
    if args.report_uid is None:
        print("== OWL provenance: %s (%d reports) ==" % (
            spec.name, len(provenance)))
        print(provenance.summary())
        print()
        print("run `owl explain %s <uid>` for one report's full narrative"
              % spec.name)
        return 0
    record = provenance.get(args.report_uid)
    if record is None:
        print("no report %r in %s; known uids:" % (
            args.report_uid, spec.name), file=sys.stderr)
        for uid in provenance.uids():
            print("  %s" % uid, file=sys.stderr)
        return 1
    print(record.narrative())
    return 0


def _cmd_study(_args) -> int:
    from repro.study import (
        finding1_severity, finding2_spread, finding3_repetitions,
        finding4_bug_types, finding5_burial,
    )

    for title, finding in (
        ("Finding I: severity", finding1_severity()),
        ("Finding II: spread", finding2_spread()),
        ("Finding III: repetitions", finding3_repetitions()),
        ("Finding IV: bug types", finding4_bug_types()),
        ("Finding V: report burial", finding5_burial()),
    ):
        print("== %s ==" % title)
        for key, value in finding.items():
            print("  %s: %s" % (key, value))
        print()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="owl",
        description="OWL (DSN 2018) reproduction: directed concurrency "
                    "attack detection",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list targets and attacks").set_defaults(
        func=_cmd_list)

    def add_cache_arguments(command):
        from repro.owl.cache import DEFAULT_CACHE_DIR

        command.add_argument(
            "--cache", dest="cache", action="store_true", default=False,
            help="reuse stage results from the on-disk result cache and "
                 "journal progress for `owl resume`")
        command.add_argument(
            "--no-cache", dest="cache", action="store_false",
            help="run everything fresh (the default)")
        command.add_argument(
            "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
            help="cache root (default: %s)" % DEFAULT_CACHE_DIR)
        command.add_argument(
            "--item-timeout", type=float, default=None, metavar="SECONDS",
            help="per-item result-wait budget for pooled stages "
                 "(default: wait; VM step budgets bound every run)")
        command.add_argument(
            "--retries", type=int, default=2, metavar="N",
            help="retry waves for transient worker failures before "
                 "falling back to in-process execution (default: 2)")

    def add_explore_arguments(command):
        command.add_argument(
            "--explore", action="store_true", default=False,
            help="replace the fixed detect-seed sweep with coverage-guided "
                 "exploration: seeds run in waves until interleaving "
                 "coverage saturates (see docs/OPERATIONS.md)")
        command.add_argument(
            "--max-seeds", type=int, default=20, metavar="N",
            help="exploration seed budget (default: 20)")
        command.add_argument(
            "--wave-size", type=int, default=4, metavar="N",
            help="seeds per exploration wave (default: 4)")
        command.add_argument(
            "--saturation-k", type=int, default=2, metavar="K",
            help="stop after K consecutive waves with no new coverage "
                 "(default: 2)")
        command.add_argument(
            "--predict", action="store_true", default=False,
            help="run a predict wave first: record seed 0 once and infer "
                 "every race feasible from that single trace "
                 "(sync-preserving closure; implies --explore — later "
                 "waves only spend budget on undecided interleavings)")
        command.add_argument(
            "--optimistic", action="store_true", default=False,
            help="with --predict: allow the optimistic sync-reversal "
                 "relaxation (more predictions, each still "
                 "witness-checked)")
        command.add_argument(
            "--no-witness", dest="witness", action="store_false",
            default=True,
            help="with --predict: skip witness replay; non-observed "
                 "predictions stay marked unwitnessed")

    def add_fuse_arguments(command):
        command.add_argument(
            "--fuse", dest="fuse", action="store_true", default=False,
            help="compile hot basic blocks into fused superinstructions "
                 "for the detector stages (same events, faults and "
                 "schedules — only steps/s changes; see the schema-8 "
                 "metrics `fuse` block)")
        command.add_argument(
            "--no-fuse", dest="fuse", action="store_false",
            help="execute strictly one instruction per scheduler decision "
                 "(the default)")

    def add_telemetry_arguments(command):
        from repro.owl.history import default_history_path
        from repro.runtime.profiler import DEFAULT_SAMPLE_INTERVAL

        command.add_argument(
            "--profile", action="store_true", default=False,
            help="sample the VM call stack during the detector stages and "
                 "print the hottest functions/opcodes (deterministic for a "
                 "given seed set and interval)")
        command.add_argument(
            "--profile-interval", type=int, default=None, metavar="K",
            help="sample every K-th scheduling decision (default: %d)"
                 % DEFAULT_SAMPLE_INTERVAL)
        command.add_argument(
            "--profile-out", metavar="PATH", default=None,
            help="write collapsed stacks ('stack count' lines) to PATH — "
                 "flamegraph.pl/speedscope input")
        command.add_argument(
            "--profile-top", type=int, default=10, metavar="N",
            help="rows in the printed hot-function table (default: 10)")
        command.add_argument(
            "--feed", metavar="PATH", default=None,
            help="stream progress events to a JSON-lines feed at PATH "
                 "(follow with `owl watch PATH`)")
        command.add_argument(
            "--history", metavar="PATH", nargs="?", default=None,
            const=default_history_path(),
            help="append this run's trajectory record (steps/s, stage "
                 "walls, parity counters) to PATH (default when given "
                 "without a value: %s)" % default_history_path())

    detect = sub.add_parser("detect", help="run the OWL pipeline on a target")
    detect.add_argument("program")
    detect.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the parallel stages "
                             "(default: 1, serial)")
    detect.add_argument("--metrics", metavar="PATH", default=None,
                        help="write per-stage metrics JSON to PATH")
    detect.add_argument("--trace", metavar="PATH", default=None,
                        help="write the run's span tree to PATH (Chrome "
                             "trace_event when PATH ends in .json, JSON "
                             "lines otherwise)")
    add_cache_arguments(detect)
    add_explore_arguments(detect)
    add_fuse_arguments(detect)
    add_telemetry_arguments(detect)
    detect.set_defaults(func=_cmd_detect)
    exploit = sub.add_parser("exploit", help="run one exploit script")
    exploit.add_argument("attack_id")
    exploit.add_argument("--repetitions", type=int, default=50)
    exploit.set_defaults(func=_cmd_exploit)
    exploits = sub.add_parser("exploits", help="run all ten exploit scripts")
    exploits.add_argument("--repetitions", type=int, default=50)
    exploits.set_defaults(func=_cmd_exploits)
    export = sub.add_parser("export", help="run the pipeline, save JSON")
    export.add_argument("program")
    export.add_argument("path")
    export.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the parallel stages "
                             "(default: 1, serial)")
    export.add_argument("--metrics", metavar="PATH", default=None,
                        help="write per-stage metrics JSON to PATH")
    export.add_argument("--trace", metavar="PATH", default=None,
                        help="write the run's span tree to PATH (Chrome "
                             "trace_event when PATH ends in .json, JSON "
                             "lines otherwise)")
    add_cache_arguments(export)
    add_explore_arguments(export)
    add_fuse_arguments(export)
    add_telemetry_arguments(export)
    export.set_defaults(func=_cmd_export)
    fix = sub.add_parser(
        "fix",
        help="synthesize and gate IR-level patches for the verified races")
    fix.add_argument("program")
    fix.add_argument("--jobs", type=int, default=1,
                     help="worker processes for the pipeline's parallel "
                          "stages (repair itself runs serially; default: 1)")
    fix.add_argument("--out", metavar="DIR", default=None,
                     help="write one patch+evidence JSON artifact per "
                          "repaired race under DIR")
    fix.add_argument("--metrics", metavar="PATH", default=None,
                     help="write the run's metrics JSON (schema 9, with "
                          "the `repair` block) to PATH")
    fix.add_argument("--sweep-seeds", type=int, default=3, metavar="N",
                     help="seeds 0..N-1 for the gate (c) scheduler sweep "
                          "(default: 3)")
    fix.add_argument("--max-targets", type=int, default=None, metavar="N",
                     help="repair at most the first N verified races "
                          "(static-key order)")
    fix.add_argument("--include-adhoc", action="store_true", default=False,
                     help="also target adhoc-annotated reports (the "
                          "realsync rewrite is the natural candidate)")
    add_cache_arguments(fix)
    fix.set_defaults(func=_cmd_fix)
    resume = sub.add_parser(
        "resume",
        help="finish an interrupted --cache run from its journal")
    resume.add_argument("program")
    resume.add_argument("--journal", metavar="PATH", default=None,
                        help="journal file (default: "
                             "<cache-dir>/journal_<program>.jsonl)")
    resume.add_argument("--cache-dir", metavar="DIR", default=None,
                        help="cache root the interrupted run used")
    resume.add_argument("--jobs", type=int, default=None,
                        help="override the journaled job count")
    resume.set_defaults(func=_cmd_resume)
    trace = sub.add_parser(
        "trace", help="run the pipeline with span tracing, save trace files")
    trace.add_argument("program")
    trace.add_argument("--jobs", type=int, default=1,
                       help="worker processes for the parallel stages "
                            "(default: 1, serial)")
    trace.add_argument("--out", metavar="BASE", default="owl_trace",
                       help="output base path: writes BASE.json (Chrome "
                            "trace_event) and BASE.jsonl (span lines)")
    trace.add_argument("--top", type=int, default=10,
                       help="how many slowest spans to print (default: 10)")
    trace.add_argument("--stage", metavar="NAME", default=None,
                       help="restrict the slowest-span listing to one "
                            "stage's subtree (e.g. detect, "
                            "race_verification)")
    trace.set_defaults(func=_cmd_trace)
    watch = sub.add_parser(
        "watch", help="follow a run's live event feed (tail -f)")
    watch.add_argument("feed", help="feed path (the run's --feed PATH)")
    watch.add_argument("--poll", type=float, default=0.2, metavar="SECONDS",
                       help="poll interval (default: 0.2)")
    watch.add_argument("--timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="give up after this long without a new event "
                            "(default: wait forever)")
    watch.set_defaults(func=_cmd_watch)
    status = sub.add_parser(
        "status", help="summarize the run feeds under a directory")
    status.add_argument("out_dir", help="directory holding feed_*.jsonl")
    status.set_defaults(func=_cmd_status)
    explain = sub.add_parser(
        "explain",
        help="explain why OWL kept or pruned a race report")
    explain.add_argument("program")
    explain.add_argument("report_uid", nargs="?", default=None,
                         help="report uid (e.g. r13-28); omit to list all "
                              "reports with their dispositions")
    explain.add_argument("--jobs", type=int, default=1,
                         help="worker processes for the parallel stages "
                              "(default: 1, serial)")
    explain.add_argument("--replay", action="store_true", default=False,
                         help="derive the narrative by replaying recorded "
                              "schedule logs (recording them first if "
                              "absent) instead of executing live")
    explain.add_argument("--record-dir", metavar="DIR", default=None,
                         help="record directory for --replay (default: "
                              "benchmarks/out/records/<program>)")
    explain.set_defaults(func=_cmd_explain)
    record = sub.add_parser(
        "record",
        help="record the detect-seed sweep as replayable schedule logs")
    record.add_argument("program")
    record.add_argument("--seeds", type=int, default=None, metavar="N",
                        help="record seeds 0..N-1 instead of the spec's "
                             "detect seeds")
    record.add_argument("--out", metavar="DIR", default=None,
                        help="log directory (default: "
                             "benchmarks/out/records/<program>)")
    record.set_defaults(func=_cmd_record)
    replay = sub.add_parser(
        "replay",
        help="replay recorded schedule logs with the detector attached")
    replay.add_argument("program")
    replay.add_argument("--record-dir", metavar="DIR", default=None,
                        help="log directory (default: "
                             "benchmarks/out/records/<program>)")
    replay.add_argument("--check-fingerprint", action="store_true",
                        default=False,
                        help="also verify each replay is bit-identical to "
                             "a fresh recording (exit 1 on divergence)")
    replay.set_defaults(func=_cmd_replay)
    predict = sub.add_parser(
        "predict",
        help="predict the feasible race set from one recorded execution")
    predict.add_argument("program")
    predict.add_argument("--seed", type=int, default=0, metavar="N",
                         help="the recorded seed to predict from "
                              "(default: 0)")
    predict.add_argument("--optimistic", action="store_true", default=False,
                         help="allow the optimistic sync-reversal "
                              "relaxation (more predictions, each still "
                              "witness-checked)")
    predict.add_argument("--no-witness", dest="witness",
                         action="store_false", default=True,
                         help="skip witness replay; non-observed "
                              "predictions stay marked unwitnessed")
    predict.add_argument("--record-dir", metavar="DIR", default=None,
                         help="log directory (default: "
                              "benchmarks/out/records/<program>; the "
                              "seed is recorded there if absent)")
    predict.add_argument("--metrics", metavar="PATH", default=None,
                         help="write the prediction's schema-7 predict "
                              "block as JSON to PATH")
    predict.set_defaults(func=_cmd_predict)
    sub.add_parser("study", help="print the study findings").set_defaults(
        func=_cmd_study)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
