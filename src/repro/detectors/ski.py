"""A SKI-style systematic schedule explorer for kernel programs.

SKI (Fonseca et al., OSDI '14) finds kernel races by controlling the
interleaving of vCPUs from outside the kernel.  Here "kernel programs" are IR
modules whose entry spawns one thread per in-flight syscall; the explorer
perturbs their interleaving with PCT schedules over many seeds, which plays
the role of SKI's schedule exploration.

Paper section 6.3 required two modifications to SKI's default reporting
policy, both implemented by the shared happens-before engine
(:class:`repro.detectors.tsan.TSanDetector`):

- after a race, the racy address joins a *watch list*; the call stack of
  every subsequent read of the watched address is captured into the report
  ("All the call stacks of the following read to the watched variable will
  be printed"),
- a write to a watched address sanitizes it and stops the watch.

The explorer also honours the kernel-stack reconstruction caveat: reports
carry full call stacks (our threads always have frame pointers, matching the
paper's CONFIG_FRAME_POINTER workaround).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.detectors.annotations import AnnotationSet
from repro.detectors.report import ReportSet
from repro.detectors.tsan import TSanDetector
from repro.ir.module import Module
from repro.runtime.interpreter import VM, ExecutionResult
from repro.runtime.scheduler import PCTScheduler


class SkiDetector(TSanDetector):
    """The happens-before engine with SKI's report labelling."""

    name = "ski"


def run_ski_seed(
    module: Module,
    seed: int,
    entry: str = "main",
    inputs: Optional[Dict] = None,
    annotations: Optional[AnnotationSet] = None,
    max_steps: int = 200_000,
    depth: int = 3,
    tracer=None,
    coverage_out: Optional[List] = None,
    record_out: Optional[List] = None,
    profile_out: Optional[List] = None,
    profile_interval: Optional[int] = None,
    fuse=False,
) -> Tuple[ReportSet, ExecutionResult, SkiDetector]:
    """One kernel execution under one PCT schedule, into a fresh report set.

    ``coverage_out``, when given a list, receives one
    :class:`repro.runtime.coverage.SeedCoverage` for the execution; the
    switch tracker delegates every decision, so the schedule is unchanged.
    ``record_out`` likewise receives one
    :class:`repro.runtime.record.ScheduleLog` without perturbing the
    schedule, and ``profile_out`` one
    :class:`repro.runtime.profiler.SeedProfile` sampled every
    ``profile_interval`` decisions.  ``fuse`` (bool or a shared
    :class:`repro.runtime.fuse.FuseEngine`) turns on superinstruction
    fusion; the detector sees bit-identical events either way.
    """
    from repro.runtime.spans import maybe_span

    scheduler = PCTScheduler(seed=seed, depth=depth)
    recorder = None
    if record_out is not None:
        from repro.runtime.record import ScheduleRecorder

        recorder = ScheduleRecorder(scheduler)
        scheduler = recorder
    tracker = None
    if coverage_out is not None:
        from repro.runtime.coverage import SwitchTracker

        tracker = SwitchTracker(scheduler)
        scheduler = tracker
    profiler = None
    if profile_out is not None:
        from repro.runtime.profiler import (
            DEFAULT_SAMPLE_INTERVAL, SamplingProfiler)

        profiler = SamplingProfiler(
            scheduler, interval=profile_interval or DEFAULT_SAMPLE_INTERVAL,
            observed=True)
        scheduler = profiler
    vm = VM(module, scheduler=scheduler, inputs=inputs, max_steps=max_steps,
            seed=seed, fuse=fuse)
    detector = SkiDetector(annotations=annotations, reports=ReportSet())
    vm.add_observer(detector)
    if recorder is not None:
        vm.add_observer(recorder)
    with maybe_span(tracer, "detect_seed", seed=seed, detector="ski") as span:
        vm.start(entry)
        result = vm.run()
        if span is not None:
            span.attrs.update(steps=result.steps, reason=result.reason,
                              reports=len(detector.reports))
    if coverage_out is not None:
        from repro.runtime.coverage import SeedCoverage

        coverage_out.append(
            SeedCoverage.from_run(seed, detector.reports, tracker))
    if record_out is not None:
        record_out.append(recorder.to_log(
            module, seed, entry=entry, max_steps=max_steps, result=result,
        ))
    if profiler is not None:
        profile_out.append(profiler.data)
    return detector.reports, result, detector


def run_ski(
    module: Module,
    entry: str = "main",
    inputs: Optional[Dict] = None,
    seeds: Sequence[int] = range(20),
    annotations: Optional[AnnotationSet] = None,
    max_steps: int = 200_000,
    depth: int = 3,
    jobs: int = 1,
    module_source: Optional[Callable[[], Module]] = None,
    stats_out: Optional[List] = None,
    tracer=None,
    cache=None,
    policy=None,
    explore=None,
    coverage_out: Optional[List] = None,
    profile_out: Optional[List] = None,
    profile_interval: Optional[int] = None,
    feed=None,
    fuse: bool = False,
) -> Tuple[ReportSet, List[ExecutionResult]]:
    """Systematically explore schedules of a kernel program.

    Each seed yields one PCT schedule (random priorities with ``depth - 1``
    change points), SKI's published exploration strategy class.  Reports are
    merged across seeds with static deduplication.

    ``jobs``/``module_source``/``stats_out``/``cache``/``policy``/
    ``explore``/``coverage_out`` behave exactly as in
    :func:`repro.detectors.tsan.run_tsan`; with ``explore`` the dry-wave
    escalation raises the PCT ``depth`` instead of switching scheduler
    family.
    """
    if explore is not None:
        from repro.owl.explore import explore_seeds

        return explore_seeds(
            "ski", module, module_source=module_source, entry=entry,
            inputs=inputs, annotations=annotations, max_steps=max_steps,
            depth=depth, jobs=jobs, stats_out=stats_out, tracer=tracer,
            cache=cache, policy=policy, explore=explore,
            profile_out=profile_out, profile_interval=profile_interval,
            feed=feed, fuse=bool(fuse),
        )
    if ((jobs and jobs > 1) or cache is not None) \
            and module_source is not None:
        from repro.owl.batch import run_seeds_parallel

        return run_seeds_parallel(
            "ski", module, module_source, entry=entry, inputs=inputs,
            seeds=seeds, annotations=annotations, max_steps=max_steps,
            depth=depth, jobs=jobs, stats_out=stats_out, tracer=tracer,
            cache=cache, policy=policy, coverage_out=coverage_out,
            profile_out=profile_out, profile_interval=profile_interval,
            feed=feed, fuse=bool(fuse),
        )
    if fuse:
        # Shared across the sweep: compiles amortize over every seed.
        from repro.runtime.fuse import FuseEngine

        fuse = fuse if isinstance(fuse, FuseEngine) else FuseEngine()
    reports = ReportSet()
    results: List[ExecutionResult] = []
    for seed in seeds:
        started = time.perf_counter()
        seed_reports, result, detector = run_ski_seed(
            module, seed, entry=entry, inputs=inputs, annotations=annotations,
            max_steps=max_steps, depth=depth, tracer=tracer,
            coverage_out=coverage_out, profile_out=profile_out,
            profile_interval=profile_interval, fuse=fuse,
        )
        reports.merge(seed_reports)
        results.append(result)
        if stats_out is not None:
            from repro.runtime.metrics import RunStats

            stats_out.append(RunStats(
                seed=seed, reason=result.reason, steps=result.steps,
                accesses=detector.access_count, reports=len(seed_reports),
                wall_seconds=time.perf_counter() - started,
            ))
        if feed is not None:
            feed.seed_done(stage="detect", seed=seed, detector="ski",
                           steps=result.steps, reports=len(seed_reports),
                           cached=False)
    return reports, results
