"""Predictive sync-preserving race detection from one recorded execution.

The detectors' seed sweep spends most of its budget re-discovering races
that are already *inferable* from a single trace.  This module implements
sync-preserving race prediction (Mathur, Pavlogiannis & Viswanathan,
OOPSLA 2021): from one recorded execution — a
:class:`repro.runtime.record.ScheduleLog` replayed with an event
collector attached — it decides, per conflicting access pair, whether a
*reordered but sync-consistent* schedule exists in which the two accesses
are simultaneously enabled, and emits a :class:`RaceReport` for every
pair that is.  An ``optimistic`` mode additionally allows the
sync-reversal relaxation of Shi, Mathur & Pavlogiannis (ASE 2022):
critical sections whose acquires are *not* needed by the reordering may
be pushed past it entirely instead of being replayed in trace order.

The feasibility core is the **sync-preserving closure**: a per-thread
prefix fixpoint over the events each candidate pair *requires*:

- **PO rule** — an event requires its program-order predecessors, so the
  closure is a per-thread frontier (required prefix length);
- **fork rule** — any required event of thread *t* requires the CREATE
  event that spawned *t* (and, transitively, the spawning thread's prefix
  up to it) — the racing threads' own forks included, so a witness can
  spawn them at all;
- **join rule** — a required JOIN(*u*) requires *every* event of *u*;
- **lock rule** — a required ACQUIRE of lock *l* requires the release of
  the critical section immediately preceding it on *l* in trace order
  (sync preservation).  In ``optimistic`` mode only critical sections
  whose acquire is itself required keep their trace order; unneeded ones
  may be reversed past the race;
- **atomic rule** — atomic accesses (and OWL adhoc-sync annotated flag
  accesses) are modelled as zero-length critical sections: an atomic
  *write* publishes (release), an atomic *read* requires the release of
  the nearest preceding publishing write — the exact rel-acq edges
  :class:`repro.detectors.tsan.TSanDetector` derives from them.  Atomics
  stay order-preserved even in optimistic mode.

The pair is feasible iff the fixpoint pulls in *neither* access: every
closure edge is a happens-before edge of the recorded trace, so an
infeasible pair is HB-ordered and — contrapositively — **every race the
HB detector observed in the trace is predicted** (the ``predicted ⊇
observed`` property the test suite checks on random IR).

Unlike the paper's closure, reads are not reads-from-preserved: a
synthesized reordering may change a branch value and derail.  Instead of
carrying that proof burden statically, every prediction is (optionally)
**confirmed by replay**: a witness schedule — the recorded schedule
restricted to the closure plus the racing threads' prefixes — is run
through the existing :class:`repro.runtime.scheduler.ReplayScheduler`
with a fresh TSan detector attached.  A prediction is then either
replay-witnessed or explicitly marked unwitnessed (ARCHITECTURE
invariant 8); it is never silently trusted.

Everything here is deterministic: the trace replay, the candidate
enumeration order, the closure and the witness synthesis depend only on
the log, so the prediction block is bit-identical at any job count.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.detectors.annotations import AnnotationSet
from repro.detectors.report import AccessRecord, RaceReport, ReportSet
from repro.runtime.events import (
    AccessEvent,
    SyncEvent,
    ThreadLifecycleEvent,
    TraceObserver,
)

#: Event kinds of the predictive trace.
READ, WRITE, ACQUIRE, RELEASE, FORK, JOIN = range(6)

_KIND_NAMES = {READ: "read", WRITE: "write", ACQUIRE: "acquire",
               RELEASE: "release", FORK: "fork", JOIN: "join"}

#: Lock namespaces: real locks (VM sync events) and atomic/flag addresses
#: live in different address spaces.
_LOCK, _ATOMIC = 0, 1


class PredictPolicy:
    """Knobs of one prediction pass.

    - ``optimistic`` — allow the sync-reversal relaxation (more races
      predicted; each still witness-checked).
    - ``witness`` — confirm every prediction by synthesizing a witness
      schedule and replaying it with a TSan detector attached; ``False``
      marks every non-observed prediction unwitnessed.
    - ``max_pairs_per_static`` — closure attempts per static instruction
      pair before giving up on it (different concrete event pairs of the
      same static pair can differ in feasibility).
    - ``max_closures`` — global closure budget per trace.
    """

    def __init__(self, optimistic: bool = False, witness: bool = True,
                 max_pairs_per_static: int = 4, max_closures: int = 20_000):
        self.optimistic = bool(optimistic)
        self.witness = bool(witness)
        self.max_pairs_per_static = int(max_pairs_per_static)
        self.max_closures = int(max_closures)

    @property
    def mode(self) -> str:
        return "optimistic" if self.optimistic else "sync-preserving"

    def as_dict(self) -> Dict:
        return {
            "optimistic": self.optimistic,
            "witness": self.witness,
            "max_pairs_per_static": self.max_pairs_per_static,
            "max_closures": self.max_closures,
        }

    def __repr__(self) -> str:
        return "<PredictPolicy %s witness=%s>" % (self.mode, self.witness)


class PredictEvent:
    """One event of the predictive trace (access, sync or lifecycle)."""

    __slots__ = ("index", "thread", "po_index", "kind", "address", "size",
                 "step", "instruction", "value", "call_stack", "peer",
                 "_variable")

    def __init__(self, index: int, thread: int, po_index: int, kind: int,
                 address: int = 0, size: int = 1, step: int = 0,
                 instruction=None, value: int = 0, call_stack=(),
                 peer: Optional[int] = None, variable=None):
        self.index = index
        self.thread = thread
        self.po_index = po_index
        self.kind = kind
        self.address = address
        self.size = size
        self.step = step
        self.instruction = instruction
        self.value = value
        self.call_stack = call_stack
        self.peer = peer
        self._variable = variable

    @property
    def is_write(self) -> bool:
        return self.kind == WRITE

    @property
    def variable(self):
        value = self._variable
        if callable(value):
            value = value()
            self._variable = value
        return value

    def __repr__(self) -> str:
        return "<PE %d t%d/%d %s 0x%x>" % (
            self.index, self.thread, self.po_index,
            _KIND_NAMES[self.kind], self.address,
        )


class _CriticalSection:
    """One acquire..release span (zero-length for atomics/flags)."""

    __slots__ = ("acquire", "release", "publishes", "prev_publish")

    def __init__(self, acquire: Optional[PredictEvent],
                 release: Optional[PredictEvent], publishes: bool,
                 prev_publish: Optional[int]):
        self.acquire = acquire
        self.release = release
        self.publishes = publishes
        #: Index (in the per-lock CS list) of the nearest earlier
        #: publishing section, or None.
        self.prev_publish = prev_publish


class PredictiveTrace:
    """The event trace the closure runs over.

    Built either by :class:`_TraceCollector` during a log replay or by
    hand (tests) through the ``read``/``write``/``acquire``/``release``/
    ``atomic_read``/``atomic_write``/``fork``/``join`` builder methods.
    """

    def __init__(self):
        self.events: List[PredictEvent] = []
        self.by_thread: Dict[int, List[PredictEvent]] = {}
        #: child thread id -> the FORK event (in the parent) that spawned it
        self.fork_of: Dict[int, PredictEvent] = {}
        #: per-thread ACQUIRE/JOIN events, in program order (closure markers)
        self.markers: Dict[int, List[PredictEvent]] = {}
        self._marker_po: Dict[int, List[int]] = {}
        #: (space, address) -> critical sections in trace order
        self.sections: Dict[Tuple[int, int], List[_CriticalSection]] = {}
        #: event index of an ACQUIRE -> ((space, address), cs index)
        self.acquire_cs: Dict[int, Tuple[Tuple[int, int], int]] = {}
        self._open: Dict[Tuple[int, int], List[int]] = {}
        self._last_publish: Dict[Tuple[int, int], int] = {}

    # ------------------------------------------------------------------
    # construction

    def _event(self, thread: int, kind: int, **kw) -> PredictEvent:
        row = self.by_thread.setdefault(thread, [])
        event = PredictEvent(len(self.events), thread, len(row), kind, **kw)
        self.events.append(event)
        row.append(event)
        return event

    def _mark(self, event: PredictEvent) -> None:
        self.markers.setdefault(event.thread, []).append(event)
        self._marker_po.setdefault(event.thread, []).append(event.po_index)

    def read(self, thread: int, address: int, **kw) -> PredictEvent:
        return self._event(thread, READ, address=address, **kw)

    def write(self, thread: int, address: int, **kw) -> PredictEvent:
        return self._event(thread, WRITE, address=address, **kw)

    def acquire(self, thread: int, lock: int, **kw) -> PredictEvent:
        event = self._event(thread, ACQUIRE, address=lock, **kw)
        key = (_LOCK, lock)
        sections = self.sections.setdefault(key, [])
        index = len(sections)
        sections.append(_CriticalSection(
            event, None, True, index - 1 if index else None))
        self.acquire_cs[event.index] = (key, index)
        self._open.setdefault((thread, lock), []).append(index)
        self._mark(event)
        return event

    def release(self, thread: int, lock: int, **kw) -> PredictEvent:
        event = self._event(thread, RELEASE, address=lock, **kw)
        stack = self._open.get((thread, lock))
        if stack:
            self.sections[(_LOCK, lock)][stack.pop()].release = event
        return event

    def atomic_write(self, thread: int, address: int, **kw) -> PredictEvent:
        """An atomic store: a zero-length publishing critical section."""
        event = self._event(thread, RELEASE, address=address, **kw)
        key = (_ATOMIC, address)
        sections = self.sections.setdefault(key, [])
        sections.append(_CriticalSection(
            event, event, True, self._last_publish.get(key)))
        self._last_publish[key] = len(sections) - 1
        return event

    def atomic_read(self, thread: int, address: int, **kw) -> PredictEvent:
        """An atomic load: acquires the nearest preceding publish."""
        event = self._event(thread, ACQUIRE, address=address, **kw)
        key = (_ATOMIC, address)
        sections = self.sections.setdefault(key, [])
        index = len(sections)
        sections.append(_CriticalSection(
            event, event, False, self._last_publish.get(key)))
        self.acquire_cs[event.index] = (key, index)
        self._mark(event)
        return event

    def fork(self, parent: int, child: int, **kw) -> PredictEvent:
        event = self._event(parent, FORK, peer=child, **kw)
        self.fork_of.setdefault(child, event)
        return event

    def join(self, thread: int, child: int, **kw) -> PredictEvent:
        event = self._event(thread, JOIN, peer=child, **kw)
        self._mark(event)
        return event

    # ------------------------------------------------------------------

    def accesses(self) -> List[PredictEvent]:
        return [e for e in self.events if e.kind in (READ, WRITE)]

    def marker_range(self, thread: int, lo: int, hi: int) -> List[PredictEvent]:
        """Markers of ``thread`` with program-order index in ``[lo, hi)``."""
        po = self._marker_po.get(thread)
        if not po:
            return []
        markers = self.markers[thread]
        return markers[bisect_left(po, lo):bisect_left(po, hi)]

    def __len__(self) -> int:
        return len(self.events)


# ---------------------------------------------------------------------------
# the sync-preserving closure


class SyncPreservingClosure:
    """Required-prefix fixpoint for one candidate pair."""

    def __init__(self, trace: PredictiveTrace, optimistic: bool = False):
        self.trace = trace
        self.optimistic = optimistic
        #: thread -> required prefix length (events 0 .. frontier-1)
        self.frontier: Dict[int, int] = {}
        self.poisoned = False
        self._forked: Set[int] = set()
        self._released: Set[Tuple[Tuple[int, int], int]] = set()
        #: optimistic mode: lock -> sorted CS indices with required acquires
        self._required_cs: Dict[Tuple[int, int], List[int]] = {}
        self._pending: List[Tuple[int, int, int]] = []

    def require_prefix(self, thread: int, upto: int) -> None:
        """Require the first ``upto`` events of ``thread``."""
        self._require_fork(thread)
        current = self.frontier.get(thread, 0)
        if upto <= current:
            return
        self.frontier[thread] = upto
        self._pending.append((thread, current, upto))

    def _require_fork(self, thread: int) -> None:
        if thread in self._forked:
            return
        self._forked.add(thread)
        fork = self.trace.fork_of.get(thread)
        if fork is not None:
            self.require_prefix(fork.thread, fork.po_index + 1)

    def _require_release(self, key: Tuple[int, int], index: int) -> None:
        if (key, index) in self._released:
            return
        self._released.add((key, index))
        release = self.trace.sections[key][index].release
        if release is None:
            # The section never released in the trace: no reordering can
            # satisfy an acquire that must observe it.
            self.poisoned = True
            return
        self.require_prefix(release.thread, release.po_index + 1)

    def _handle_acquire(self, event: PredictEvent) -> None:
        key, index = self.trace.acquire_cs[event.index]
        sections = self.trace.sections[key]
        section = sections[index]
        if key[0] == _ATOMIC:
            # rel-acq on an atomic/flag address: order-preserved in both
            # modes; a read requires the publish it observed.
            if not section.publishes and section.prev_publish is not None:
                self._require_release(key, section.prev_publish)
            return
        if not self.optimistic:
            if section.prev_publish is not None:
                self._require_release(key, section.prev_publish)
            return
        # Optimistic (sync-reversal): only critical sections whose acquire
        # is itself required keep their trace order; everything else may be
        # pushed past the race.
        required = self._required_cs.setdefault(key, [])
        position = bisect_left(required, index)
        for earlier in required[:position]:
            self._require_release(key, earlier)
        if position < len(required):
            self._require_release(key, index)
        required.insert(position, index)

    def run(self) -> None:
        trace = self.trace
        while self._pending and not self.poisoned:
            thread, lo, hi = self._pending.pop()
            for event in trace.marker_range(thread, lo, hi):
                if event.kind == JOIN:
                    child = event.peer
                    self._require_fork(child)
                    self.require_prefix(
                        child, len(trace.by_thread.get(child, ())))
                else:
                    self._handle_acquire(event)
                if self.poisoned:
                    return

    def feasible(self, first: PredictEvent, second: PredictEvent) -> bool:
        """Whether a sync-consistent reordering co-enables the pair."""
        self.require_prefix(first.thread, first.po_index)
        self.require_prefix(second.thread, second.po_index)
        self.run()
        return (
            not self.poisoned
            and self.frontier.get(first.thread, 0) <= first.po_index
            and self.frontier.get(second.thread, 0) <= second.po_index
        )


def sync_preserving_feasible(trace: PredictiveTrace, first: PredictEvent,
                             second: PredictEvent,
                             optimistic: bool = False) -> bool:
    """Convenience entry point for one pair on a (hand-built) trace."""
    return SyncPreservingClosure(trace, optimistic).feasible(first, second)


# ---------------------------------------------------------------------------
# trace collection (log replay observer)


class _TraceCollector(TraceObserver):
    """Builds a :class:`PredictiveTrace` from a replayed execution.

    Mirrors :class:`TSanDetector`'s event model exactly: atomic accesses
    and OWL adhoc-sync annotated flag accesses become rel-acq edges, not
    race candidates; everything else becomes a READ/WRITE candidate.
    """

    def __init__(self, annotations: Optional[AnnotationSet] = None):
        self.annotations = annotations or AnnotationSet()
        self.trace = PredictiveTrace()

    def on_access(self, event: AccessEvent) -> None:
        trace = self.trace
        if event.is_atomic:
            if event.is_write:
                trace.atomic_write(event.thread_id, event.address,
                                   step=event.step)
            else:
                trace.atomic_read(event.thread_id, event.address,
                                  step=event.step)
            return
        annotated_release = event.is_write and self.annotations.is_release(
            event.instruction)
        annotated_acquire = (not event.is_write) \
            and self.annotations.is_acquire(event.instruction)
        if annotated_acquire:
            trace.atomic_read(event.thread_id, event.address, step=event.step)
        kw = dict(
            address=event.address, size=event.size, step=event.step,
            instruction=event.instruction, value=event.value,
            call_stack=event.call_stack, variable=event._variable,
        )
        if event.is_write:
            trace.write(event.thread_id, **kw)
        else:
            trace.read(event.thread_id, **kw)
        if annotated_release:
            trace.atomic_write(event.thread_id, event.address,
                               step=event.step)

    def on_sync(self, event: SyncEvent) -> None:
        if event.kind == SyncEvent.ACQUIRE:
            self.trace.acquire(event.thread_id, event.address,
                               step=event.step)
        else:
            self.trace.release(event.thread_id, event.address,
                               step=event.step)

    def on_thread(self, event: ThreadLifecycleEvent) -> None:
        if event.kind == ThreadLifecycleEvent.CREATE:
            self.trace.fork(event.thread_id, event.other_thread_id,
                            step=event.step)
        elif event.kind == ThreadLifecycleEvent.JOIN:
            self.trace.join(event.thread_id, event.other_thread_id,
                            step=event.step)


class _DecisionTracker:
    """Scheduler wrapper recording the VM step of every decision.

    The VM's step counter can jump forward over sleeping threads, so the
    flat schedule position of a decision is not its step number; this map
    recovers ``step -> decision index`` for witness synthesis.
    """

    def __init__(self, inner):
        self.inner = inner
        self.steps: List[int] = []

    @property
    def divergences(self) -> int:
        return self.inner.divergences

    def choose(self, runnable, step):
        self.steps.append(step)
        return self.inner.choose(runnable, step)

    def on_thread_created(self, thread) -> None:
        self.inner.on_thread_created(thread)

    def reset(self) -> None:
        self.inner.reset()
        self.steps = []


# ---------------------------------------------------------------------------
# predictions


class Prediction:
    """One predicted race and how it was (or was not) confirmed."""

    __slots__ = ("report", "witnessed", "observed", "mode")

    def __init__(self, report: RaceReport, witnessed: Optional[bool],
                 observed: bool, mode: str):
        self.report = report
        self.witnessed = witnessed
        self.observed = observed
        self.mode = mode
        report.tags["predicted"] = {
            "witnessed": witnessed,
            "observed": observed,
            "mode": mode,
        }

    def __repr__(self) -> str:
        return "<Prediction %s %s>" % (
            self.report.uid,
            "observed" if self.observed else
            "witnessed" if self.witnessed else "unwitnessed",
        )


class PredictionResult:
    """Everything one prediction pass produced."""

    def __init__(self, program: str, seed: int, policy: PredictPolicy):
        self.program = program
        self.seed = seed
        self.policy = policy
        self.predictions: List[Prediction] = []
        self.counters: Dict[str, int] = {
            "events": 0, "accesses": 0, "candidate_pairs": 0,
            "closures": 0, "predicted": 0, "rejected": 0, "observed": 0,
            "witnessed": 0, "unwitnessed": 0, "witness_attempts": 0,
            "witness_divergences": 0, "truncated_pairs": 0,
        }
        self.wall_seconds = 0.0

    @property
    def predicted_keys(self) -> Set[Tuple[int, int]]:
        return {p.report.static_key for p in self.predictions}

    def report_set(self) -> ReportSet:
        reports = ReportSet()
        for prediction in self.predictions:
            reports.add(prediction.report)
        return reports

    def metrics_block(self) -> Dict:
        """The metrics-JSON ``"predict"`` block (schema 7).

        Deterministic given the log — no wall clock — so jobs=1 and
        jobs=N runs serialize bit-identically.
        """
        return {
            "detector": "predict",
            "program": self.program,
            "seed": self.seed,
            "mode": self.policy.mode,
            "policy": self.policy.as_dict(),
            "counters": dict(self.counters),
            "pairs": sorted(
                [list(p.report.static_key),
                 "observed" if p.observed else
                 "witnessed" if p.witnessed else "unwitnessed"]
                for p in self.predictions
            ),
        }

    def to_payload(self) -> Dict:
        from repro.owl.batch import report_to_payload

        return {
            "program": self.program,
            "seed": self.seed,
            "policy": self.policy.as_dict(),
            "counters": dict(self.counters),
            "predictions": [
                {
                    "report": report_to_payload(p.report),
                    "witnessed": p.witnessed,
                    "observed": p.observed,
                    "mode": p.mode,
                }
                for p in self.predictions
            ],
        }

    @classmethod
    def from_payload(cls, module, payload: Dict) -> "PredictionResult":
        from repro.owl.batch import report_from_payload

        policy = PredictPolicy(**payload["policy"])
        result = cls(payload["program"], int(payload["seed"]), policy)
        result.counters.update(payload["counters"])
        for item in payload["predictions"]:
            result.predictions.append(Prediction(
                report_from_payload(module, item["report"]),
                item["witnessed"], item["observed"], item["mode"],
            ))
        return result

    def describe(self) -> str:
        c = self.counters
        lines = [
            "prediction (%s): %d races from 1 trace of %s seed %d" % (
                self.policy.mode, c["predicted"], self.program, self.seed),
            "  trace: %d events (%d accesses), %d candidate pairs, "
            "%d closures" % (c["events"], c["accesses"],
                             c["candidate_pairs"], c["closures"]),
            "  observed in trace: %d   witnessed by replay: %d   "
            "unwitnessed: %d" % (c["observed"], c["witnessed"],
                                 c["unwitnessed"]),
        ]
        for prediction in self.predictions:
            status = ("observed" if prediction.observed else
                      "witnessed" if prediction.witnessed else "unwitnessed")
            report = prediction.report
            lines.append("  %s [%s] %s at %s / %s" % (
                report.uid, status, report.variable or "?",
                report.first.location, report.second.location,
            ))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "<PredictionResult %s seed=%d predicted=%d witnessed=%d>" % (
            self.program, self.seed, self.counters["predicted"],
            self.counters["witnessed"],
        )


# ---------------------------------------------------------------------------
# witness synthesis


def synthesize_witness(trace: PredictiveTrace, flat: Sequence[int],
                       decision_steps: Sequence[int],
                       closure: SyncPreservingClosure,
                       first: PredictEvent,
                       second: PredictEvent) -> List[int]:
    """The witness schedule: recorded decisions restricted to the closure.

    Per-thread prefixes of the recorded flat schedule, cut at each
    thread's last required event (the racing threads at their accesses),
    emitted in recorded order — so every kept acquire still finds its
    release already replayed, and the racing accesses become adjacent at
    the end.
    """
    step_to_index = {step: i for i, step in enumerate(decision_steps)}

    def decision_of(event: PredictEvent) -> int:
        # Events are emitted after the step increment: decision step + 1.
        index = step_to_index.get(event.step - 1)
        if index is None:
            index = min(max(event.step - 1, 0), len(flat) - 1)
        return index

    bounds: Dict[int, int] = {}
    for thread, upto in closure.frontier.items():
        if upto > 0:
            row = trace.by_thread.get(thread, ())
            event = row[min(upto, len(row)) - 1]
            bounds[thread] = max(bounds.get(thread, -1), decision_of(event))
    for event in (first, second):
        bounds[event.thread] = max(
            bounds.get(event.thread, -1), decision_of(event))
    # Forked-but-eventless threads contribute no decisions; the fork rule
    # already pulled their spawning prefixes into the closure.
    witness: List[int] = []
    for index, thread in enumerate(flat):
        bound = bounds.get(thread)
        if bound is not None and index <= bound:
            witness.append(thread)
    return witness


def _replay_witness(module, log, witness: Sequence[int],
                    static_key: Tuple[int, int],
                    annotations: Optional[AnnotationSet],
                    inputs, world) -> Tuple[bool, int]:
    """Run the witness schedule with a fresh TSan detector attached.

    Returns ``(witnessed, divergences)`` — witnessed iff the predicted
    static pair was reported during the (bounded) witness replay.
    """
    from repro.detectors.tsan import TSanDetector
    from repro.runtime.interpreter import VM
    from repro.runtime.scheduler import ReplayScheduler

    scheduler = ReplayScheduler(list(witness))
    vm = VM(module, scheduler=scheduler, world=world, inputs=inputs,
            max_steps=log.max_steps or 200_000, seed=log.seed)
    detector = TSanDetector(annotations=annotations)
    vm.add_observer(detector)
    vm.start(log.entry, log.entry_args)
    # Run in bounded chunks: the race must surface within the witness
    # itself, so stop as soon as the schedule is consumed (or found) —
    # never pay for the fallback scheduler running the program out.
    budget = len(witness) + 16
    for _ in range(4):
        result = vm.run(max_steps=budget)
        if detector.reports.get(static_key) is not None:
            break
        if result.reason != "step-limit":
            break
        if scheduler._cursor >= len(witness):
            break
    witnessed = detector.reports.get(static_key) is not None
    return witnessed, scheduler.divergences


# ---------------------------------------------------------------------------
# the prediction pass


def _pair_key(a: PredictEvent, b: PredictEvent) -> Tuple[int, int]:
    ua = a.instruction.uid or 0 if a.instruction is not None else 0
    ub = b.instruction.uid or 0 if b.instruction is not None else 0
    return (ua, ub) if ua <= ub else (ub, ua)


def _record_of(event: PredictEvent) -> AccessRecord:
    return AccessRecord(
        event.instruction, event.thread, event.is_write, event.value,
        event.call_stack, event.address, step=event.step, size=event.size,
    )


def predict_from_log(
    module,
    log,
    annotations: Optional[AnnotationSet] = None,
    inputs: Optional[Dict] = None,
    world_factory=None,
    policy: Optional[PredictPolicy] = None,
    observed_keys: Optional[Set[Tuple[int, int]]] = None,
) -> PredictionResult:
    """Predict the feasible race set of one recorded execution.

    Replays ``log`` (strictly — a digest mismatch raises
    :class:`repro.runtime.record.ReplayMismatch`) with the trace
    collector attached, enumerates conflicting cross-thread access pairs
    per byte, runs the sync-preserving closure per candidate and — per
    ``policy`` — confirms feasible pairs by witness replay.
    ``observed_keys`` are static pairs a detector already reported on
    this very trace (they skip witness synthesis: the recording itself is
    their witness); when ``None`` a TSan detector rides along on the
    collection replay to compute them.
    """
    from repro.runtime.record import replay_log

    policy = policy or PredictPolicy()
    result = PredictionResult(log.program, log.seed, policy)
    started = time.perf_counter()

    collector = _TraceCollector(annotations)
    observers: List[TraceObserver] = [collector]
    observed_detector = None
    if observed_keys is None:
        from repro.detectors.tsan import TSanDetector

        observed_detector = TSanDetector(annotations=annotations)
        observers.append(observed_detector)
    tracker_box: List[_DecisionTracker] = []

    def wrap(scheduler):
        tracker = _DecisionTracker(scheduler)
        tracker_box.append(tracker)
        return tracker

    replay = replay_log(
        module, log, observers=observers, inputs=inputs,
        world=world_factory() if world_factory is not None else None,
        strict=True, scheduler_wrapper=wrap,
    )
    if observed_detector is not None:
        observed_keys = {r.static_key for r in observed_detector.reports}
    trace = collector.trace
    flat = log.expand_schedule()
    decision_steps = tracker_box[0].steps

    counters = result.counters
    counters["events"] = len(trace)
    counters["replay_divergences"] = replay.total_divergences

    # Per-byte representative events: first occurrence per
    # (thread, instruction, direction) — the static dedup TSan applies.
    representatives: Dict[int, Dict[Tuple[int, int, bool], PredictEvent]] = {}
    accesses = trace.accesses()
    counters["accesses"] = len(accesses)
    for event in accesses:
        uid = event.instruction.uid or 0 if event.instruction is not None else 0
        for offset in range(max(1, event.size)):
            byte = event.address + offset
            representatives.setdefault(byte, {}).setdefault(
                (event.thread, uid, event.is_write), event)

    annotated_pairs: Set[Tuple[int, int]] = set()
    if annotations:
        for annotation in annotations:
            a = annotation.read_instruction.uid or 0
            b = annotation.write_instruction.uid or 0
            annotated_pairs.add((a, b) if a <= b else (b, a))

    predicted: Set[Tuple[int, int]] = set()
    attempts: Dict[Tuple[int, int], int] = {}
    seen_pairs: Set[Tuple[int, int]] = set()
    for byte in sorted(representatives):
        events = list(representatives[byte].values())
        for i, a in enumerate(events):
            for b in events[i + 1:]:
                if a.thread == b.thread:
                    continue
                if not (a.is_write or b.is_write):
                    continue
                key = _pair_key(a, b)
                if key in predicted or key in annotated_pairs:
                    continue
                if key not in seen_pairs:
                    seen_pairs.add(key)
                    counters["candidate_pairs"] += 1
                if attempts.get(key, 0) >= policy.max_pairs_per_static:
                    continue
                if counters["closures"] >= policy.max_closures:
                    counters["truncated_pairs"] += 1
                    continue
                attempts[key] = attempts.get(key, 0) + 1
                counters["closures"] += 1
                first, second = (a, b) if a.index < b.index else (b, a)
                closure = SyncPreservingClosure(trace, policy.optimistic)
                if not closure.feasible(first, second):
                    continue
                predicted.add(key)
                counters["predicted"] += 1
                report = RaceReport(
                    _record_of(first), _record_of(second),
                    variable=second.variable or first.variable,
                    detector="predict",
                )
                observed = key in observed_keys
                witnessed: Optional[bool] = None
                if observed:
                    counters["observed"] += 1
                    witnessed = True
                elif policy.witness:
                    counters["witness_attempts"] += 1
                    witness = synthesize_witness(
                        trace, flat, decision_steps, closure, first, second)
                    witnessed, divergences = _replay_witness(
                        module, log, witness, key, annotations, inputs,
                        world_factory() if world_factory is not None
                        else None,
                    )
                    counters["witness_divergences"] += divergences
                if witnessed and not observed:
                    counters["witnessed"] += 1
                elif not observed and not witnessed:
                    counters["unwitnessed"] += 1
                result.predictions.append(
                    Prediction(report, witnessed, observed, policy.mode))
    counters["rejected"] = counters["closures"] - counters["predicted"]
    result.wall_seconds = time.perf_counter() - started
    return result


def predict_program(
    spec,
    seed: int = 0,
    annotations: Optional[AnnotationSet] = None,
    policy: Optional[PredictPolicy] = None,
    log=None,
    record_dir: Optional[str] = None,
) -> PredictionResult:
    """Predict from one recorded execution of a :class:`ProgramSpec`.

    Loads the seed's log from ``record_dir`` when one exists (``owl
    record`` output), otherwise records a fresh execution under the
    schedule family the spec's live detector would use — and saves it to
    ``record_dir`` when given, so the next prediction is replay-only.
    """
    import os

    from repro.owl.replay import _spec_scheduler, _spec_world, log_path
    from repro.runtime.record import ScheduleLog, record_seed

    module = spec.build()
    path = (log_path(record_dir, spec.name, seed)
            if record_dir is not None else None)
    if log is None and path is not None and os.path.exists(path):
        log = ScheduleLog.load(path)
    if log is None:
        scheduler, label = _spec_scheduler(spec, seed)
        log, _result, _ = record_seed(
            module, seed, entry=spec.entry, inputs=spec.workload_inputs,
            max_steps=spec.max_steps, scheduler=scheduler,
            scheduler_label=label, world=_spec_world(spec),
            program=spec.name,
        )
        if path is not None:
            log.save(path)
    return predict_from_log(
        module, log, annotations=annotations, inputs=spec.workload_inputs,
        world_factory=lambda: _spec_world(spec), policy=policy,
    )
