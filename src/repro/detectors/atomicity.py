"""A CTrigger-style atomicity-violation detector.

The paper positions atomicity-violation detection as a complementary front
end: "OWL can also integrate with other bug detection tools (e.g., process
races and atomicity bugs [CTrigger]) to detect concurrency attacks caused
by such bugs" (section 7.2), and names the integration future work
(section 8.3).  This module implements that integration.

Detection follows the classic unserializable-interleaving taxonomy (Lu et
al. / CTrigger): for two consecutive accesses by one thread to the same
location with a remote access interleaved between them, the patterns

- R-W-R  (non-repeatable read),
- W-W-R  (the reader sees a half-done update),
- R-W-W  (lost local update),
- W-R-W  (the remote read observes a dirty intermediate value)

are unserializable.  Each finding is emitted as a standard
:class:`repro.detectors.report.RaceReport` (detector tag ``"ctrigger"``,
pattern recorded in ``tags``), so OWL's verifiers and Algorithm 1 consume
atomicity violations exactly like data races — the integration contract of
section 6.3.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.detectors.report import AccessRecord, RaceReport, ReportSet
from repro.ir.module import Module
from repro.runtime.events import AccessEvent, TraceObserver
from repro.runtime.interpreter import VM, ExecutionResult
from repro.runtime.scheduler import RandomScheduler

#: (first local, remote, second local) access patterns that are
#: unserializable; True = write, False = read.
UNSERIALIZABLE_PATTERNS = {
    (False, True, False): "R-W-R (non-repeatable read)",
    (True, True, False): "W-W-R (reads half-done update)",
    (False, True, True): "R-W-W (lost update)",
    (True, False, True): "W-R-W (dirty intermediate read)",
}


class _LocationHistory:
    """Per-address: last access per thread + last access overall."""

    __slots__ = ("per_thread", "last")

    def __init__(self):
        self.per_thread: Dict[int, AccessRecord] = {}
        self.last: Optional[AccessRecord] = None


class AtomicityDetector(TraceObserver):
    """Flags unserializable interleavings on shared locations."""

    name = "ctrigger"
    PATTERN_TAG = "atomicity-pattern"

    def __init__(self, reports: Optional[ReportSet] = None):
        self.reports = reports if reports is not None else ReportSet()
        self._history: Dict[int, _LocationHistory] = {}

    def on_access(self, event: AccessEvent) -> None:
        if event.is_atomic:
            return
        record = AccessRecord(
            event.instruction, event.thread_id, event.is_write, event.value,
            event.call_stack, event.address, step=event.step,
        )
        history = self._history.get(event.address)
        if history is None:
            history = _LocationHistory()
            self._history[event.address] = history
        previous_local = history.per_thread.get(event.thread_id)
        last = history.last
        if (
            previous_local is not None
            and last is not None
            and last.thread_id != event.thread_id
            and last.step > previous_local.step
        ):
            pattern_key = (previous_local.is_write, last.is_write,
                           record.is_write)
            pattern = UNSERIALIZABLE_PATTERNS.get(pattern_key)
            if pattern is not None:
                self._report(previous_local, last, record, pattern,
                             event.variable)
        history.per_thread[event.thread_id] = record
        history.last = record

    def _report(self, local_first: AccessRecord, remote: AccessRecord,
                local_second: AccessRecord, pattern: str,
                variable: Optional[str]) -> None:
        # The report pairs the remote access with the *reading* side so
        # Algorithm 1 has a racy load to start from where possible.
        local = local_second if not local_second.is_write else local_first
        report = RaceReport(remote, local, variable=variable,
                            detector=self.name)
        report.tags[self.PATTERN_TAG] = pattern
        self.reports.add(report)


def run_atomicity(
    module: Module,
    entry: str = "main",
    inputs: Optional[Dict] = None,
    seeds: Sequence[int] = range(10),
    max_steps: int = 200_000,
) -> Tuple[ReportSet, List[ExecutionResult]]:
    """Run the atomicity detector over several schedules; merged reports."""
    reports = ReportSet()
    results: List[ExecutionResult] = []
    for seed in seeds:
        vm = VM(module, scheduler=RandomScheduler(seed), inputs=inputs,
                max_steps=max_steps, seed=seed)
        vm.add_observer(AtomicityDetector(reports=reports))
        vm.start(entry)
        results.append(vm.run())
    return reports, results
