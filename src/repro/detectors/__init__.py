"""Concurrency-bug detectors: the front end of the OWL pipeline.

- :mod:`repro.detectors.tsan` — a happens-before (vector clock) data race
  detector in the spirit of ThreadSanitizer, used for application programs.
- :mod:`repro.detectors.ski` — a systematic schedule explorer in the spirit
  of SKI, used for kernel-style programs, with the paper's section 6.3
  modified report policy (corrupted-address watch list; every subsequent
  read's call stack is captured, writes sanitize).
- :mod:`repro.detectors.lockset` — an Eraser-style lockset detector kept as
  a baseline comparator (more false positives than happens-before).
- :mod:`repro.detectors.predict` — a predictive detector: from one recorded
  execution, the sync-preserving closure decides which conflicting access
  pairs a reordered-but-sync-consistent schedule could co-enable, each
  prediction witness-replayed or explicitly marked unwitnessed.
- :mod:`repro.detectors.annotations` — TSan-markup-style annotations that
  OWL's adhoc-synchronization stage applies to suppress benign schedules.
- :mod:`repro.detectors.report` — race report data structures shared by all
  detectors and consumed by OWL.
"""

from repro.detectors.report import AccessRecord, RaceReport, ReportSet
from repro.detectors.vectorclock import VectorClock
from repro.detectors.annotations import AnnotationSet
from repro.detectors.tsan import TSanDetector, run_tsan
from repro.detectors.lockset import LocksetDetector
from repro.detectors.ski import SkiDetector, run_ski
from repro.detectors.atomicity import AtomicityDetector, run_atomicity
from repro.detectors.predict import (
    PredictPolicy,
    PredictionResult,
    predict_from_log,
    predict_program,
)

__all__ = [
    "AccessRecord",
    "RaceReport",
    "ReportSet",
    "VectorClock",
    "AnnotationSet",
    "TSanDetector",
    "run_tsan",
    "LocksetDetector",
    "SkiDetector",
    "run_ski",
    "AtomicityDetector",
    "run_atomicity",
    "PredictPolicy",
    "PredictionResult",
    "predict_from_log",
    "predict_program",
]
