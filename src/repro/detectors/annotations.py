"""TSan-markup-style annotations applied by OWL's adhoc-sync stage.

Paper section 5.1: after identifying an adhoc synchronization (one thread
busy-waits on a shared flag until another sets it), "OWL automatically
annotates program source code with TSAN markups and re-runs the detector".

Rather than rewriting the IR, an :class:`AnnotationSet` tells the
happens-before detector to treat the annotated write as a *release* and the
annotated read as an *acquire* on the accessed address — semantically
identical to inserting ``__tsan_release`` / ``__tsan_acquire`` markups at
those source locations.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.ir.instructions import Instruction
from repro.ir.values import SourceLocation


class AdhocSyncAnnotation:
    """One adhoc synchronization: the flag's write and read locations."""

    def __init__(self, read_instruction: Instruction, write_instruction: Instruction,
                 variable: Optional[str] = None):
        self.read_instruction = read_instruction
        self.write_instruction = write_instruction
        self.variable = variable

    @property
    def read_location(self) -> SourceLocation:
        return self.read_instruction.location

    @property
    def write_location(self) -> SourceLocation:
        return self.write_instruction.location

    @property
    def static_key(self) -> Tuple[int, int]:
        return (self.write_instruction.uid or 0, self.read_instruction.uid or 0)

    def describe(self) -> str:
        return "adhoc sync on %s: write at %s, read at %s" % (
            self.variable or "?", self.write_location, self.read_location,
        )

    def __repr__(self) -> str:
        return "<AdhocSync %s>" % self.describe()


class AnnotationSet:
    """The set of annotated instructions consulted by detectors."""

    def __init__(self, annotations: Iterable[AdhocSyncAnnotation] = ()):
        self.annotations: List[AdhocSyncAnnotation] = []
        self._release_uids: Set[int] = set()
        self._acquire_uids: Set[int] = set()
        for annotation in annotations:
            self.add(annotation)

    def add(self, annotation: AdhocSyncAnnotation) -> None:
        self.annotations.append(annotation)
        self._release_uids.add(annotation.write_instruction.uid or -1)
        self._acquire_uids.add(annotation.read_instruction.uid or -1)

    def is_release(self, instruction: Instruction) -> bool:
        return (instruction.uid or -2) in self._release_uids

    def is_acquire(self, instruction: Instruction) -> bool:
        return (instruction.uid or -2) in self._acquire_uids

    def __len__(self) -> int:
        return len(self.annotations)

    def __iter__(self):
        return iter(self.annotations)

    def unique_static_count(self) -> int:
        """Number of distinct static adhoc synchronizations annotated."""
        return len({annotation.static_key for annotation in self.annotations})
