"""Race report data structures shared by all detectors and by OWL.

A :class:`RaceReport` carries the two conflicting accesses with their call
stacks — the exact payload OWL's components consume: the adhoc-sync detector
inspects the read/write instructions (section 5.1), the dynamic race verifier
sets breakpoints on both (section 5.2), and the static vulnerability analyzer
starts Algorithm 1 from the racy load and its call stack (section 6.1).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.instructions import Instruction, Load

CallStack = Tuple[Tuple[str, str, int], ...]


class AccessRecord:
    """One side of a race: an instruction, its thread and its call stack."""

    def __init__(
        self,
        instruction: Instruction,
        thread_id: int,
        is_write: bool,
        value: int,
        call_stack: CallStack,
        address: int,
        step: int = 0,
        size: int = 1,
    ):
        self.instruction = instruction
        self.thread_id = thread_id
        self.is_write = is_write
        self.value = value
        self.call_stack = call_stack
        self.address = address
        self.step = step
        self.size = size

    @property
    def byte_range(self) -> Tuple[int, int]:
        """Half-open [start, end) span of bytes this access touched."""
        return (self.address, self.address + max(1, self.size))

    @property
    def location(self):
        return self.instruction.location

    def is_load(self) -> bool:
        return isinstance(self.instruction, Load)

    def __repr__(self) -> str:
        return "<Access %s t%d %s at %s>" % (
            "W" if self.is_write else "R", self.thread_id,
            self.instruction.opcode, self.location,
        )


class RaceReport:
    """Two unordered conflicting accesses to the same memory."""

    def __init__(self, first: AccessRecord, second: AccessRecord,
                 variable: Optional[str] = None, detector: str = "hb"):
        self.first = first
        self.second = second
        self.variable = variable
        self.detector = detector
        #: Loads of the racy address observed after the race, captured by the
        #: corrupted-address watch list (section 6.3's modified SKI policy).
        self.subsequent_reads: List[AccessRecord] = []
        #: Labels attached by OWL stages ("adhoc-sync", "verified", ...).
        self.tags: Dict[str, object] = {}

    # ------------------------------------------------------------------

    @property
    def static_key(self) -> Tuple[int, int]:
        """Unordered pair of instruction uids: the dedup key for reports."""
        a = self.first.instruction.uid or 0
        b = self.second.instruction.uid or 0
        return (a, b) if a <= b else (b, a)

    @property
    def uid(self) -> str:
        """Stable human-typable identifier ("r<a>-<b>") for this report.

        Derived from :attr:`static_key`, so it is identical across detector
        re-runs, job counts and processes — the handle ``owl explain`` and
        the provenance log key reports by.
        """
        a, b = self.static_key
        return "r%d-%d" % (a, b)

    @property
    def address(self) -> int:
        return self.first.address

    def accesses(self) -> Tuple[AccessRecord, AccessRecord]:
        return (self.first, self.second)

    def read_access(self) -> Optional[AccessRecord]:
        """The racy *load* whose corrupted value Algorithm 1 starts from.

        Prefers a load among the two racing accesses; for write-write races
        falls back to the first watched subsequent read (the detector
        modification described in section 6.3).
        """
        for access in self.accesses():
            if access.is_load():
                return access
        for access in self.subsequent_reads:
            if access.is_load():
                return access
        return None

    def write_access(self) -> Optional[AccessRecord]:
        for access in self.accesses():
            if access.is_write:
                return access
        return None

    def is_write_write(self) -> bool:
        return self.first.is_write and self.second.is_write

    def describe(self) -> str:
        lines = [
            "data race on %s (0x%x) [%s]" % (
                self.variable or "?", self.address, self.detector,
            )
        ]
        for label, access in (("first", self.first), ("second", self.second)):
            mode = "write" if access.is_write else "read"
            lines.append("  %s: %s by t%d at %s" % (
                label, mode, access.thread_id, access.location,
            ))
            for func, filename, line in reversed(access.call_stack):
                lines.append("    #%s (%s:%d)" % (func, filename, line))
        return "\n".join(lines)

    def __repr__(self) -> str:
        return "<RaceReport %s %s<->%s>" % (
            self.variable or hex(self.address),
            self.first.location, self.second.location,
        )


class ReportSet:
    """Deduplicated collection of race reports (one per static pair)."""

    def __init__(self):
        self._by_key: Dict[Tuple[int, int], RaceReport] = {}

    def add(self, report: RaceReport) -> bool:
        """Insert; returns False (and merges watch data) for duplicates."""
        key = report.static_key
        existing = self._by_key.get(key)
        if existing is not None:
            existing.subsequent_reads.extend(report.subsequent_reads)
            return False
        self._by_key[key] = report
        return True

    def get(self, static_key: Tuple[int, int]) -> Optional[RaceReport]:
        """O(1) lookup of the canonical report for a static pair."""
        return self._by_key.get(static_key)

    def merge(self, other: "ReportSet") -> None:
        for report in other:
            self.add(report)

    def remove(self, report: RaceReport) -> None:
        self._by_key.pop(report.static_key, None)

    def __iter__(self):
        return iter(self._by_key.values())

    def __len__(self) -> int:
        return len(self._by_key)

    def __contains__(self, report: RaceReport) -> bool:
        return report.static_key in self._by_key

    def reports(self) -> List[RaceReport]:
        return list(self._by_key.values())

    def untagged(self, tag: str) -> List[RaceReport]:
        return [report for report in self if tag not in report.tags]

    def tagged(self, tag: str) -> List[RaceReport]:
        return [report for report in self if tag in report.tags]
