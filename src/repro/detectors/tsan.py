"""A happens-before data race detector in the spirit of ThreadSanitizer.

The detector attaches to the VM as a trace observer and maintains FastTrack-
style shadow state: per-thread vector clocks, per-sync-object clocks, and per
byte of shared memory the last-write epoch plus the read epochs since.  Two
accesses race when they touch the same byte, at least one writes, and neither
happens-before the other.

Reports carry both call stacks.  A corrupted-address *watch list* implements
the paper's section 6.3 detector modification: once a race is found on an
address, every subsequent read of it is recorded (with its call stack) into
the report, and a write "sanitizes" the address.  This gives Algorithm 1 a
racy *load* to start from even for write-write races.

OWL's adhoc-sync annotations (section 5.1) are honoured exactly like TSan
markups: an annotated flag write acts as a release, the annotated read as an
acquire, and the annotated pair itself is not reported.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.detectors.annotations import AnnotationSet
from repro.detectors.report import AccessRecord, RaceReport, ReportSet
from repro.detectors.vectorclock import VectorClock
from repro.ir.module import Module
from repro.runtime.events import (
    AccessEvent,
    SyncEvent,
    ThreadLifecycleEvent,
    TraceObserver,
)
from repro.runtime.interpreter import VM, ExecutionResult
from repro.runtime.scheduler import RandomScheduler, Scheduler


class _ByteShadow:
    """Shadow state for one byte of shared memory."""

    __slots__ = ("last_write", "reads")

    def __init__(self):
        # (thread_id, clock, AccessRecord) of the most recent write.
        self.last_write: Optional[Tuple[int, int, AccessRecord]] = None
        # (thread_id, instruction uid) -> (clock, AccessRecord) for reads
        # since the last write.  Keyed per instruction, not just per thread,
        # so one write racing with several distinct racy loads yields one
        # report per static pair (the Figure 6 store races with both the
        # line-359 check and the line-346 use).
        self.reads: Dict[Tuple[int, int], Tuple[int, AccessRecord]] = {}


class TSanDetector(TraceObserver):
    """The happens-before engine; one instance per VM execution."""

    name = "tsan"

    def __init__(self, annotations: Optional[AnnotationSet] = None,
                 reports: Optional[ReportSet] = None):
        self.annotations = annotations or AnnotationSet()
        self.reports = reports if reports is not None else ReportSet()
        self._thread_clocks: Dict[int, VectorClock] = {}
        self._sync_clocks: Dict[int, VectorClock] = {}
        self._final_clocks: Dict[int, VectorClock] = {}
        self._shadow: Dict[int, _ByteShadow] = {}
        #: watched corrupted byte spans [lo, hi) -> reports collecting stacks
        self._watches: Dict[Tuple[int, int], List[RaceReport]] = {}
        #: unordered annotated (read, write) instruction-uid pairs, computed
        #: once so the per-byte race check is a set probe rather than a scan
        #: over every annotation
        self._annotated_pairs: Set[Tuple[int, int]] = {
            self._pair_key(annotation.read_instruction.uid or 0,
                           annotation.write_instruction.uid or 0)
            for annotation in self.annotations
        }
        self.access_count = 0

    @staticmethod
    def _pair_key(a: int, b: int) -> Tuple[int, int]:
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    # clock helpers

    def _clock_of(self, thread_id: int) -> VectorClock:
        clock = self._thread_clocks.get(thread_id)
        if clock is None:
            clock = VectorClock({thread_id: 1})
            self._thread_clocks[thread_id] = clock
        return clock

    # ------------------------------------------------------------------
    # observer hooks

    def on_thread(self, event: ThreadLifecycleEvent) -> None:
        if event.kind == ThreadLifecycleEvent.CREATE:
            parent = self._clock_of(event.thread_id)
            child = self._clock_of(event.other_thread_id)
            child.join(parent)
            parent.tick(event.thread_id)
        elif event.kind == ThreadLifecycleEvent.EXIT:
            self._final_clocks[event.thread_id] = self._clock_of(event.thread_id).copy()
        elif event.kind == ThreadLifecycleEvent.JOIN:
            final = self._final_clocks.get(event.other_thread_id)
            if final is not None:
                self._clock_of(event.thread_id).join(final)

    def on_sync(self, event: SyncEvent) -> None:
        clock = self._clock_of(event.thread_id)
        if event.kind == SyncEvent.ACQUIRE:
            published = self._sync_clocks.get(event.address)
            if published is not None:
                clock.join(published)
        else:  # release
            clock.tick(event.thread_id)
            self._sync_clocks[event.address] = clock.copy()

    def on_access(self, event: AccessEvent) -> None:
        self.access_count += 1
        annotated_release = event.is_write and self.annotations.is_release(
            event.instruction
        )
        annotated_acquire = (not event.is_write) and self.annotations.is_acquire(
            event.instruction
        )
        if annotated_acquire:
            # Acquire the clock published by the annotated flag write.
            self.on_sync(SyncEvent(
                event.thread_id, event.step, SyncEvent.ACQUIRE, event.address,
            ))
        if event.is_atomic:
            kind = SyncEvent.RELEASE if event.is_write else SyncEvent.ACQUIRE
            self.on_sync(SyncEvent(event.thread_id, event.step, kind, event.address))
            return
        clock = self._clock_of(event.thread_id)
        record = AccessRecord(
            event.instruction, event.thread_id, event.is_write, event.value,
            event.call_stack, event.address, step=event.step, size=event.size,
        )
        own_clock = clock.get(event.thread_id)
        # Service watches before race checking: a racy write that *creates* a
        # watch (below) must not immediately sanitize it, and the racy read
        # that constitutes a report is not also a "subsequent" read.
        self._service_watches(event, record)
        for offset in range(event.size):
            self._check_byte(event.address + offset, record, clock, own_clock,
                             event.variable)
        if annotated_release:
            # Publish this thread's clock on the flag address (TSan markup).
            self.on_sync(SyncEvent(
                event.thread_id, event.step, SyncEvent.RELEASE, event.address,
            ))

    # ------------------------------------------------------------------
    # race checking

    def _annotated_pair(self, a: AccessRecord, b: AccessRecord) -> bool:
        """Whether both sides belong to the same annotated adhoc sync."""
        if not self._annotated_pairs:
            return False
        return self._pair_key(a.instruction.uid or 0,
                              b.instruction.uid or 0) in self._annotated_pairs

    def _check_byte(self, address: int, record: AccessRecord, clock: VectorClock,
                    own_clock: int, variable: Optional[str]) -> None:
        shadow = self._shadow.get(address)
        if shadow is None:
            shadow = _ByteShadow()
            self._shadow[address] = shadow
        write = shadow.last_write
        if (
            write is not None
            and write[0] != record.thread_id
            and not clock.ordered_with(write[0], write[1])
            and not self._annotated_pair(write[2], record)
        ):
            self._report(write[2], record, variable)
        if record.is_write:
            for (thread_id, _uid), (read_clock, read_record) in shadow.reads.items():
                if (
                    thread_id != record.thread_id
                    and not clock.ordered_with(thread_id, read_clock)
                    and not self._annotated_pair(read_record, record)
                ):
                    self._report(read_record, record, variable)
            shadow.last_write = (record.thread_id, own_clock, record)
            shadow.reads = {}
        else:
            key = (record.thread_id, record.instruction.uid or 0)
            shadow.reads[key] = (own_clock, record)

    def _report(self, prior: AccessRecord, current: AccessRecord,
                variable: Optional[str]) -> None:
        report = RaceReport(prior, current, variable=variable, detector=self.name)
        if self.reports.add(report):
            self._watch(report)
        else:
            # Already known statically: still feed the watch list.
            known = self.reports.get(report.static_key)
            if known is not None:
                self._watch(known)

    # ------------------------------------------------------------------
    # corrupted-address watch list (paper section 6.3)

    def _watch(self, report: RaceReport) -> None:
        first_lo, first_hi = report.first.byte_range
        second_lo, second_hi = report.second.byte_range
        span = (min(first_lo, second_lo), max(first_hi, second_hi))
        watchers = self._watches.setdefault(span, [])
        if report not in watchers:
            watchers.append(report)

    def _service_watches(self, event: AccessEvent, record: AccessRecord) -> None:
        if not self._watches:
            return
        lo = event.address
        hi = event.address + max(1, event.size)
        # Match on byte overlap, not base-address equality: a wide read (or
        # sanitizing write) that covers the watched span at a different base
        # address still touches the corrupted bytes.
        touched = [span for span in self._watches if span[0] < hi and lo < span[1]]
        if not touched:
            return
        if event.is_write:
            # A write sanitizes the corrupted value; stop watching.
            for span in touched:
                del self._watches[span]
            return
        for span in touched:
            for report in self._watches[span]:
                if record.instruction is not report.first.instruction and \
                        record.instruction is not report.second.instruction:
                    report.subsequent_reads.append(record)


def run_tsan_seed(
    module: Module,
    seed: int,
    entry: str = "main",
    inputs: Optional[Dict] = None,
    annotations: Optional[AnnotationSet] = None,
    max_steps: int = 200_000,
    scheduler_factory=None,
    entry_args: Sequence[int] = (),
    tracer=None,
    coverage_out: Optional[List] = None,
    record_out: Optional[List] = None,
    profile_out: Optional[List] = None,
    profile_interval: Optional[int] = None,
    fuse=False,
) -> Tuple[ReportSet, ExecutionResult, TSanDetector]:
    """One program execution under one schedule, into a fresh report set.

    The unit of work for both the serial driver and the parallel batch
    engine: per-seed report sets merged in seed order are bit-identical to
    one report set shared across all seeds (dedup keeps the first static
    occurrence and appends later watch data either way).  ``tracer``
    (a :class:`repro.runtime.spans.SpanTracer`) records the execution as a
    ``detect_seed`` span.  ``coverage_out``, when given a list, receives
    one :class:`repro.runtime.coverage.SeedCoverage` for the execution
    (racy pair set plus context-switch signature); tracking never perturbs
    the schedule itself.  ``record_out``, when given a list, receives one
    :class:`repro.runtime.record.ScheduleLog` of the execution — the
    recorder delegates every decision unchanged too, so a recorded seed
    finds exactly the races an unrecorded one would.  ``profile_out``,
    when given a list, receives one
    :class:`repro.runtime.profiler.SeedProfile` sampled every
    ``profile_interval`` scheduler decisions (same pure-delegation
    wrapper; deterministic given seed + interval).  ``fuse`` (a bool, or
    a shared :class:`repro.runtime.fuse.FuseEngine` to amortize compiles
    across a sweep) turns on superinstruction fusion — detectors observe
    bit-identical events either way, so the reports cannot change.
    """
    from repro.runtime.spans import maybe_span

    scheduler: Scheduler = (
        scheduler_factory(seed) if scheduler_factory is not None
        else RandomScheduler(seed)
    )
    recorder = None
    if record_out is not None:
        from repro.runtime.record import ScheduleRecorder

        recorder = ScheduleRecorder(scheduler)
        scheduler = recorder
    tracker = None
    if coverage_out is not None:
        from repro.runtime.coverage import SwitchTracker

        tracker = SwitchTracker(scheduler)
        scheduler = tracker
    profiler = None
    if profile_out is not None:
        from repro.runtime.profiler import (
            DEFAULT_SAMPLE_INTERVAL, SamplingProfiler)

        profiler = SamplingProfiler(
            scheduler, interval=profile_interval or DEFAULT_SAMPLE_INTERVAL,
            observed=True)
        scheduler = profiler
    vm = VM(module, scheduler=scheduler, inputs=inputs, max_steps=max_steps,
            seed=seed, fuse=fuse)
    detector = TSanDetector(annotations=annotations, reports=ReportSet())
    vm.add_observer(detector)
    if recorder is not None:
        vm.add_observer(recorder)
    with maybe_span(tracer, "detect_seed", seed=seed,
                    detector="tsan") as span:
        vm.start(entry, entry_args)
        result = vm.run()
        if span is not None:
            span.attrs.update(steps=result.steps, reason=result.reason,
                              reports=len(detector.reports))
    if coverage_out is not None:
        from repro.runtime.coverage import SeedCoverage

        coverage_out.append(
            SeedCoverage.from_run(seed, detector.reports, tracker))
    if record_out is not None:
        record_out.append(recorder.to_log(
            module, seed, entry=entry, entry_args=entry_args,
            max_steps=max_steps, result=result,
        ))
    if profiler is not None:
        profile_out.append(profiler.data)
    return detector.reports, result, detector


def run_tsan(
    module: Module,
    entry: str = "main",
    inputs: Optional[Dict] = None,
    seeds: Sequence[int] = range(10),
    annotations: Optional[AnnotationSet] = None,
    max_steps: int = 200_000,
    scheduler_factory=None,
    entry_args: Sequence[int] = (),
    jobs: int = 1,
    module_source: Optional[Callable[[], Module]] = None,
    stats_out: Optional[List] = None,
    tracer=None,
    cache=None,
    policy=None,
    explore=None,
    coverage_out: Optional[List] = None,
    profile_out: Optional[List] = None,
    profile_interval: Optional[int] = None,
    feed=None,
    fuse: bool = False,
) -> Tuple[ReportSet, List[ExecutionResult]]:
    """Run the detector over several schedules and merge the reports.

    Each seed is one program execution under a random schedule — the
    equivalent of repeatedly running a TSan-instrumented binary on the same
    testing workload.

    With ``jobs > 1`` and a picklable zero-argument ``module_source`` (a
    module-level factory function), seeds fan out across a process pool via
    :mod:`repro.owl.batch`; the merge stays in seed order, so the result is
    identical to the serial run.  ``stats_out``, when given a list, receives
    one :class:`repro.runtime.metrics.RunStats` per seed.  A ``cache``
    (:class:`repro.owl.cache.ResultCache`) also routes through the batch
    path — already-computed seeds are answered from disk, even at
    ``jobs=1`` — and ``policy`` (:class:`repro.owl.batch.BatchPolicy`)
    bounds each pooled item's wait/retry budget.

    An ``explore`` policy (:class:`repro.owl.explore.ExplorePolicy`)
    replaces the blind sweep over ``seeds`` with coverage-guided adaptive
    budgeting: seeds run in waves, exploration stops early once coverage
    saturates, and the schedule family escalates when a wave goes dry (see
    :mod:`repro.owl.explore`).  ``coverage_out``, when given a list,
    receives one :class:`repro.runtime.coverage.SeedCoverage` per seed in
    seed order (serial path only; the batch/explore paths collect coverage
    themselves).
    """
    if explore is not None:
        from repro.owl.explore import explore_seeds

        return explore_seeds(
            "tsan", module, module_source=module_source, entry=entry,
            inputs=inputs, annotations=annotations, max_steps=max_steps,
            entry_args=entry_args, jobs=jobs, stats_out=stats_out,
            tracer=tracer, cache=cache, policy=policy, explore=explore,
            profile_out=profile_out, profile_interval=profile_interval,
            feed=feed, fuse=bool(fuse),
        )
    if ((jobs and jobs > 1) or cache is not None) \
            and module_source is not None:
        from repro.owl.batch import run_seeds_parallel

        return run_seeds_parallel(
            "tsan", module, module_source, entry=entry, inputs=inputs,
            seeds=seeds, annotations=annotations, max_steps=max_steps,
            entry_args=entry_args, jobs=jobs, stats_out=stats_out,
            tracer=tracer, cache=cache, policy=policy,
            coverage_out=coverage_out, profile_out=profile_out,
            profile_interval=profile_interval, feed=feed, fuse=bool(fuse),
        )
    if fuse:
        # One engine for the whole sweep: every seed runs the same module,
        # so compiled superinstructions amortize across executions.
        from repro.runtime.fuse import FuseEngine

        fuse = fuse if isinstance(fuse, FuseEngine) else FuseEngine()
    reports = ReportSet()
    results: List[ExecutionResult] = []
    for seed in seeds:
        started = time.perf_counter()
        seed_reports, result, detector = run_tsan_seed(
            module, seed, entry=entry, inputs=inputs, annotations=annotations,
            max_steps=max_steps, scheduler_factory=scheduler_factory,
            entry_args=entry_args, tracer=tracer, coverage_out=coverage_out,
            profile_out=profile_out, profile_interval=profile_interval,
            fuse=fuse,
        )
        reports.merge(seed_reports)
        results.append(result)
        if stats_out is not None:
            from repro.runtime.metrics import RunStats

            stats_out.append(RunStats(
                seed=seed, reason=result.reason, steps=result.steps,
                accesses=detector.access_count, reports=len(seed_reports),
                wall_seconds=time.perf_counter() - started,
            ))
        if feed is not None:
            feed.seed_done(stage="detect", seed=seed, detector="tsan",
                           steps=result.steps, reports=len(seed_reports),
                           cached=False)
    return reports, results
