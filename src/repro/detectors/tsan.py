"""A happens-before data race detector in the spirit of ThreadSanitizer.

The detector attaches to the VM as a trace observer and maintains FastTrack-
style shadow state: per-thread vector clocks, per-sync-object clocks, and per
byte of shared memory the last-write epoch plus the read epochs since.  Two
accesses race when they touch the same byte, at least one writes, and neither
happens-before the other.

Reports carry both call stacks.  A corrupted-address *watch list* implements
the paper's section 6.3 detector modification: once a race is found on an
address, every subsequent read of it is recorded (with its call stack) into
the report, and a write "sanitizes" the address.  This gives Algorithm 1 a
racy *load* to start from even for write-write races.

OWL's adhoc-sync annotations (section 5.1) are honoured exactly like TSan
markups: an annotated flag write acts as a release, the annotated read as an
acquire, and the annotated pair itself is not reported.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.detectors.annotations import AnnotationSet
from repro.detectors.report import AccessRecord, RaceReport, ReportSet
from repro.detectors.vectorclock import VectorClock
from repro.ir.module import Module
from repro.runtime.events import (
    AccessEvent,
    SyncEvent,
    ThreadLifecycleEvent,
    TraceObserver,
)
from repro.runtime.interpreter import VM, ExecutionResult
from repro.runtime.scheduler import RandomScheduler, Scheduler


class _ByteShadow:
    """Shadow state for one byte of shared memory."""

    __slots__ = ("last_write", "reads")

    def __init__(self):
        # (thread_id, clock, AccessRecord) of the most recent write.
        self.last_write: Optional[Tuple[int, int, AccessRecord]] = None
        # (thread_id, instruction uid) -> (clock, AccessRecord) for reads
        # since the last write.  Keyed per instruction, not just per thread,
        # so one write racing with several distinct racy loads yields one
        # report per static pair (the Figure 6 store races with both the
        # line-359 check and the line-346 use).
        self.reads: Dict[Tuple[int, int], Tuple[int, AccessRecord]] = {}


class TSanDetector(TraceObserver):
    """The happens-before engine; one instance per VM execution."""

    name = "tsan"

    def __init__(self, annotations: Optional[AnnotationSet] = None,
                 reports: Optional[ReportSet] = None):
        self.annotations = annotations or AnnotationSet()
        self.reports = reports if reports is not None else ReportSet()
        self._thread_clocks: Dict[int, VectorClock] = {}
        self._sync_clocks: Dict[int, VectorClock] = {}
        self._final_clocks: Dict[int, VectorClock] = {}
        self._shadow: Dict[int, _ByteShadow] = {}
        #: watched corrupted addresses -> reports collecting read stacks
        self._watches: Dict[int, List[RaceReport]] = {}
        self.access_count = 0

    # ------------------------------------------------------------------
    # clock helpers

    def _clock_of(self, thread_id: int) -> VectorClock:
        clock = self._thread_clocks.get(thread_id)
        if clock is None:
            clock = VectorClock({thread_id: 1})
            self._thread_clocks[thread_id] = clock
        return clock

    # ------------------------------------------------------------------
    # observer hooks

    def on_thread(self, event: ThreadLifecycleEvent) -> None:
        if event.kind == ThreadLifecycleEvent.CREATE:
            parent = self._clock_of(event.thread_id)
            child = self._clock_of(event.other_thread_id)
            child.join(parent)
            parent.tick(event.thread_id)
        elif event.kind == ThreadLifecycleEvent.EXIT:
            self._final_clocks[event.thread_id] = self._clock_of(event.thread_id).copy()
        elif event.kind == ThreadLifecycleEvent.JOIN:
            final = self._final_clocks.get(event.other_thread_id)
            if final is not None:
                self._clock_of(event.thread_id).join(final)

    def on_sync(self, event: SyncEvent) -> None:
        clock = self._clock_of(event.thread_id)
        if event.kind == SyncEvent.ACQUIRE:
            published = self._sync_clocks.get(event.address)
            if published is not None:
                clock.join(published)
        else:  # release
            clock.tick(event.thread_id)
            self._sync_clocks[event.address] = clock.copy()

    def on_access(self, event: AccessEvent) -> None:
        self.access_count += 1
        annotated_release = event.is_write and self.annotations.is_release(
            event.instruction
        )
        annotated_acquire = (not event.is_write) and self.annotations.is_acquire(
            event.instruction
        )
        if annotated_acquire:
            # Acquire the clock published by the annotated flag write.
            self.on_sync(SyncEvent(
                event.thread_id, event.step, SyncEvent.ACQUIRE, event.address,
            ))
        if event.is_atomic:
            kind = SyncEvent.RELEASE if event.is_write else SyncEvent.ACQUIRE
            self.on_sync(SyncEvent(event.thread_id, event.step, kind, event.address))
            return
        clock = self._clock_of(event.thread_id)
        record = AccessRecord(
            event.instruction, event.thread_id, event.is_write, event.value,
            event.call_stack, event.address, step=event.step,
        )
        own_clock = clock.get(event.thread_id)
        # Service watches before race checking: a racy write that *creates* a
        # watch (below) must not immediately sanitize it, and the racy read
        # that constitutes a report is not also a "subsequent" read.
        self._service_watches(event, record)
        for offset in range(event.size):
            self._check_byte(event.address + offset, record, clock, own_clock,
                             event.variable)
        if annotated_release:
            # Publish this thread's clock on the flag address (TSan markup).
            self.on_sync(SyncEvent(
                event.thread_id, event.step, SyncEvent.RELEASE, event.address,
            ))

    # ------------------------------------------------------------------
    # race checking

    def _annotated_pair(self, a: AccessRecord, b: AccessRecord) -> bool:
        """Whether both sides belong to the same annotated adhoc sync."""
        instructions = {a.instruction, b.instruction}
        for annotation in self.annotations:
            if instructions == {annotation.read_instruction,
                                annotation.write_instruction}:
                return True
        return False

    def _check_byte(self, address: int, record: AccessRecord, clock: VectorClock,
                    own_clock: int, variable: Optional[str]) -> None:
        shadow = self._shadow.get(address)
        if shadow is None:
            shadow = _ByteShadow()
            self._shadow[address] = shadow
        write = shadow.last_write
        if (
            write is not None
            and write[0] != record.thread_id
            and not clock.ordered_with(write[0], write[1])
            and not self._annotated_pair(write[2], record)
        ):
            self._report(write[2], record, variable)
        if record.is_write:
            for (thread_id, _uid), (read_clock, read_record) in shadow.reads.items():
                if (
                    thread_id != record.thread_id
                    and not clock.ordered_with(thread_id, read_clock)
                    and not self._annotated_pair(read_record, record)
                ):
                    self._report(read_record, record, variable)
            shadow.last_write = (record.thread_id, own_clock, record)
            shadow.reads = {}
        else:
            key = (record.thread_id, record.instruction.uid or 0)
            shadow.reads[key] = (own_clock, record)

    def _report(self, prior: AccessRecord, current: AccessRecord,
                variable: Optional[str]) -> None:
        report = RaceReport(prior, current, variable=variable, detector=self.name)
        if self.reports.add(report):
            self._watch(report)
        else:
            # Already known statically: still feed the watch list.
            for known in self.reports:
                if known.static_key == report.static_key:
                    self._watch(known)
                    break

    # ------------------------------------------------------------------
    # corrupted-address watch list (paper section 6.3)

    def _watch(self, report: RaceReport) -> None:
        self._watches.setdefault(report.address, [])
        if report not in self._watches[report.address]:
            self._watches[report.address].append(report)

    def _service_watches(self, event: AccessEvent, record: AccessRecord) -> None:
        watchers = self._watches.get(event.address)
        if not watchers:
            return
        if event.is_write:
            # A write sanitizes the corrupted value; stop watching.
            self._watches.pop(event.address, None)
            return
        for report in watchers:
            if record.instruction is not report.first.instruction and \
                    record.instruction is not report.second.instruction:
                report.subsequent_reads.append(record)


def run_tsan(
    module: Module,
    entry: str = "main",
    inputs: Optional[Dict] = None,
    seeds: Sequence[int] = range(10),
    annotations: Optional[AnnotationSet] = None,
    max_steps: int = 200_000,
    scheduler_factory=None,
    entry_args: Sequence[int] = (),
) -> Tuple[ReportSet, List[ExecutionResult]]:
    """Run the detector over several schedules and merge the reports.

    Each seed is one program execution under a random schedule — the
    equivalent of repeatedly running a TSan-instrumented binary on the same
    testing workload.
    """
    reports = ReportSet()
    results: List[ExecutionResult] = []
    for seed in seeds:
        scheduler: Scheduler = (
            scheduler_factory(seed) if scheduler_factory is not None
            else RandomScheduler(seed)
        )
        vm = VM(module, scheduler=scheduler, inputs=inputs, max_steps=max_steps,
                seed=seed)
        detector = TSanDetector(annotations=annotations, reports=reports)
        vm.add_observer(detector)
        vm.start(entry, entry_args)
        results.append(vm.run())
    return reports, results
