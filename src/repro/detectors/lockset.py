"""An Eraser-style lockset race detector (baseline comparator).

Kept alongside the happens-before detector to quantify the paper's point
that detector false-positive volume buries vulnerable races: lockset
detection flags every shared location not consistently protected by a
common lock, which yields strictly more (and noisier) reports than
happens-before on programs using fork/join or condition-variable ordering.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.detectors.report import AccessRecord, RaceReport, ReportSet
from repro.ir.module import Module
from repro.runtime.events import AccessEvent, SyncEvent, TraceObserver
from repro.runtime.interpreter import VM
from repro.runtime.scheduler import RandomScheduler


class _LocationState:
    """Candidate lockset and representative accesses for one byte."""

    __slots__ = ("lockset", "first_access", "threads")

    def __init__(self, lockset: Set[int], access: AccessRecord):
        self.lockset = set(lockset)
        self.first_access = access
        self.threads = {access.thread_id}


class LocksetDetector(TraceObserver):
    """Eraser's lockset algorithm over the VM trace."""

    name = "lockset"

    def __init__(self, reports: Optional[ReportSet] = None):
        self.reports = reports if reports is not None else ReportSet()
        self._held: Dict[int, Set[int]] = {}
        self._state: Dict[int, _LocationState] = {}

    def _held_by(self, thread_id: int) -> Set[int]:
        return self._held.setdefault(thread_id, set())

    def on_sync(self, event: SyncEvent) -> None:
        held = self._held_by(event.thread_id)
        if event.kind == SyncEvent.ACQUIRE:
            held.add(event.address)
        else:
            held.discard(event.address)

    def on_access(self, event: AccessEvent) -> None:
        if event.is_atomic:
            return
        held = self._held_by(event.thread_id)
        record = AccessRecord(
            event.instruction, event.thread_id, event.is_write, event.value,
            event.call_stack, event.address, step=event.step,
        )
        for offset in range(event.size):
            address = event.address + offset
            state = self._state.get(address)
            if state is None:
                self._state[address] = _LocationState(held, record)
                continue
            state.threads.add(event.thread_id)
            state.lockset &= held
            if len(state.threads) > 1 and not state.lockset and (
                event.is_write or state.first_access.is_write
            ):
                self.reports.add(RaceReport(
                    state.first_access, record, variable=event.variable,
                    detector=self.name,
                ))


def run_lockset(
    module: Module,
    entry: str = "main",
    inputs: Optional[Dict] = None,
    seeds: Sequence[int] = range(5),
    max_steps: int = 200_000,
) -> ReportSet:
    """Run the lockset detector over several schedules; merged reports."""
    reports = ReportSet()
    for seed in seeds:
        vm = VM(module, scheduler=RandomScheduler(seed), inputs=inputs,
                max_steps=max_steps, seed=seed)
        vm.add_observer(LocksetDetector(reports=reports))
        vm.start(entry)
        vm.run()
    return reports
