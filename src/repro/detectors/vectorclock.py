"""Vector clocks for happens-before race detection."""

from __future__ import annotations

from typing import Dict, Iterator, Tuple


class VectorClock:
    """A sparse vector clock mapping thread id -> logical clock."""

    __slots__ = ("_clocks",)

    def __init__(self, clocks: Dict[int, int] = None):
        self._clocks: Dict[int, int] = dict(clocks) if clocks else {}

    def get(self, thread_id: int) -> int:
        return self._clocks.get(thread_id, 0)

    def tick(self, thread_id: int) -> None:
        self._clocks[thread_id] = self._clocks.get(thread_id, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place."""
        for thread_id, clock in other._clocks.items():
            if clock > self._clocks.get(thread_id, 0):
                self._clocks[thread_id] = clock

    def copy(self) -> "VectorClock":
        return VectorClock(self._clocks)

    def happens_before(self, other: "VectorClock") -> bool:
        """self <= other pointwise (self's knowledge is contained in other's)."""
        return all(
            clock <= other._clocks.get(thread_id, 0)
            for thread_id, clock in self._clocks.items()
        )

    def ordered_with(self, thread_id: int, clock: int) -> bool:
        """Whether the event (thread_id, clock) happens-before this clock."""
        return clock <= self._clocks.get(thread_id, 0)

    def items(self) -> Iterator[Tuple[int, int]]:
        return iter(self._clocks.items())

    def __repr__(self) -> str:
        inner = ", ".join("t%d:%d" % kv for kv in sorted(self._clocks.items()))
        return "<VC %s>" % inner
