"""The 26-attack study corpus (paper section 3, Table 1).

Each :class:`AttackRecord` is one concurrency attack: "we counted only each
bug's first security consequence" (unlike the prior HotPar'12 study, which
counted consequences).  Programs, lines of code and report counts follow
Table 1; per-attack metadata (violation type, bug type, spread, repetitions)
follows the paper's narrative in sections 3.1-3.2 and Table 4.

Ten attacks (6 programs with source) carry ``reproduced=True`` and map onto
an exploit driver in :mod:`repro.exploits`.
"""

from __future__ import annotations

from typing import Dict, List, Optional


class AttackRecord:
    """One concurrency attack in the study."""

    def __init__(
        self,
        attack_id: str,
        program: str,
        violation: str,
        bug_type: str = "data race",
        vuln_site_type: str = "",
        same_function: bool = False,
        callstack_prefix_shared: bool = True,
        reproduced: bool = False,
        repetitions_to_trigger: Optional[int] = None,
        subtle_inputs: str = "",
        detectable_by_race_detector: bool = True,
        reference: str = "",
        description: str = "",
    ):
        self.attack_id = attack_id
        self.program = program
        #: the first security consequence (privilege escalation, ...)
        self.violation = violation
        self.bug_type = bug_type
        self.vuln_site_type = vuln_site_type
        #: bug and vulnerability site within the same function?
        self.same_function = same_function
        #: does the attack's call stack share the bug's call stack prefix?
        self.callstack_prefix_shared = callstack_prefix_shared
        self.reproduced = reproduced
        self.repetitions_to_trigger = repetitions_to_trigger
        self.subtle_inputs = subtle_inputs
        self.detectable_by_race_detector = detectable_by_race_detector
        self.reference = reference
        self.description = description

    def __repr__(self) -> str:
        return "<AttackRecord %s (%s, %s)>" % (
            self.attack_id, self.program, self.violation,
        )


class ProgramRecord:
    """One studied program: Table 1 row."""

    def __init__(self, name: str, loc: str, kind: str,
                 race_reports: Optional[int], has_source: bool = True,
                 ran_with_detector: bool = True):
        self.name = name
        self.loc = loc
        self.kind = kind
        #: raw race reports the paper measured (N/A for closed targets)
        self.race_reports = race_reports
        self.has_source = has_source
        self.ran_with_detector = ran_with_detector


#: Table 1's program rows.
PROGRAMS: List[ProgramRecord] = [
    ProgramRecord("Apache", "290K", "server", 715),
    ProgramRecord("MySQL", "1.5M", "server", 1123),
    ProgramRecord("SSDB", "67K", "server", 12),
    ProgramRecord("Chrome", "3.4M", "browser", 1715),
    ProgramRecord("IE", "N/A", "browser", None, has_source=False,
                  ran_with_detector=False),
    ProgramRecord("Libsafe", "3.4K", "library", 3),
    ProgramRecord("Linux", "2.8M", "kernel", 24641),
    ProgramRecord("Darwin", "N/A", "kernel", None, has_source=False,
                  ran_with_detector=False),
    ProgramRecord("FreeBSD", "680K", "kernel", None, ran_with_detector=False),
    ProgramRecord("Windows", "N/A", "kernel", None, has_source=False,
                  ran_with_detector=False),
]


def _reproduced(attack_id, program, violation, site, same_fn, reps, inputs,
                reference, description):
    return AttackRecord(
        attack_id, program, violation, vuln_site_type=site,
        same_function=same_fn, reproduced=True,
        repetitions_to_trigger=reps, subtle_inputs=inputs,
        reference=reference, description=description,
    )


#: The 26 attacks.  The ten reproduced ones lead; the remainder encode the
#: corpus counts of Table 1 (Apache 4, MySQL 2, SSDB 1, Chrome 3, IE 1,
#: Libsafe 1, Linux 8, Darwin 3, FreeBSD 2, Windows 1).
CORPUS: List[AttackRecord] = [
    # --- reproduced (exploit scripts in repro.exploits) -------------------
    _reproduced("libsafe-2.0-16", "Libsafe", "code injection",
                "memory operation", False, 6,
                "Loops with strcpy()", "paper Figure 1",
                "dying-flag race bypasses stack overflow checks"),
    _reproduced("linux-2.6.10-uselib", "Linux", "code injection",
                "NULL pointer dereference", False, 12,
                "Syscall parameters", "OSVDB 12791 / paper Figure 2",
                "uselib/msync race NULLs f_op before the fsync call"),
    _reproduced("linux-2.6.29-privesc", "Linux", "privilege escalation",
                "privilege operation", False, 10,
                "Syscall parameters", "paper Table 4",
                "credential race lets setuid(0) pass its capability check"),
    _reproduced("mysql-24988", "MySQL", "privilege escalation",
                "privilege operation", False, 18,
                "FLUSH PRIVILEGES", "MySQL bug 24988",
                "ACL reload race corrupts another user's privilege table"),
    _reproduced("mysql-setpassword", "MySQL", "memory corruption",
                "memory operation", True, 8,
                "SET PASSWORD", "paper Table 4",
                "concurrent SET PASSWORD double-frees the password buffer"),
    _reproduced("apache-25520", "Apache", "HTML integrity violation",
                "memory operation", True, 14,
                "Crafted log-entry lengths", "Apache bug 25520 / Figure 7",
                "buffered-log cursor race overflows into the log fd"),
    _reproduced("apache-46215", "Apache", "denial of service",
                "NULL pointer dereference", False, 9,
                "Concurrent request completions", "Apache bug 46215 / Figure 8",
                "busyness counter underflow starves a balancer worker"),
    _reproduced("apache-2.0.48-doublefree", "Apache", "memory corruption",
                "memory operation", True, 7,
                "PhP queries", "paper Table 4",
                "request-pool refcount race double-frees the pool"),
    _reproduced("chrome-6.0.472.58", "Chrome", "memory corruption",
                "NULL pointer dereference", False, 11,
                "Js console.profile", "paper Table 4",
                "profiler stop races the sampler: use after free"),
    _reproduced("ssdb-cve-2016-1000324", "SSDB", "memory corruption",
                "NULL pointer dereference", False, 5,
                "Shutdown during compaction", "CVE-2016-1000324 / Figure 6",
                "BinlogQueue destructor races the log-clean thread"),
    # --- studied but not reproduced (no source / no exploit script) -------
    AttackRecord("apache-21287", "Apache", "denial of service",
                 same_function=False, reference="Apache bug 21287",
                 description="cache refcount atomicity window crashes httpd"),
    AttackRecord("chrome-sandbox-1", "Chrome", "bypass authentication",
                 same_function=False,
                 description="renderer/browser handoff race"),
    AttackRecord("chrome-sandbox-2", "Chrome", "memory corruption",
                 same_function=True,
                 description="V8 heap race corrupting object maps"),
    AttackRecord("ie-javaprxy", "IE", "code injection",
                 same_function=False, reference="exploit-db 1079",
                 description="MSIE javaprxy.dll COM object race"),
    AttackRecord("linux-cve-2008-0034", "Linux", "privilege escalation",
                 same_function=False, reference="CVE-2008-0034"),
    AttackRecord("linux-cve-2010-0923", "Linux", "bypass authentication",
                 same_function=True, reference="CVE-2010-0923"),
    AttackRecord("linux-cve-2010-1754", "Linux", "bypass authentication",
                 same_function=False, reference="CVE-2010-1754"),
    AttackRecord("linux-sys-race-1", "Linux", "memory corruption",
                 same_function=True,
                 description="proc fs writer race against exiting task"),
    AttackRecord("linux-sys-race-2", "Linux", "denial of service",
                 same_function=False,
                 description="signal delivery race wedging the scheduler"),
    AttackRecord("linux-sys-race-3", "Linux", "memory corruption",
                 same_function=True,
                 description="futex requeue race corrupting the wait queue"),
    AttackRecord("darwin-race-1", "Darwin", "privilege escalation",
                 same_function=False),
    AttackRecord("darwin-race-2", "Darwin", "memory corruption",
                 same_function=True),
    AttackRecord("darwin-race-3", "Darwin", "denial of service",
                 same_function=False),
    AttackRecord("freebsd-cve-2009-3527", "FreeBSD", "privilege escalation",
                 same_function=False, reference="CVE-2009-3527",
                 description="pipe close race giving kernel code execution"),
    AttackRecord("freebsd-race-2", "FreeBSD", "memory corruption",
                 same_function=True),
    AttackRecord("windows-race-1", "Windows", "privilege escalation",
                 same_function=False,
                 description="win32k object handoff race"),
]


def attacks_by_program(program: Optional[str] = None) -> List[AttackRecord]:
    if program is None:
        return list(CORPUS)
    return [record for record in CORPUS if record.program == program]


def reproduced_attacks() -> List[AttackRecord]:
    return [record for record in CORPUS if record.reproduced]


def corpus_totals() -> Dict[str, int]:
    """Per-program attack counts: the Table 1 "# Concurrency attacks" column."""
    totals: Dict[str, int] = {}
    for record in CORPUS:
        totals[record.program] = totals.get(record.program, 0) + 1
    return totals
