"""Computations behind the study's findings I-V (paper section 3).

Each ``findingN_*`` function returns a plain dict so the benchmark harness
can print paper-vs-measured rows.  Where a finding is measurable against the
model programs (spread through the call graph, call-stack prefixes,
repetitions to trigger), the functions take live measurements; the corpus
supplies the rest.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.callgraph import CallGraph
from repro.study.corpus import CORPUS, PROGRAMS, corpus_totals, reproduced_attacks


def finding1_severity() -> Dict:
    """Finding I: concurrency attacks are more severe than concurrency bugs.

    Every studied program has attacks; fixing the bug does not expel an
    attacker who already broke in.
    """
    totals = corpus_totals()
    return {
        "programs_studied": len(PROGRAMS),
        "programs_with_attacks": sum(1 for count in totals.values() if count > 0),
        "total_attacks": sum(totals.values()),
        "per_program": totals,
        "violation_types": sorted({record.violation for record in CORPUS}),
    }


def finding2_spread() -> Dict:
    """Finding II: bugs and their attacks are widely spread in program code.

    Paper: among the 10 attacks with source and exploit scripts, 7 have
    their bugs and vulnerability sites in different functions.
    """
    reproduced = reproduced_attacks()
    different = [r for r in reproduced if not r.same_function]
    return {
        "reproduced": len(reproduced),
        "bug_and_site_in_different_functions": len(different),
        "paper_claim": "7 of 10 attacks spread across different functions",
        "attack_ids": [r.attack_id for r in different],
    }


def finding3_repetitions(measured: Optional[Dict[str, int]] = None) -> Dict:
    """Finding III: subtle inputs trigger attacks within few repetitions.

    Paper: "8 out of the 10 reproduced concurrency attacks [...] can be
    easily triggered with less than 20 repetitive executions".  ``measured``
    may carry live repetition counts from the exploit drivers; the corpus
    numbers are the recorded defaults.
    """
    repetitions = {
        record.attack_id: record.repetitions_to_trigger
        for record in reproduced_attacks()
    }
    if measured:
        repetitions.update(measured)
    under_20 = sum(
        1 for count in repetitions.values() if count is not None and count < 20
    )
    return {
        "repetitions": repetitions,
        "attacks_under_20_repetitions": under_20,
        "total_reproduced": len(repetitions),
        "paper_claim": "8 of 10 under 20 repetitions",
    }


def finding4_bug_types() -> Dict:
    """Finding IV: all studied vulnerable concurrency bugs were data races
    (hence detectable by TSan/SKI-style race detectors)."""
    bug_types = {}
    for record in CORPUS:
        bug_types[record.bug_type] = bug_types.get(record.bug_type, 0) + 1
    return {
        "bug_types": bug_types,
        "all_data_races": set(bug_types) == {"data race"},
        "detectable": sum(
            1 for record in CORPUS if record.detectable_by_race_detector
        ),
    }


def finding5_burial(measured_raw: Optional[Dict[str, int]] = None,
                    measured_vulnerable: Optional[Dict[str, int]] = None) -> Dict:
    """Finding V: attacks are overlooked because detectors bury them.

    Paper anchor: one bug-triggering MySQL query produced 202 race reports
    of which 2 were vulnerable.  ``measured_raw``/``measured_vulnerable``
    may carry live per-program counts from our detectors.
    """
    paper_reports = {
        program.name: program.race_reports
        for program in PROGRAMS if program.race_reports is not None
    }
    result = {
        "paper_raw_reports": paper_reports,
        "paper_total_reports": sum(paper_reports.values()),
        "paper_mysql_anchor": {"reports": 202, "vulnerable": 2},
    }
    if measured_raw:
        result["measured_raw_reports"] = dict(measured_raw)
    if measured_vulnerable:
        result["measured_vulnerable"] = dict(measured_vulnerable)
        if measured_raw:
            totals = sum(measured_raw.values())
            vulnerable = sum(measured_vulnerable.values())
            result["measured_burial_ratio"] = (
                vulnerable / totals if totals else 0.0
            )
    return result


# ---------------------------------------------------------------------------
# live measurements against model programs


def static_spread(module, bug_function: str, site_function: str) -> Optional[int]:
    """Call-graph hop distance between a bug's function and its attack site's
    function — the quantity behind Finding II / the ConSeq comparison."""
    return CallGraph(module).static_distance(bug_function, site_function)


def callstack_prefix_stats(pairs: List[Tuple[Tuple, Tuple]]) -> Dict:
    """Section 3.2's second pattern: bugs and attacks share call-stack
    prefixes.

    ``pairs`` holds (bug_stack, site_stack) tuples of (function, file, line)
    entries, outermost first.  Returns how many site stacks extend the bug
    stack (bug stack is a prefix) or sit within two frames of it.
    """
    prefix = 0
    near = 0
    for bug_stack, site_stack in pairs:
        bug_functions = [frame[0] for frame in bug_stack]
        site_functions = [frame[0] for frame in site_stack]
        if site_functions[: len(bug_functions)] == bug_functions or \
                bug_functions[: len(site_functions)] == site_functions:
            prefix += 1
        else:
            shared = 0
            for a, b in zip(bug_functions, site_functions):
                if a != b:
                    break
                shared += 1
            if max(len(bug_functions), len(site_functions)) - shared <= 2:
                near += 1
    return {
        "pairs": len(pairs),
        "prefix_shared": prefix,
        "within_two_frames": near,
        "paper_claim": "7 of 10 sites are in callees of the bug's stack",
    }
