"""The quantitative concurrency-attack study (paper section 3).

:mod:`repro.study.corpus` encodes the 26 concurrency attacks across the ten
studied programs (paper Table 1) with their violation types, bug types and
reproduction metadata; :mod:`repro.study.analysis` computes the paper's
findings I-V from the corpus and from live measurements against the model
programs (bug-to-attack spread, call-stack prefix sharing, repetitions to
trigger, report burial ratios).
"""

from repro.study.corpus import (
    AttackRecord,
    CORPUS,
    attacks_by_program,
    corpus_totals,
    reproduced_attacks,
)
from repro.study.analysis import (
    finding1_severity,
    finding2_spread,
    finding3_repetitions,
    finding4_bug_types,
    finding5_burial,
    callstack_prefix_stats,
)

__all__ = [
    "AttackRecord",
    "CORPUS",
    "attacks_by_program",
    "corpus_totals",
    "reproduced_attacks",
    "finding1_severity",
    "finding2_spread",
    "finding3_repetitions",
    "finding4_bug_types",
    "finding5_burial",
    "callstack_prefix_stats",
]
