"""Program-under-test specifications.

A :class:`ProgramSpec` bundles everything OWL needs to analyze one target:
the module factory, the entry point, the testing workload inputs, which
detector front end applies (TSan for applications, SKI for kernels), and the
ground truth for its known concurrency attacks — used by the pipeline to
match findings, by the exploit drivers to steer inputs/schedules, and by the
benchmarks to compare against the paper's tables.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir.module import Module
from repro.owl.vuln_sites import VulnSiteType
from repro.runtime.interpreter import VM
from repro.runtime.os_model import OSWorld
from repro.runtime.scheduler import RandomScheduler, Scheduler


class AttackGroundTruth:
    """One known (or newly found) concurrency attack in a target program."""

    def __init__(
        self,
        attack_id: str,
        name: str,
        vuln_type: VulnSiteType,
        site_location: Tuple[str, int],
        racy_variable: str,
        subtle_inputs: Dict,
        description: str = "",
        naive_inputs: Optional[Dict] = None,
        racing_order: str = "write-first",
        predicate: Optional[Callable[[VM], bool]] = None,
        reference: str = "",
        subtle_input_summary: str = "",
    ):
        self.attack_id = attack_id
        self.name = name
        self.vuln_type = vuln_type
        self.site_location = site_location
        self.racy_variable = racy_variable
        self.subtle_inputs = subtle_inputs
        self.naive_inputs = naive_inputs if naive_inputs is not None else {}
        self.racing_order = racing_order
        self.predicate = predicate
        self.description = description
        self.reference = reference
        #: Table-4-style human description of the subtle inputs
        self.subtle_input_summary = subtle_input_summary

    def matches_site(self, location) -> bool:
        return (
            location.filename == self.site_location[0]
            and location.line == self.site_location[1]
        )

    def __repr__(self) -> str:
        return "<Attack %s %s at %s:%d>" % (
            self.attack_id, self.vuln_type.value, *self.site_location,
        )


class ProgramSpec:
    """One target program plus its testing configuration."""

    def __init__(
        self,
        name: str,
        module_factory: Callable[[], Module],
        detector: str = "tsan",
        entry: str = "main",
        workload_inputs: Optional[Dict] = None,
        detect_seeds: Sequence[int] = range(10),
        verify_seeds: Sequence[int] = range(6),
        max_steps: int = 120_000,
        attacks: Sequence[AttackGroundTruth] = (),
        paper_loc: str = "",
        paper_raw_reports: Optional[int] = None,
        paper_remaining_reports: Optional[int] = None,
        paper_adhoc_syncs: Optional[int] = None,
        initial_world: Optional[Callable[[], OSWorld]] = None,
    ):
        self.name = name
        self.module_factory = module_factory
        self.detector = detector
        self.entry = entry
        self.workload_inputs = dict(workload_inputs or {})
        self.detect_seeds = list(detect_seeds)
        self.verify_seeds = list(verify_seeds)
        self.max_steps = max_steps
        self.attacks = list(attacks)
        self.paper_loc = paper_loc
        self.paper_raw_reports = paper_raw_reports
        self.paper_remaining_reports = paper_remaining_reports
        self.paper_adhoc_syncs = paper_adhoc_syncs
        self.initial_world = initial_world
        self._module: Optional[Module] = None

    # ------------------------------------------------------------------

    def build(self) -> Module:
        """The module, built once and cached (instruction uids must be stable)."""
        if self._module is None:
            self._module = self.module_factory()
        return self._module

    def rebuild(self) -> Module:
        self._module = self.module_factory()
        return self._module

    def make_vm(
        self,
        seed: int = 0,
        inputs: Optional[Dict] = None,
        scheduler: Optional[Scheduler] = None,
        max_steps: Optional[int] = None,
    ) -> VM:
        world = self.initial_world() if self.initial_world is not None else None
        return VM(
            self.build(),
            scheduler=scheduler or RandomScheduler(seed),
            world=world,
            inputs=inputs if inputs is not None else self.workload_inputs,
            max_steps=max_steps or self.max_steps,
            seed=seed,
        )

    def attack_for_site(self, location) -> Optional[AttackGroundTruth]:
        for attack in self.attacks:
            if attack.matches_site(location):
                return attack
        return None

    def __repr__(self) -> str:
        return "<ProgramSpec %s detector=%s attacks=%d>" % (
            self.name, self.detector, len(self.attacks),
        )
