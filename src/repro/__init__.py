"""repro — a reproduction of *OWL: Understanding and Detecting Concurrency
Attacks* (Gu, Gan, Zhao, Ning, Cui, Yang — DSN 2018).

The package is organised exactly like the system the paper describes:

- :mod:`repro.ir` — an LLVM-like SSA IR (the "bitcode" OWL analyzes),
- :mod:`repro.runtime` — a concurrent VM with controllable schedulers,
  runtime fault detection and an LLDB-like debugger,
- :mod:`repro.detectors` — TSan-style and SKI-style race detectors,
- :mod:`repro.owl` — the paper's contribution: the directed concurrency
  attack detection pipeline (adhoc-sync pruning, dynamic race verification,
  Algorithm 1 static vulnerability analysis, dynamic attack verification),
- :mod:`repro.apps` — model programs reproducing the studied bugs
  (Libsafe, Apache, MySQL, SSDB, Linux, Chrome, Memcached),
- :mod:`repro.exploits` — exploit scripts for the ten reproduced attacks,
- :mod:`repro.study` — the section-3 quantitative study corpus and
  findings.

Quick start::

    from repro import OwlPipeline, spec_by_name

    result = OwlPipeline(spec_by_name("libsafe")).run()
    print(result.counters.as_dict())
    for attack in result.realized_attacks():
        print(attack.verification.describe())
"""

from repro.owl import (
    AnalysisOptions,
    DynamicRaceVerifier,
    DynamicVulnerabilityVerifier,
    OwlPipeline,
    PipelineResult,
    VulnerabilityAnalyzer,
    VulnSiteType,
)
from repro.spec import AttackGroundTruth, ProgramSpec

__version__ = "1.0.0"


def spec_by_name(name: str) -> ProgramSpec:
    """Look up a model target program by name (see :mod:`repro.apps`)."""
    from repro.apps.registry import spec_by_name as lookup

    return lookup(name)


__all__ = [
    "AnalysisOptions",
    "AttackGroundTruth",
    "DynamicRaceVerifier",
    "DynamicVulnerabilityVerifier",
    "OwlPipeline",
    "PipelineResult",
    "ProgramSpec",
    "VulnerabilityAnalyzer",
    "VulnSiteType",
    "spec_by_name",
    "__version__",
]
