"""Shared static-analysis utilities: call graphs and dependence traversals.

These are the building blocks under OWL's two static components — the
adhoc-synchronization detector (intra-procedural forward data/control
dependence, paper section 5.1) and the vulnerability analyzer's Algorithm 1
(inter-procedural propagation directed by call stacks, section 6.1).
"""

from repro.analysis.callgraph import CallGraph
from repro.analysis.depgraph import (
    forward_dependent_instructions,
    instructions_after,
    stores_to_same_pointer,
)

__all__ = [
    "CallGraph",
    "forward_dependent_instructions",
    "instructions_after",
    "stores_to_same_pointer",
]
